#!/usr/bin/env python3
"""Data-centre scapegoating: a compromised switch frames a core uplink.

The paper's threat model (backdoored routers, insider threats) maps
naturally onto data-centre fabrics, where operators run exactly this kind
of probe-based tomography between ToR/edge switches.  On a k=4 fat tree:

1. monitors = all edge and core switches; measurement paths selected for
   full identifiability (+ redundancy for the detector);
2. one compromised aggregation switch plans a chosen-victim attack that
   frames a core uplink in *another* pod's aggregation layer;
3. the attack executes as per-packet delays in the simulator; tomography
   on the resulting probe timings blames the victim uplink;
4. the fabric's high path redundancy is a double-edged sword: it makes
   perfect cuts rare (good: attacks are detectable) but gives every
   switch presence on many paths (bad: plenty of manipulation support).

Run:  python examples/datacenter_fat_tree.py
"""

import numpy as np

from repro import (
    ChosenVictimAttack,
    LeastSquaresEstimator,
    Scenario,
    compile_attack_plan,
    diagnose,
)
from repro.attacks.compromise import compromise_budget_ranking
from repro.detection import TomographyAuditor
from repro.routing import identifiability_report
from repro.topology import fat_tree_topology


def main() -> None:
    topology = fat_tree_topology(4)
    monitors = [n for n in topology.nodes() if n[0] in ("edge", "core")]
    scenario = Scenario.build(
        topology, monitors=monitors, redundancy=4, rng=3, name="fat-tree-4"
    )
    report = identifiability_report(scenario.path_set)
    print(
        f"fabric: {topology.num_nodes} switches, {topology.num_links} links; "
        f"{len(monitors)} monitors, {report.num_paths} paths, "
        f"rank {report.rank}/{report.num_links}"
    )

    # Compromised switch: aggregation switch 0 of pod 0.
    attacker = ("agg", 0, 0)
    context = scenario.attack_context([attacker])
    print(
        f"\ncompromised switch: {attacker} — controls "
        f"{len(context.controlled_links)} links, manipulates "
        f"{len(context.support)} of {context.num_paths} paths"
    )

    # Frame a core uplink in pod 1's aggregation layer.
    victim = topology.link_between(("agg", 1, 0), ("core", 0)).index
    outcome = ChosenVictimAttack(context, [victim], mode="paper").run()
    if not outcome.feasible:
        print("exclusive frame-up infeasible; trying any feasible victim ...")
        from repro import MaxDamageAttack

        outcome = MaxDamageAttack(context).run()
        victim = outcome.victim_links[0] if outcome.feasible else None
    if not outcome.feasible:
        print("no feasible victim for this switch")
        return
    victim_link = topology.link(victim)
    print(
        f"framed link: {victim_link.u} - {victim_link.v} "
        f"(damage {outcome.damage:.0f} ms across the fabric's probes)"
    )

    # Execute as packets; let the operator run tomography on the timings.
    plan = compile_attack_plan(
        scenario.path_set, [attacker], outcome.manipulation, cap=scenario.cap
    )
    sim = scenario.simulator(agents=plan.agents)
    record = sim.run_measurement(scenario.path_set, probes_per_path=3, rng=5)
    y = record.path_delay_vector()
    estimator = LeastSquaresEstimator(
        scenario.path_set.routing_matrix(), require_full_rank=False
    )
    operator_view = diagnose(estimator.estimate(y), scenario.thresholds)
    blamed = [scenario.topology.link(j) for j in operator_view.abnormal]
    print(
        "operator's diagnosis from probe timings:",
        [f"{l.u}-{l.v}" for l in blamed] or "nothing abnormal",
    )

    audit = TomographyAuditor(scenario.path_set, alpha=200.0).audit(y)
    print(
        f"consistency audit: trustworthy={audit.trustworthy} "
        f"(residual {audit.detection.residual_l1:.1f} ms) — the fabric's "
        "path redundancy makes perfect cuts hard, so the frame-up leaves "
        "an inconsistency trail."
    )

    # How expensive would a *guaranteed, undetectable* frame-up be?
    ranking = compromise_budget_ranking(scenario.path_set, max_nodes=6)
    affordable = [r for r in ranking if r["budget"] is not None]
    if affordable:
        cheapest = affordable[0]
        link = topology.link(cheapest["link"])
        print(
            f"\ncheapest guaranteed frame-up in this fabric: link "
            f"{link.u}-{link.v} for {cheapest['budget']} compromised "
            f"switches ({cheapest['nodes']})"
        )
    else:
        print(
            "\nno link can be perfectly cut with <= 6 compromised switches — "
            "fat-tree redundancy pays off against guaranteed scapegoating."
        )
    impossible = sum(1 for r in ranking if r["budget"] is None)
    print(
        f"links with no perfect cut within 6 switches: {impossible} of {len(ranking)}"
    )


if __name__ == "__main__":
    main()
