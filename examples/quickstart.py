#!/usr/bin/env python3
"""Quickstart: scapegoating on the paper's example network.

Walks the full story of the paper on the Fig. 1 topology:

1. build the network, monitors, and 23 measurement paths;
2. run honest tomography (every link looks fine);
3. let malicious nodes B and C frame link 10 (chosen-victim attack) —
   tomography now blames an innocent link while the attackers' own links
   look healthy;
4. run the consistency detector: the imperfect-cut attack is caught, but a
   stealthy perfect-cut attack on link 1 is not (Theorem 3);
5. show the same attack executed as per-packet behaviour in the
   discrete-event simulator, reproducing the analytic result exactly.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ChosenVictimAttack, LeastSquaresEstimator, compile_attack_plan, diagnose
from repro.detection import TomographyAuditor
from repro.reporting import format_link_series
from repro.scenarios.simple_network import paper_fig1_scenario


def main() -> None:
    scenario = paper_fig1_scenario(seed=2017)
    print(f"scenario: {scenario.describe()}")

    # ------------------------------------------------------------------
    # 1-2. Honest tomography.
    # ------------------------------------------------------------------
    matrix = scenario.path_set.routing_matrix()
    estimator = LeastSquaresEstimator(matrix)
    honest_y = scenario.honest_measurements()
    honest_report = diagnose(estimator.estimate(honest_y), scenario.thresholds)
    print("\nhonest round: abnormal links =", list(honest_report.abnormal) or "none")

    # ------------------------------------------------------------------
    # 3. Chosen-victim scapegoating of link 10 (index 9) by B and C.
    # ------------------------------------------------------------------
    context = scenario.attack_context(["B", "C"])
    attack = ChosenVictimAttack(context, victim_links=[9], mode="exclusive")
    outcome = attack.run()
    if not outcome.feasible:
        raise RuntimeError(f"chosen-victim attack infeasible: {outcome.status}")
    print(
        f"\nchosen-victim attack: damage ||m||_1 = {outcome.damage:.0f} ms, "
        f"mean path delay {outcome.mean_path_measurement:.1f} ms "
        "(paper Fig. 4: 820.87 ms)"
    )
    print(
        format_link_series(
            [float(v) for v in outcome.predicted_estimate],
            [str(s) for s in outcome.diagnosis.states],
            title="operator's view under attack:",
            victim_links=[9],
            controlled_links=sorted(context.controlled_links),
        )
    )

    # ------------------------------------------------------------------
    # 4. Detection (eq. 23, alpha = 200 ms).
    # ------------------------------------------------------------------
    auditor = TomographyAuditor(scenario.path_set, alpha=200.0)
    report = auditor.audit(outcome.observed_measurements)
    print(
        f"\nauditor on the link-10 attack: trustworthy={report.trustworthy} "
        f"(residual {report.detection.residual_l1:.1f} ms > alpha) — caught, "
        "because B and C do not perfectly cut link 10."
    )

    stealthy = ChosenVictimAttack(
        context, victim_links=[0], stealthy=True, confined=True
    ).run()
    if not stealthy.feasible:
        raise RuntimeError(f"stealthy attack infeasible: {stealthy.status}")
    stealth_report = auditor.audit(stealthy.observed_measurements)
    print(
        f"auditor on a stealthy perfect-cut attack framing link 1: "
        f"trustworthy={stealth_report.trustworthy}, blamed links = "
        f"{[j + 1 for j in stealth_report.diagnosis.abnormal]} — Theorem 3's "
        "blind spot: the forged measurements are perfectly consistent."
    )

    # ------------------------------------------------------------------
    # 5. The same attack as packet behaviour.
    # ------------------------------------------------------------------
    plan = compile_attack_plan(
        scenario.path_set, ["B", "C"], outcome.manipulation, cap=scenario.cap
    )
    simulator = scenario.simulator(agents=plan.agents)
    record = simulator.run_measurement(scenario.path_set, probes_per_path=3, rng=1)
    y_sim = record.path_delay_vector()
    print(
        f"\npacket simulator: max |y_sim - y_model| = "
        f"{float(np.max(np.abs(y_sim - outcome.observed_measurements))):.2e} ms "
        f"({sum(len(a.actions) for a in plan.agents.values())} per-path agent rules "
        f"at nodes {sorted(plan.agents)})"
    )
    packet_report = diagnose(estimator.estimate(y_sim), scenario.thresholds)
    print(
        "operator diagnosis from simulated packets: abnormal =",
        [j + 1 for j in packet_report.abnormal],
        "(paper link numbering) — the scapegoat, again.",
    )


if __name__ == "__main__":
    main()
