#!/usr/bin/env python3
"""Monitor-placement hardening — the paper's Section VI proposal, realised.

The paper closes by suggesting that monitor placement should minimise
every node's *presence ratio* on measurement paths (after ensuring
identifiability), because Theorem 2 ties an attacker's success probability
to how many victim-crossing paths it sits on.

This example demonstrates both halves of that argument on a mesh topology
without forced leaf monitors:

1. **Theorem 2's lever is real**: within one placement, nodes are bucketed
   by their presence ratio, and the empirical single-attacker max-damage
   success rate climbs with the bucket — the attacker's power is its path
   coverage.
2. **The defender can pull the lever**: the security-aware placement
   search picks, among identifiable placements, the one minimising the
   worst node's presence ratio.

Run:  python examples/monitor_placement_hardening.py   (~30 s)
"""

import numpy as np

from repro import MaxDamageAttack
from repro.metrics import uniform_delay_metrics
from repro.monitors import (
    incremental_identifiable_placement,
    security_aware_placement,
)
from repro.monitors.placement import max_node_presence_ratio
from repro.reporting import format_table
from repro.scenarios.scenario import Scenario
from repro.topology.generators.isp import barabasi_albert_topology


def scenario_for(placement, topology, seed=3) -> Scenario:
    return Scenario(
        topology=topology,
        monitors=placement.monitors,
        path_set=placement.path_set,
        true_metrics=uniform_delay_metrics(topology, rng=seed),
        name="hardening",
    )


def success_by_presence_bucket(placement, topology) -> list[list]:
    """Bucket nodes by presence ratio; measure attack success per bucket."""
    scenario = scenario_for(placement, topology)
    path_set = placement.path_set
    rows = []
    buckets = [(0.0, 0.1), (0.1, 0.25), (0.25, 1.0)]
    for lo, hi in buckets:
        members = []
        for node in topology.nodes():
            ratio = len(path_set.paths_containing_node(node)) / path_set.num_paths
            if lo <= ratio < hi or (hi == 1.0 and ratio == 1.0):
                members.append(node)
        wins = 0
        for node in members:
            context = scenario.attack_context([node])
            outcome = MaxDamageAttack(
                context, stop_at_first_feasible=True, confined=True
            ).run()
            wins += bool(outcome.feasible)
        rate = wins / len(members) if members else float("nan")
        rows.append([f"{lo:.2f}-{hi:.2f}", len(members), rate])
    return rows


def main() -> None:
    # A preferential-attachment mesh: minimum degree 2, so the MMP rule
    # does not force most nodes to be monitors.
    topology = barabasi_albert_topology(24, attach=2, seed=11)
    print(f"topology: {topology.num_nodes} nodes, {topology.num_links} links")

    placement = incremental_identifiable_placement(topology, initial_monitors=6, rng=2)
    print(
        f"\nbaseline placement: {len(placement.monitors)} monitors, "
        f"rank {placement.identified_rank}/{topology.num_links}"
    )

    # ------------------------------------------------------------------
    # 1. Theorem 2's lever: presence ratio predicts attack success.
    # ------------------------------------------------------------------
    rows = success_by_presence_bucket(placement, topology)
    print(
        "\n"
        + format_table(
            ["node presence ratio", "nodes", "1-attacker success rate"], rows
        )
    )

    # ------------------------------------------------------------------
    # 2. The defender's move: minimise the worst presence ratio.
    # ------------------------------------------------------------------
    hardened = security_aware_placement(
        topology, candidates=10, initial_monitors=6, rng=2
    )
    compare = []
    for label, pl in [("random", placement), ("security-aware", hardened)]:
        worst = max_node_presence_ratio(pl.path_set, exclude=set(pl.monitors))
        compare.append(
            [label, len(pl.monitors), pl.identified_rank, f"{worst:.2f}"]
        )
    print(
        "\n"
        + format_table(
            ["placement", "monitors", "rank", "worst non-monitor presence ratio"],
            compare,
        )
    )
    print(
        "\nA compromised node's scapegoating power is its measurement-path "
        "coverage (Theorem 2); security-aware placement caps that coverage "
        "while preserving identifiability."
    )


if __name__ == "__main__":
    main()
