#!/usr/bin/env python3
"""ISP attack campaign: feasibility analysis on a Rocketfuel-style network.

The paper's intro motivates scapegoating with malicious autonomous systems
and backdoored routers inside ISP networks.  This example plays the
attacker's planning phase on a synthetic AS1221-style topology:

1. build the wireline scenario (hierarchical ISP, MMP-style monitors,
   identifiable measurement paths);
2. for a compromised aggregation router, enumerate which links it can
   *perfectly cut* — guaranteed-feasible, undetectable scapegoats;
3. run the maximum-damage search and compare the damage of each candidate
   victim;
4. show how the attack presence ratio of a victim predicts feasibility
   (Theorem 2 / Fig. 7 in miniature).

Run:  python examples/isp_attack_campaign.py   (~30 s: builds a 100+ node scenario)
"""

from repro import MaxDamageAttack, attack_presence_ratio, is_perfect_cut
from repro.attacks import ChosenVictimAttack, perfectly_cut_links
from repro.reporting import format_table
from repro.scenarios.experiments import standard_wireline_scenario


def main() -> None:
    scenario = standard_wireline_scenario(seed=0)
    print("wireline scenario:", scenario.describe())

    # Pick a compromised aggregation router: dual-homed, carries traffic
    # for the access routers behind it.
    attacker = next(n for n in scenario.topology.nodes() if str(n).startswith("agg"))
    context = scenario.attack_context([attacker])
    print(
        f"\ncompromised node: {attacker} "
        f"(controls {len(context.controlled_links)} links, "
        f"sits on {len(context.support)} of {context.num_paths} measurement paths)"
    )

    # ------------------------------------------------------------------
    # Guaranteed scapegoats: perfectly cut links.
    # ------------------------------------------------------------------
    sure_victims = perfectly_cut_links(
        scenario.path_set, [attacker], exclude_links=context.controlled_links
    )
    print(f"\nperfectly cut candidate victims: {len(sure_victims)}")
    for j in sure_victims[:5]:
        link = scenario.topology.link(j)
        print(f"  link {j} ({link.u} - {link.v}) — attack guaranteed & undetectable")

    # ------------------------------------------------------------------
    # Max-damage search over every reachable victim.
    # ------------------------------------------------------------------
    attack = MaxDamageAttack(context, confined=True)
    outcome = attack.run()
    if outcome.feasible:
        victims = [scenario.topology.link(j) for j in outcome.victim_links]
        print(
            f"\nmax-damage plan: frame {[f'{l.u}-{l.v}' for l in victims]} "
            f"for {outcome.damage:.0f} ms of total path damage "
            f"({outcome.mean_path_measurement:.1f} ms mean path delay)"
        )
    else:
        print("\nmax-damage search found no feasible victim for this node")

    # ------------------------------------------------------------------
    # Presence ratio vs feasibility (Theorem 2 in miniature).
    # ------------------------------------------------------------------
    candidates = [
        link.index
        for link in scenario.topology.links()
        if link.index not in context.controlled_links
        and scenario.path_set.paths_containing_link(link.index)
    ]
    # Show the whole spectrum: the 12 candidates with the highest ratios.
    by_ratio = sorted(
        candidates,
        key=lambda j: attack_presence_ratio(scenario.path_set, [attacker], [j]),
        reverse=True,
    )
    rows = []
    for j in by_ratio[:12]:
        ratio = attack_presence_ratio(scenario.path_set, [attacker], [j])
        feasible = ChosenVictimAttack(context, [j], confined=True).run().feasible
        rows.append(
            [
                j,
                f"{ratio:.2f}",
                is_perfect_cut(scenario.path_set, [attacker], [j]),
                feasible,
            ]
        )
    print(
        "\n"
        + format_table(
            ["victim link", "presence ratio", "perfect cut", "attack feasible"], rows
        )
    )
    print(
        "\nhigher presence ratio -> feasible; ratio 1.0 (perfect cut) -> "
        "guaranteed (Theorem 1)."
    )


if __name__ == "__main__":
    main()
