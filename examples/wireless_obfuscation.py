#!/usr/bin/env python3
"""Wireless obfuscation: muddying tomography in a multi-hop mesh.

The paper's wireless experiments use random geometric graphs (100 nodes,
density lambda = 5, ~5 neighbours each).  This example shows the
*obfuscation* strategy there — instead of framing one victim, a single
compromised mesh node pushes a batch of links into the uncertain band so
the operator cannot localise anything — and then detection:

1. build the RGG scenario;
2. find a well-connected attacker and run the obfuscation attack
   (success requires >= 5 uncertain victim links, as in Section V-C2);
3. diagnose from the operator's side: a wall of "uncertain" links;
4. run the consistency detector on both the plain and stealth-seeking
   variants of the attack.

Run:  python examples/wireless_obfuscation.py   (~20 s)
"""

from collections import Counter

from repro import ObfuscationAttack
from repro.detection import ConsistencyDetector
from repro.scenarios.experiments import standard_wireless_scenario


def main() -> None:
    scenario = standard_wireless_scenario(seed=0)
    print("wireless scenario:", scenario.describe())

    # Pick the highest-degree node as the compromised mesh router.
    attacker = max(scenario.topology.nodes(), key=scenario.topology.degree)
    context = scenario.attack_context([attacker])
    print(
        f"\ncompromised mesh node: {attacker} "
        f"(degree {scenario.topology.degree(attacker)}, "
        f"on {len(context.support)} of {context.num_paths} paths)"
    )

    attack = ObfuscationAttack(context, min_victims=5)
    outcome = attack.run()
    if not outcome.feasible:
        print(
            "obfuscation infeasible for this node "
            f"(only {len(outcome.victim_links)} pinnable victims); "
            "try another seed/attacker"
        )
        return

    states = Counter(str(s) for s in outcome.diagnosis.states)
    print(
        f"\nobfuscation succeeded: {len(outcome.victim_links)} victim links pinned "
        f"uncertain, damage {outcome.damage:.0f} ms"
    )
    print("operator's per-link state tally:", dict(states))
    uncertain = outcome.diagnosis.uncertain
    print(
        f"links the operator cannot classify: {len(uncertain)} "
        f"(including all {len(context.controlled_links)} attacker links, "
        "hidden in the crowd)"
    )

    detector = ConsistencyDetector(scenario.path_set.routing_matrix(), alpha=200.0)
    plain_check = detector.check(outcome.observed_measurements)
    print(
        f"\ndetector vs plain obfuscation: detected={plain_check.detected} "
        f"(residual {plain_check.residual_l1:.1f} ms)"
    )

    stealthy = ObfuscationAttack(
        context, min_victims=2, max_victims=5, stealthy=True
    ).run()
    if stealthy.feasible:
        stealth_check = detector.check(stealthy.observed_measurements)
        print(
            f"detector vs stealth-seeking obfuscation "
            f"({len(stealthy.victim_links)} victims): "
            f"detected={stealth_check.detected} "
            f"(residual {stealth_check.residual_l1:.3f} ms)"
        )
    else:
        print(
            "stealth-seeking obfuscation infeasible here — no "
            "measurement-consistent manipulation pins enough victims"
        )


if __name__ == "__main__":
    main()
