"""Folding sweep results into report tables.

A results file is self-describing (header + per-point records), so
aggregation works from the file alone; passing the spec additionally
verifies the file belongs to it.  Rows are grouped by
``(topology, strategy)`` — the axes Figs. 3-6 of the paper sweep — and
report the feasibility ("success") rate, mean damage over feasible
points, and the consistency-detector hit rate, matching the metrics the
paper tabulates.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import SerializationError
from repro.sweep.spec import SweepSpec

__all__ = ["RESULTS_FORMAT", "RESULTS_VERSION", "aggregate_rows", "load_results"]

RESULTS_FORMAT = "repro-sweep-results"
RESULTS_VERSION = 1


def load_results(
    path: str | Path, *, spec: SweepSpec | None = None
) -> tuple[dict, list[dict]]:
    """Parse a sweep results file into ``(header, points)``.

    Points come back sorted by grid index, so an interrupted-then-resumed
    file aggregates identically to an uninterrupted one.  Any structural
    problem — unparseable line, missing or foreign header, duplicate
    point — raises :class:`SerializationError`.
    """
    file_path = Path(path)
    try:
        lines = file_path.read_text().splitlines()
    except OSError as exc:
        raise SerializationError(f"cannot read results file {file_path}: {exc}") from exc
    if not lines:
        raise SerializationError(f"results file {file_path} is empty (no header)")
    parsed = []
    for number, line in enumerate(lines, start=1):
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"results file {file_path} is corrupt at line {number}: {exc}"
            ) from exc
    header = parsed[0]
    if (
        not isinstance(header, dict)
        or header.get("kind") != "header"
        or header.get("format") != RESULTS_FORMAT
    ):
        raise SerializationError(f"results file {file_path} has no valid header line")
    if header.get("version") != RESULTS_VERSION:
        raise SerializationError(
            f"unsupported results version {header.get('version')!r} in {file_path}"
        )
    if spec is not None and header.get("spec_digest") != spec.digest:
        raise SerializationError(
            f"results file {file_path} belongs to a different sweep spec "
            f"(digest {header.get('spec_digest')!r} != {spec.digest!r})"
        )
    points: list[dict] = []
    seen: set[str] = set()
    for number, record in enumerate(parsed[1:], start=2):
        if not isinstance(record, dict) or record.get("kind") != "point":
            raise SerializationError(
                f"results file {file_path} line {number}: expected a point record"
            )
        digest = record.get("digest")
        if digest in seen:
            raise SerializationError(
                f"results file {file_path} line {number}: duplicate point {digest!r}"
            )
        seen.add(digest)
        result = record.get("result")
        if not isinstance(result, dict):
            raise SerializationError(
                f"results file {file_path} line {number}: point has no result object"
            )
        points.append(result)
    points.sort(key=lambda r: r["index"])
    return header, points


def aggregate_rows(points: list[dict]) -> list[dict]:
    """Fold point records into per-``(topology, strategy)`` summary rows."""
    groups: dict[tuple[str, str], list[dict]] = {}
    for point in points:
        groups.setdefault((point["topology"], point["strategy"]), []).append(point)
    rows = []
    for (topology, strategy), members in sorted(groups.items()):
        feasible = [p for p in members if p.get("feasible")]
        audited = [p for p in feasible if p.get("detected") is not None]
        detected = [p for p in audited if p["detected"]]
        rows.append(
            {
                "topology": topology,
                "strategy": strategy,
                "points": len(members),
                "feasible": len(feasible),
                "success_rate": len(feasible) / len(members) if members else 0.0,
                "mean_damage": (
                    sum(p["damage"] for p in feasible) / len(feasible)
                    if feasible
                    else None
                ),
                "detection_rate": (
                    len(detected) / len(audited) if audited else None
                ),
            }
        )
    return rows
