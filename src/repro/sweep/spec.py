"""Declarative sweep specifications: a parameter grid as strict JSON.

A sweep spec names the axes of a scenario grid — topology families,
attack strategies, attacker-set sizes — plus the scenario- and
attack-level knobs shared by every point.  :meth:`SweepSpec.expand`
enumerates the Cartesian product into :class:`GridPoint`\\ s in a
canonical, *stable* order (topology-major, so points sharing a routing
matrix are contiguous and shard together), and stamps each point with a
:func:`repro.obs.manifest.config_digest` of its effective configuration.
The digest — not the index — is the resume key: a restarted sweep skips
any point whose digest already appears in the checkpoint file, so spec
edits that reorder axes never silently re-use a stale result.

Specs are strict JSON (the same sentinel rules as
:func:`repro.scenarios.serialization.scenario_to_json`): non-finite
numbers travel as the string sentinels ``"Infinity"`` / ``"-Infinity"`` /
``"NaN"``, never as bare tokens.

Example spec::

    {
      "format": "repro-sweep",
      "version": 1,
      "name": "feasibility-grid",
      "seed": 0,
      "strategies": ["chosen-victim", "max-damage", "obfuscation"],
      "topologies": [
        {"kind": "fig1"},
        {"kind": "grid", "rows": 3, "cols": 3}
      ],
      "attacker_counts": [1, 2, 3],
      "scenario": {"cap": 2000.0, "margin": 1.0},
      "attack": {"mode": "paper", "min_victims": 2, "alpha": 200.0}
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import SerializationError, ValidationError
from repro.obs.manifest import config_digest
from repro.scenarios.serialization import _decode_float, _encode_float

__all__ = ["GridPoint", "SweepSpec", "TOPOLOGY_KINDS"]

_FORMAT = "repro-sweep"
_FORMAT_VERSION = 1

#: Strategies a sweep can run (the paper's three plus the naive baseline).
STRATEGIES = ("chosen-victim", "max-damage", "obfuscation", "naive")

#: Topology kinds a spec may name, with their generator parameters.
#: Values are (parameter names accepted, whether the generator is seeded).
TOPOLOGY_KINDS: dict[str, tuple[tuple[str, ...], bool]] = {
    "fig1": ((), False),
    "grid": (("rows", "cols"), False),
    "ladder": (("rungs",), False),
    "ring": (("num_nodes",), False),
    "tree": (("depth", "branching"), False),
    "fattree": (("k",), False),
    "isp": (
        ("backbone_nodes", "pops_per_backbone", "extra_backbone_chords"),
        True,
    ),
    "isp-large": (
        ("backbone_nodes", "pops_per_backbone", "extra_backbone_chords"),
        True,
    ),
    "rgg": (("num_nodes", "density", "mean_degree"), True),
    "waxman": (("num_nodes", "alpha", "beta"), True),
}

#: Scenario-level knobs a spec's ``scenario`` block may set, mapping to
#: :meth:`repro.scenarios.scenario.Scenario.build` keyword arguments.
_SCENARIO_KEYS = (
    "cap",
    "margin",
    "redundancy",
    "max_per_pair",
    "pair_budget",
    "num_monitors",
    "monitor_fraction",
    "delay_range",
    "thresholds",
)

#: Attack-level knobs a spec's ``attack`` block may set.  ``max_victims``,
#: ``estimator`` and ``estimator_params`` have no default entry on
#: purpose: absent, the obfuscation strategy pins ``max_victims ==
#: min_victims`` and detection runs the paper's least squares (the
#: historical behaviour), and keeping them out of the effective config
#: keeps every existing point digest — and therefore resume keys and
#: golden fixtures — unchanged.
_ATTACK_KEYS = (
    "mode",
    "confined",
    "stealthy",
    "min_victims",
    "max_victims",
    "alpha",
    "estimator",
    "estimator_params",
)

_ATTACK_DEFAULTS = {
    "mode": "paper",
    "confined": False,
    "stealthy": False,
    "min_victims": 2,
    "alpha": 200.0,
}


@dataclass(frozen=True)
class GridPoint:
    """One fully specified cell of the sweep grid.

    ``config`` is the flat effective configuration (JSON-safe) the digest
    is computed over; equal configs always share a digest, whatever their
    position in the grid.
    """

    index: int
    topology_index: int
    topology_label: str
    strategy: str
    num_attackers: int
    config: dict = field(hash=False)
    digest: str = ""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


class SweepSpec:
    """A validated, expanded-on-demand sweep specification.

    Construct via :meth:`from_dict`, :meth:`from_json`, or :meth:`load`;
    the constructor takes already-validated fields.  Instances are
    picklable plain data — worker processes receive the spec itself and
    re-derive everything locally.
    """

    def __init__(
        self,
        *,
        name: str,
        seed: int,
        strategies: tuple[str, ...],
        topologies: tuple[dict, ...],
        attacker_counts: tuple[int, ...],
        scenario: dict,
        attack: dict,
    ) -> None:
        self.name = name
        self.seed = seed
        self.strategies = strategies
        self.topologies = topologies
        self.attacker_counts = attacker_counts
        self.scenario = scenario
        self.attack = attack

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, doc: dict) -> "SweepSpec":
        """Validate and build a spec from a parsed JSON document."""
        if not isinstance(doc, dict) or doc.get("format") != _FORMAT:
            raise SerializationError(
                f"not a {_FORMAT} document (format={doc.get('format')!r} "
                "missing or wrong)"
                if isinstance(doc, dict)
                else "sweep spec must be a JSON object"
            )
        if doc.get("version") != _FORMAT_VERSION:
            raise SerializationError(
                f"unsupported sweep spec version {doc.get('version')!r}"
            )
        unknown = set(doc) - {
            "format",
            "version",
            "name",
            "seed",
            "strategies",
            "topologies",
            "attacker_counts",
            "scenario",
            "attack",
        }
        _require(not unknown, f"unknown sweep spec fields: {sorted(unknown)}")

        name = doc.get("name", "")
        _require(isinstance(name, str), "spec 'name' must be a string")
        seed = doc.get("seed", 0)
        _require(
            isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
            f"spec 'seed' must be a non-negative integer, got {seed!r}",
        )

        strategies = doc.get("strategies")
        _require(
            isinstance(strategies, list) and strategies,
            "spec 'strategies' must be a non-empty list",
        )
        for s in strategies:
            _require(s in STRATEGIES, f"unknown strategy {s!r}; choose from {STRATEGIES}")
        _require(
            len(set(strategies)) == len(strategies),
            "spec 'strategies' contains duplicates",
        )

        topologies = doc.get("topologies")
        _require(
            isinstance(topologies, list) and topologies,
            "spec 'topologies' must be a non-empty list",
        )
        normalised_topologies = tuple(
            _normalise_topology(entry, position) for position, entry in enumerate(topologies)
        )
        labels = [t["label"] for t in normalised_topologies]
        _require(
            len(set(labels)) == len(labels),
            f"topology labels must be unique, got {labels}",
        )

        attacker_counts = doc.get("attacker_counts", [1])
        _require(
            isinstance(attacker_counts, list) and attacker_counts,
            "spec 'attacker_counts' must be a non-empty list",
        )
        for count in attacker_counts:
            _require(
                isinstance(count, int) and not isinstance(count, bool) and count >= 1,
                f"attacker counts must be integers >= 1, got {count!r}",
            )
        _require(
            len(set(attacker_counts)) == len(attacker_counts),
            "spec 'attacker_counts' contains duplicates",
        )

        scenario = doc.get("scenario", {})
        _require(isinstance(scenario, dict), "spec 'scenario' must be an object")
        unknown = set(scenario) - set(_SCENARIO_KEYS)
        _require(not unknown, f"unknown scenario keys: {sorted(unknown)}")
        scenario = {key: _decode_scalarish(value) for key, value in scenario.items()}

        attack = dict(_ATTACK_DEFAULTS)
        attack_doc = doc.get("attack", {})
        _require(isinstance(attack_doc, dict), "spec 'attack' must be an object")
        unknown = set(attack_doc) - set(_ATTACK_KEYS)
        _require(not unknown, f"unknown attack keys: {sorted(unknown)}")
        attack.update({key: _decode_scalarish(value) for key, value in attack_doc.items()})
        _require(
            attack["mode"] in ("paper", "exclusive"),
            f"attack mode must be 'paper' or 'exclusive', got {attack['mode']!r}",
        )
        _require(
            isinstance(attack["min_victims"], int) and attack["min_victims"] >= 1,
            f"attack min_victims must be an integer >= 1, got {attack['min_victims']!r}",
        )
        if "max_victims" in attack:
            _require(
                isinstance(attack["max_victims"], int)
                and not isinstance(attack["max_victims"], bool)
                and attack["max_victims"] >= attack["min_victims"],
                f"attack max_victims must be an integer >= min_victims "
                f"({attack['min_victims']}), got {attack['max_victims']!r}",
            )
        if "estimator" in attack:
            from repro.tomography.estimator_zoo import estimator_names

            _require(
                attack["estimator"] in estimator_names(),
                f"attack estimator must be one of {estimator_names()}, "
                f"got {attack['estimator']!r}",
            )
        if "estimator_params" in attack:
            _require(
                "estimator" in attack,
                "attack estimator_params requires an explicit estimator name",
            )
            params = attack["estimator_params"]
            _require(
                isinstance(params, dict)
                and all(isinstance(k, str) for k in params),
                f"attack estimator_params must be an object with string keys, "
                f"got {params!r}",
            )

        return cls(
            name=name,
            seed=seed,
            strategies=tuple(strategies),
            topologies=normalised_topologies,
            attacker_counts=tuple(attacker_counts),
            scenario=scenario,
            attack=attack,
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        """Parse a spec from its JSON text."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SerializationError(f"invalid sweep spec JSON: {exc}") from exc
        return cls.from_dict(doc)

    @classmethod
    def load(cls, path: str | Path) -> "SweepSpec":
        """Read and validate a spec file."""
        file_path = Path(path)
        try:
            text = file_path.read_text()
        except OSError as exc:
            raise SerializationError(f"cannot read sweep spec {file_path}: {exc}") from exc
        return cls.from_json(text)

    # ------------------------------------------------------------------
    # canonical forms
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The canonical JSON-safe document (inverse of :meth:`from_dict`)."""
        return {
            "format": _FORMAT,
            "version": _FORMAT_VERSION,
            "name": self.name,
            "seed": self.seed,
            "strategies": list(self.strategies),
            "topologies": [dict(entry) for entry in self.topologies],
            "attacker_counts": list(self.attacker_counts),
            "scenario": {k: _encode_scalarish(v) for k, v in sorted(self.scenario.items())},
            "attack": {k: _encode_scalarish(v) for k, v in sorted(self.attack.items())},
        }

    @property
    def digest(self) -> str:
        """Canonical SHA-256 of the whole spec (the checkpoint header key)."""
        return config_digest(self.to_dict())

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> list[GridPoint]:
        """Enumerate the grid, topology-major, with per-point digests.

        The order is part of the format: points sharing a topology are
        contiguous (so sharding by topology groups them into one cache
        domain), and the index is stable for a given spec document.
        """
        points: list[GridPoint] = []
        for topo_index, topo in enumerate(self.topologies):
            for strategy in self.strategies:
                for num_attackers in self.attacker_counts:
                    config = {
                        "sweep": self.name,
                        "seed": self.seed,
                        "topology": dict(topo),
                        "strategy": strategy,
                        "num_attackers": num_attackers,
                        "scenario": {
                            k: _encode_scalarish(v) for k, v in sorted(self.scenario.items())
                        },
                        "attack": {
                            k: _encode_scalarish(v) for k, v in sorted(self.attack.items())
                        },
                    }
                    points.append(
                        GridPoint(
                            index=len(points),
                            topology_index=topo_index,
                            topology_label=topo["label"],
                            strategy=strategy,
                            num_attackers=num_attackers,
                            config=config,
                            digest=config_digest(config),
                        )
                    )
        return points

    def num_points(self) -> int:
        """Grid size without materialising the points."""
        return len(self.topologies) * len(self.strategies) * len(self.attacker_counts)


def _normalise_topology(entry: object, position: int) -> dict:
    """Validate one ``topologies`` entry; returns it with a ``label``."""
    _require(isinstance(entry, dict), f"topologies[{position}] must be an object")
    kind = entry.get("kind")
    _require(
        kind in TOPOLOGY_KINDS,
        f"topologies[{position}]: unknown kind {kind!r}; "
        f"choose from {sorted(TOPOLOGY_KINDS)}",
    )
    allowed, _ = TOPOLOGY_KINDS[kind]
    unknown = set(entry) - {"kind", "label"} - set(allowed)
    _require(
        not unknown,
        f"topologies[{position}] ({kind}): unknown parameters {sorted(unknown)}; "
        f"allowed: {sorted(allowed)}",
    )
    out = {"kind": kind}
    for key in allowed:
        if key in entry:
            out[key] = _decode_scalarish(entry[key])
    label = entry.get("label")
    if label is None:
        params = "-".join(str(out[k]) for k in allowed if k in out)
        label = kind if not params else f"{kind}-{params}"
    _require(isinstance(label, str) and label != "", "topology label must be a string")
    out["label"] = label
    return out


def build_topology(entry: dict, *, seed: int):
    """Construct the topology a normalised spec entry describes.

    Seeded families derive their generator seed from the sweep seed so the
    whole grid is reproducible from one number.
    """
    kind = entry["kind"]
    params = {
        k: v for k, v in entry.items() if k not in ("kind", "label")
    }
    if kind == "fig1":
        from repro.topology.generators.simple import paper_example_network

        return paper_example_network()
    if kind == "grid":
        from repro.topology.generators.simple import grid_topology

        return grid_topology(params.get("rows", 3), params.get("cols", 3))
    if kind == "ladder":
        from repro.topology.generators.simple import ladder_topology

        return ladder_topology(params.get("rungs", 4))
    if kind == "ring":
        from repro.topology.generators.simple import ring_topology

        return ring_topology(params.get("num_nodes", 6))
    if kind == "tree":
        from repro.topology.generators.simple import tree_topology

        return tree_topology(params.get("depth", 3), params.get("branching", 2))
    if kind == "fattree":
        from repro.topology.generators.extra import fat_tree_topology

        return fat_tree_topology(params.get("k", 4))
    if kind == "isp":
        from repro.topology.generators.isp import synthetic_rocketfuel

        return synthetic_rocketfuel(entry["label"], seed=seed, **params)
    if kind == "isp-large":
        from repro.topology.generators.isp import large_isp_topology

        return large_isp_topology(entry["label"], seed=seed, **params)
    if kind == "rgg":
        from repro.topology.generators.geometric import random_geometric_topology

        return random_geometric_topology(
            params.get("num_nodes", 50),
            params.get("density", 5.0),
            params.get("mean_degree", 5.0),
            seed=seed,
        )
    from repro.topology.generators.extra import waxman_topology

    return waxman_topology(
        params.get("num_nodes", 50),
        params.get("alpha", 0.4),
        params.get("beta", 0.4),
        seed=seed,
    )


def _encode_scalarish(value: object) -> object:
    """Strict-JSON encoding of a scalar-or-small-container knob value."""
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, (list, tuple)):
        return [_encode_scalarish(v) for v in value]
    if isinstance(value, dict):
        return {k: _encode_scalarish(v) for k, v in sorted(value.items())}
    return value


def _decode_scalarish(value: object) -> object:
    """Inverse of :func:`_encode_scalarish` (sentinel strings -> floats)."""
    if isinstance(value, str) and value in ("Infinity", "-Infinity", "NaN", "inf", "-inf", "nan"):
        return _decode_float(value)
    if isinstance(value, list):
        return [_decode_scalarish(v) for v in value]
    if isinstance(value, dict):
        return {k: _decode_scalarish(v) for k, v in value.items()}
    return value
