"""Cross-process persistent store for routing-matrix factorizations.

Everything expensive in a sweep — the estimator, the residual projector,
the detector's blind set — is a function of the routing matrix ``R``
alone, and :func:`repro.obs.manifest.matrix_digest` already names each
distinct ``R`` canonically.  This module spills the dense SVD factors to
disk under that digest so *separate processes* share warm
factorizations: sharded sweep workers, repeated ``repro sweep`` /
``repro run`` invocations, and resumed campaigns all skip the SVD for
any matrix some earlier process already factorised.

Design (following the manifest/checkpoint discipline of the sweep
runner's append-only results files):

- **Layout** — one ``.npz`` blob per digest under
  ``<root>/<digest[:2]>/<digest>.npz`` (the two-hex fan-out keeps
  directories small at campaign scale).
- **Atomic writes** — blobs are written to a unique same-directory temp
  file and published with :func:`os.replace`; concurrent writers of the
  same digest race safely (last complete write wins, readers never see a
  partial blob).
- **Version stamps** — every entry carries :data:`STORE_VERSION` and its
  own digest; entries from another format revision are treated as
  *misses*, never errors, so upgrading the library quietly refreshes the
  store.
- **Corrupt-entry refusal** — a truncated/unreadable blob, or one whose
  embedded digest/shape disagrees with its filename, raises the typed
  :class:`~repro.exceptions.StoreCorruptError`.  The store never
  overwrites an existing entry (content-addressed: same digest means
  same factors), so corrupt evidence survives for diagnosis.
- **Read-only degradation** — an unwritable store directory turns writes
  into warnings (one ``sweep_store`` obs event, then silence), and the
  owning cache keeps working purely in memory.

The store holds *dense* SVD factors only: the sparse backend's
Gram/LSMR state is cheap to rebuild and exporting it would force the
very dense SVD the backend exists to avoid
(:meth:`~repro.tomography.linear_system.LinearSystem.export_factors`
returns ``None`` there, and the cache simply skips persisting).
"""

from __future__ import annotations

import io
import itertools
import os
import zipfile
from collections import Counter
from pathlib import Path

import numpy as np

from repro import config
from repro.exceptions import StoreCorruptError, ValidationError
from repro.obs import core as obs

__all__ = ["FactorizationStore", "STORE_VERSION", "default_store"]

#: Format revision of on-disk entries; bump when the payload layout
#: changes.  Readers treat any other version as a miss, never an error.
STORE_VERSION = 1

#: Environment knob naming the store directory ("" = store disabled).
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Array keys every entry must carry (besides the metadata scalars).
_FACTOR_KEYS = ("u", "s", "vt", "rank")

#: Process-wide uniquifier for temp-file names (two threads of one
#: process writing the same digest must not share a temp path).
_TMP_COUNTER = itertools.count()


def default_store() -> "FactorizationStore | None":
    """The store named by ``REPRO_CACHE_DIR``, or ``None`` when unset.

    The single dispatch site of the knob: every component that wants the
    shared store (the sweep cache, the bench harness) resolves it here,
    so the environment is read through the config registry exactly once
    per construction.
    """
    root = config.get_str(CACHE_DIR_ENV_VAR)
    if not root:
        return None
    return FactorizationStore(root)


class FactorizationStore:
    """Digest-keyed persistent blob store of dense SVD factors.

    Instances are cheap handles over a directory; every operation stats
    the filesystem, so two processes pointing at the same ``root`` see
    each other's completed writes immediately.  ``stats`` counts
    ``hit`` / ``miss`` / ``write`` / ``skip`` / ``degraded`` on the
    instance, and each load/save emits a ``sweep_store`` obs event when
    a run log is active.
    """

    def __init__(self, root: str | Path) -> None:
        if not str(root):
            raise ValidationError("factorization store root must be a non-empty path")
        self.root = Path(root)
        self.stats: Counter[str] = Counter()
        self._writable: bool | None = None  # unknown until the first save

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def entry_path(self, digest: str) -> Path:
        """Where the blob for ``digest`` lives (existing or not)."""
        if not digest or any(c in digest for c in "/\\."):
            raise ValidationError(f"malformed store digest {digest!r}")
        return self.root / digest[:2] / f"{digest}.npz"

    def _event(self, op: str, **fields: object) -> None:
        if obs.is_enabled():
            obs.event("sweep_store", op=op, **fields)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    def load(self, digest: str, *, shape: tuple[int, int] | None = None) -> dict | None:
        """The factor payload stored under ``digest``, or ``None`` on miss.

        ``shape`` optionally cross-checks the entry against the matrix
        the caller is about to factorise; a mismatch under the right
        digest means the blob lies about itself and is refused as
        corrupt.  Version-mismatched entries are misses (the caller
        re-factorises and a fresh process eventually rewrites them);
        truncated or inconsistent blobs raise
        :class:`~repro.exceptions.StoreCorruptError` and are left on
        disk untouched.
        """
        path = self.entry_path(digest)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.stats["miss"] += 1
            self._event("load", hit=False, digest=digest)
            return None
        except OSError as exc:
            raise StoreCorruptError(f"store entry {path} is unreadable: {exc}") from exc
        try:
            with np.load(io.BytesIO(blob), allow_pickle=False) as archive:
                payload = {key: archive[key] for key in archive.files}
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
            raise StoreCorruptError(
                f"store entry {path} is corrupt (truncated or not an npz blob): {exc}"
            ) from exc
        version = payload.get("store_version")
        if version is None or int(version) != STORE_VERSION:
            self.stats["miss"] += 1
            self._event("load", hit=False, digest=digest, version_mismatch=True)
            return None
        missing = [
            key for key in (*_FACTOR_KEYS, "digest", "shape") if key not in payload
        ]
        if missing:
            raise StoreCorruptError(
                f"store entry {path} is missing factor arrays {missing}"
            )
        if str(payload.get("digest")) != digest:
            raise StoreCorruptError(
                f"store entry {path} claims digest {payload.get('digest')!r}"
            )
        if shape is not None and tuple(int(v) for v in payload["shape"]) != tuple(shape):
            raise StoreCorruptError(
                f"store entry {path} has shape {payload['shape']} "
                f"but the matrix under this digest is {shape}"
            )
        self.stats["hit"] += 1
        self._event("load", hit=True, digest=digest)
        return {key: payload[key] for key in _FACTOR_KEYS}

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def save(
        self, digest: str, factors: dict[str, np.ndarray], *, shape: tuple[int, int]
    ) -> bool:
        """Persist ``factors`` under ``digest``; returns True when written.

        Existing entries are never rewritten (content-addressed: same
        digest, same factors) — including corrupt ones, which stay on
        disk as evidence.  Unwritable directories degrade the store to a
        no-op with a single warning event instead of failing the sweep.
        """
        if self._writable is False:
            self.stats["skip"] += 1
            return False
        path = self.entry_path(digest)
        if path.exists():
            self.stats["skip"] += 1
            self._event("save", written=False, digest=digest)
            return False
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{next(_TMP_COUNTER)}.tmp"
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    store_version=np.asarray(STORE_VERSION, dtype=np.int64),
                    digest=np.asarray(digest),
                    shape=np.asarray(shape, dtype=np.int64),
                    **{key: np.asarray(factors[key]) for key in _FACTOR_KEYS},
                )
            os.replace(tmp, path)  # atomic publish: last complete write wins
        except OSError as exc:
            self._writable = False
            self.stats["degraded"] += 1
            self._event("save", written=False, digest=digest, degraded=str(exc))
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        self._writable = True
        self.stats["write"] += 1
        self._event("save", written=True, digest=digest)
        return True
