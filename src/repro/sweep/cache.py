"""Shared-work caches for grid sweeps.

Many grid points differ only in strategy or attacker placement while
sharing a routing matrix — rank/support structure is the natural cache
key (cf. the identifiability literature: the estimator, the residual
projector, and the detector's blind set are all functions of ``R``
alone).  :class:`FactorizationCache` therefore keys every shared object
by the canonical :func:`repro.obs.manifest.matrix_digest` of ``R``:

- one :class:`~repro.tomography.linear_system.LinearSystem` per distinct
  routing matrix — grid points on the same topology never re-run the SVD;
- one :class:`~repro.attacks.lp.IncrementalLpSolver` base block per
  (matrix, attacker set, mode) — victim-candidate scans across grid
  points splice rows into the same assembled constraint arrays;
- one :class:`~repro.detection.auditor.TomographyAuditor` per (matrix,
  alpha), sharing the system's factors with the detector.

The cache is process-local by design: worker processes each hold their
own (the sweep runner shards grid points so points sharing a topology
land in the same worker), and nothing here is thread-safe.  Hits and
misses are counted on the instance and reported as ``sweep_cache`` obs
events when a run log is active.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.attacks.base import AttackContext
from repro.attacks.chosen_victim import build_chosen_victim_bands
from repro.attacks.lp import IncrementalLpSolver
from repro.attacks.lp_engine import resolve_engine_name
from repro.detection.auditor import TomographyAuditor
from repro.obs import core as obs
from repro.obs.manifest import matrix_digest
from repro.scenarios.scenario import Scenario
from repro.tomography.linear_system import LinearSystem

__all__ = ["FactorizationCache"]


class FactorizationCache:
    """Process-local cache of factorisations and LP base blocks.

    All lookups are by value-digest of the routing matrix, never by object
    identity, so two scenarios that happen to produce equal matrices share
    one kernel.
    """

    def __init__(self) -> None:
        self._systems: dict[str, LinearSystem] = {}
        self._solvers: dict[tuple, IncrementalLpSolver] = {}
        self._auditors: dict[tuple, TomographyAuditor] = {}
        self.stats: Counter[str] = Counter()

    def _count(self, kind: str, hit: bool, **fields: object) -> None:
        self.stats[f"{kind}_{'hit' if hit else 'miss'}"] += 1
        if obs.is_enabled():
            obs.event("sweep_cache", kind=kind, hit=hit, **fields)

    # ------------------------------------------------------------------
    # the three cache layers
    # ------------------------------------------------------------------
    def system_for(self, routing_matrix: np.ndarray) -> LinearSystem:
        """The shared :class:`LinearSystem` for this routing matrix."""
        key = matrix_digest(routing_matrix)
        system = self._systems.get(key)
        if system is None:
            system = LinearSystem(routing_matrix)
            self._systems[key] = system
            self._count("system", False, digest=key)
        else:
            self._count("system", True, digest=key)
        return system

    def context_for(
        self, scenario: Scenario, attackers: tuple
    ) -> AttackContext:
        """An attack context whose kernel comes from the shared cache."""
        return scenario.attack_context(
            attackers, system=self.system_for(scenario.path_set.routing_matrix())
        )

    def solver_for(
        self,
        context: AttackContext,
        *,
        mode: str = "paper",
        confined: bool = False,
        stealthy: bool = False,
        engine: str | None = None,
    ) -> IncrementalLpSolver:
        """The shared incremental LP solver for victim-candidate scans.

        The base block is the empty-victim chosen-victim bands of this
        context (controlled links normal, plus exclusive/confined rows) —
        exactly what :class:`~repro.attacks.max_damage.MaxDamageAttack`
        assembles internally, so it can be handed to its
        ``shared_solver`` parameter directly.  ``engine`` selects the LP
        engine (resolved immediately so the cache key reflects the actual
        engine, not the request); a warm-started ``"highs"`` solver keeps
        its basis across every grid point that shares it.
        """
        engine_name = resolve_engine_name(engine)
        key = (
            context.system.digest,
            tuple(sorted(context.controlled_links)),
            mode,
            confined,
            stealthy,
            context.cap,
            context.margin,
            (context.thresholds.lower, context.thresholds.upper),
            engine_name,
        )
        solver = self._solvers.get(key)
        if solver is None:
            base_bands = build_chosen_victim_bands(context, (), mode, confined=confined)
            solver = IncrementalLpSolver(
                None,
                context.baseline_estimate,
                context.support,
                context.num_paths,
                base_bands,
                cap=context.cap,
                sub_operator=context.support_operator,
                consistency_columns=(
                    context.residual_projector_support() if stealthy else None
                ),
                engine=engine_name,
            )
            self._solvers[key] = solver
            self._count("solver", False, digest=key[0])
        else:
            self._count("solver", True, digest=key[0])
        return solver

    def auditor_for(self, scenario: Scenario, *, alpha: float = 200.0) -> TomographyAuditor:
        """The shared auditor for this scenario's routing matrix."""
        system = self.system_for(scenario.path_set.routing_matrix())
        key = (
            system.digest,
            float(alpha),
            (scenario.thresholds.lower, scenario.thresholds.upper),
        )
        auditor = self._auditors.get(key)
        if auditor is None:
            auditor = scenario.auditor(alpha, system=system)
            self._auditors[key] = auditor
            self._count("auditor", False, digest=key[0])
        else:
            self._count("auditor", True, digest=key[0])
        return auditor
