"""Shared-work caches for grid sweeps.

Many grid points differ only in strategy or attacker placement while
sharing a routing matrix — rank/support structure is the natural cache
key (cf. the identifiability literature: the estimator, the residual
projector, and the detector's blind set are all functions of ``R``
alone).  :class:`FactorizationCache` therefore keys every shared object
by the canonical :func:`repro.obs.manifest.matrix_digest` of ``R``:

- one :class:`~repro.tomography.linear_system.LinearSystem` per distinct
  routing matrix — grid points on the same topology never re-run the SVD;
- one :class:`~repro.attacks.lp.IncrementalLpSolver` base block per
  (matrix, attacker set, mode) — victim-candidate scans across grid
  points splice rows into the same assembled constraint arrays;
- one :class:`~repro.detection.auditor.TomographyAuditor` per (matrix,
  alpha), sharing the system's factors with the detector.

A cache *hit* is a dict get, nothing more: the routing matrix of a
scenario is built once, its digest is hashed once, and both are memoised
per scenario object — repeat lookups re-pay neither the O(paths x links)
matrix assembly nor the O(m·n) canonical hashing (the ``digest_compute``
stat counts exactly how many hashes happened, which white-box tests pin).

The in-memory layers are process-local by design: worker processes each
hold their own (the sweep runner shards grid points so points sharing a
topology land in the same worker), and nothing here is thread-safe.
Underneath, an optional :class:`~repro.sweep.store.FactorizationStore`
(``store=`` argument, or the ``REPRO_CACHE_DIR`` environment knob)
shares the *factorizations* across processes: a fresh worker or a
repeated CLI invocation imports the dense SVD factors from disk instead
of recomputing them, and first-time factorizations are spilled back.
Hits and misses are counted on the instance and reported as
``sweep_cache`` obs events when a run log is active.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.attacks.base import AttackContext
from repro.attacks.chosen_victim import build_chosen_victim_bands
from repro.attacks.lp import IncrementalLpSolver
from repro.attacks.lp_engine import resolve_engine_name
from repro.detection.auditor import TomographyAuditor
from repro.exceptions import ValidationError
from repro.obs import core as obs
from repro.obs.manifest import config_digest, matrix_digest
from repro.tomography.estimator_zoo import resolve_estimator
from repro.scenarios.scenario import Scenario
from repro.sweep.store import FactorizationStore, default_store
from repro.tomography.linear_system import LinearSystem

__all__ = ["FactorizationCache"]

#: Sentinel distinguishing "no store" from "resolve from the environment".
_FROM_ENV = object()


class FactorizationCache:
    """Process-local cache of factorisations and LP base blocks.

    All lookups are by value-digest of the routing matrix, never by object
    identity, so two scenarios that happen to produce equal matrices share
    one kernel.  ``store`` wires in a cross-process
    :class:`~repro.sweep.store.FactorizationStore`; by default it resolves
    from the ``REPRO_CACHE_DIR`` environment knob (unset = in-memory
    only), and ``store=None`` disables it explicitly.
    """

    def __init__(self, store: FactorizationStore | None | object = _FROM_ENV) -> None:
        self._systems: dict[str, LinearSystem] = {}
        self._solvers: dict[tuple, IncrementalLpSolver] = {}
        self._auditors: dict[tuple, TomographyAuditor] = {}
        self._estimators: dict[tuple, object] = {}
        # Per-scenario memo of (scenario, path-set version, routing matrix,
        # system): keyed by object identity, holding a strong reference so
        # an id() can never be recycled under us.  The cache's lifetime is
        # one worker shard, so pinning the scenarios it served is the
        # intended footprint.  The path-set version detects churn: a
        # scenario whose paths mutated after being memoised must not be
        # served its pre-churn matrix or factorization.
        self._scenario_systems: dict[
            int, tuple[Scenario, int, np.ndarray, LinearSystem]
        ] = {}
        self.store: FactorizationStore | None = (
            default_store() if store is _FROM_ENV else store  # type: ignore[assignment]
        )
        self.stats: Counter[str] = Counter()
        self._store_failed: set[str] = set()

    def _count(self, kind: str, hit: bool, **fields: object) -> None:
        self.stats[f"{kind}_{'hit' if hit else 'miss'}"] += 1
        if obs.is_enabled():
            obs.event("sweep_cache", kind=kind, hit=hit, **fields)

    # ------------------------------------------------------------------
    # the digest layer (hash each distinct matrix exactly once)
    # ------------------------------------------------------------------
    def _digest(self, routing_matrix: np.ndarray) -> str:
        """Canonical digest of ``routing_matrix``, counted for white-box tests."""
        self.stats["digest_compute"] += 1
        return matrix_digest(routing_matrix)

    def _new_system(self, routing_matrix: np.ndarray, digest: str) -> LinearSystem:
        """Build the shared kernel for a cache miss, store-assisted.

        The already-computed digest is seeded into the system (its
        ``digest`` cached property never re-hashes), the cross-process
        store is consulted for warm factors, and a first-time dense
        factorisation is spilled back.  Store corruption degrades to a
        plain compute — the sweep must not die because a cache blob was
        truncated — but the entry is refused, never clobbered, and the
        failure is remembered so one bad blob costs one warning.
        """
        from repro.exceptions import StoreCorruptError

        system = LinearSystem(routing_matrix)
        system.__dict__["digest"] = digest  # pre-seed the cached_property
        if self.store is None or digest in self._store_failed:
            return system
        shape = (system.num_paths, system.num_links)
        try:
            payload = self.store.load(digest, shape=shape)
        except StoreCorruptError as exc:
            self._store_failed.add(digest)
            self.stats["store_corrupt"] += 1
            if obs.is_enabled():
                obs.event("sweep_store_corrupt", digest=digest, error=str(exc))
            return system
        if payload is not None and system.import_factors(payload):
            self.stats["store_import"] += 1
            return system
        factors = system.export_factors()
        if factors is not None:
            self.store.save(digest, factors, shape=shape)
        return system

    # ------------------------------------------------------------------
    # the three cache layers
    # ------------------------------------------------------------------
    def system_for(self, routing_matrix: np.ndarray) -> LinearSystem:
        """The shared :class:`LinearSystem` for this routing matrix."""
        key = self._digest(routing_matrix)
        system = self._systems.get(key)
        if system is None:
            system = self._new_system(routing_matrix, key)
            self._systems[key] = system
            self._count("system", False, digest=key)
        else:
            self._count("system", True, digest=key)
        return system

    def scenario_system_for(self, scenario: Scenario) -> LinearSystem:
        """The shared kernel for a scenario, without per-call rework.

        The first lookup builds the routing matrix and hashes it; every
        later lookup for the same scenario object is a dict get.  Distinct
        scenario objects over equal matrices still converge onto one
        kernel (the digest-keyed layer underneath deduplicates them).
        """
        memo = self._scenario_systems.get(id(scenario))
        version = scenario.path_set.version
        if memo is not None and memo[0] is scenario:
            if memo[1] == version:
                self._count("system", True, digest=memo[3].digest)
                return memo[3]
            # The path set churned underneath the memo: the memoised
            # matrix (and the digest-keyed factorization behind it) is
            # pre-churn state.  Evict and rebuild — the fresh matrix
            # hashes to a new digest, so the store can never serve the
            # stale entry for this scenario again.
            del self._scenario_systems[id(scenario)]
            self.stats["scenario_stale_evict"] += 1
            if obs.is_enabled():
                obs.event(
                    "sweep_store_stale_evict",
                    stale_digest=memo[3].digest,
                    stale_version=memo[1],
                    version=version,
                )
        routing_matrix = scenario.path_set.routing_matrix()
        system = self.system_for(routing_matrix)
        self._scenario_systems[id(scenario)] = (scenario, version, routing_matrix, system)
        return system

    def context_for(
        self,
        scenario: Scenario,
        attackers: tuple,
        *,
        estimator: str | None = None,
        estimator_params: dict | None = None,
    ) -> AttackContext:
        """An attack context whose kernel comes from the shared cache.

        ``estimator``/``estimator_params`` select the defender's
        inversion family for the context's outcome prediction (None =
        the historical least squares via the ``REPRO_ESTIMATOR`` knob);
        the family is built over the shared kernel, so no extra
        factorisation happens either way.
        """
        system = self.scenario_system_for(scenario)
        built = self._estimator_over(system, estimator, estimator_params)
        return scenario.attack_context(attackers, system=system, estimator=built)

    def solver_for(
        self,
        context: AttackContext,
        *,
        mode: str = "paper",
        confined: bool = False,
        stealthy: bool = False,
        engine: str | None = None,
    ) -> IncrementalLpSolver:
        """The shared incremental LP solver for victim-candidate scans.

        The base block is the empty-victim chosen-victim bands of this
        context (controlled links normal, plus exclusive/confined rows) —
        exactly what :class:`~repro.attacks.max_damage.MaxDamageAttack`
        assembles internally, so it can be handed to its
        ``shared_solver`` parameter directly.  ``engine`` selects the LP
        engine (resolved immediately so the cache key reflects the actual
        engine, not the request); a warm-started ``"highs"`` solver keeps
        its basis across every grid point that shares it.
        """
        engine_name = resolve_engine_name(engine)
        key = (
            context.system.digest,
            tuple(sorted(context.controlled_links)),
            mode,
            confined,
            stealthy,
            context.cap,
            context.margin,
            (context.thresholds.lower, context.thresholds.upper),
            engine_name,
        )
        solver = self._solvers.get(key)
        if solver is None:
            base_bands = build_chosen_victim_bands(context, (), mode, confined=confined)
            solver = IncrementalLpSolver(
                None,
                context.baseline_estimate,
                context.support,
                context.num_paths,
                base_bands,
                cap=context.cap,
                sub_operator=context.support_operator,
                consistency_columns=(
                    context.residual_projector_support() if stealthy else None
                ),
                engine=engine_name,
            )
            self._solvers[key] = solver
            self._count("solver", False, digest=key[0])
        else:
            self._count("solver", True, digest=key[0])
        return solver

    def _estimator_over(
        self,
        system: LinearSystem,
        estimator: str | None,
        estimator_params: dict | None,
    ):
        """A shared estimator instance over a cached kernel (None = default).

        Memoised by (kernel digest, name, params digest): the ``l1``
        family keeps a warm-started LP model per instance, so every grid
        point sharing a topology re-uses one model and its basis.
        """
        if estimator is None:
            if estimator_params:
                raise ValidationError(
                    "estimator_params requires an explicit estimator name"
                )
            return None
        key = (
            system.digest,
            estimator,
            config_digest(dict(estimator_params or {})),
        )
        cached = self._estimators.get(key)
        if cached is None:
            cached = resolve_estimator(
                estimator, system=system, **(estimator_params or {})
            )
            self._estimators[key] = cached
            self._count("estimator", False, digest=key[0], estimator=estimator)
        else:
            self._count("estimator", True, digest=key[0], estimator=estimator)
        return cached

    def auditor_for(
        self,
        scenario: Scenario,
        *,
        alpha: float = 200.0,
        estimator: str | None = None,
        estimator_params: dict | None = None,
    ) -> TomographyAuditor:
        """The shared auditor for this scenario's routing matrix.

        The cache key includes the estimator family and its parameter
        digest: audits under different defenders never alias, and the
        historical least-squares key is unchanged when ``estimator`` is
        omitted.
        """
        system = self.scenario_system_for(scenario)
        built = self._estimator_over(system, estimator, estimator_params)
        key = (
            system.digest,
            float(alpha),
            (scenario.thresholds.lower, scenario.thresholds.upper),
            None if built is None else (built.name, built.params_digest),
        )
        auditor = self._auditors.get(key)
        if auditor is None:
            auditor = scenario.auditor(alpha, system=system, estimator=built)
            self._auditors[key] = auditor
            self._count("auditor", False, digest=key[0])
        else:
            self._count("auditor", True, digest=key[0])
        return auditor
