"""Sharded, resumable execution of a sweep grid.

The runner turns a :class:`~repro.sweep.spec.SweepSpec` into scenario
runs.  Work is sharded with the same process-pool machinery Monte-Carlo
trials use (:func:`repro.scenarios.montecarlo.iter_map_chunks`): grid
points are grouped by topology — one cache domain per group, so a worker
factorises each routing matrix at most once — and the groups are mapped
across the pool in a fixed order.  Because every grid point is a pure
function of the spec, results are bit-identical for ``workers=1`` and
``workers=N``, and the results file is byte-identical too (chunks are
collected in submission order).

Every completed point is checkpointed to an append-only JSONL results
file under the same strict-JSON sentinel rules as
:func:`repro.scenarios.serialization.scenario_to_json`.  A restarted
sweep (``resume=True``) first replays the file, verifies it belongs to
this spec (header digest) and is intact (any unparseable content is an
error — the file is never clobbered), then runs only the points whose
config digest is not yet present.

Seeding: scenario construction for topology ``i`` draws from
``SeedSequence(seed, spawn_key=(0, i))`` and grid point ``p`` from
``SeedSequence(seed, spawn_key=(1, p))`` — disjoint, order-independent
streams, so a resumed sweep reproduces exactly the draws of an
uninterrupted one.
"""

from __future__ import annotations

import json
from functools import partial
from pathlib import Path

import numpy as np

from repro.exceptions import ReproError, SerializationError
from repro.metrics.states import StateThresholds
from repro.obs import core as obs
from repro.perf import instrumentation as perf
from repro.scenarios.montecarlo import iter_map_chunks
from repro.scenarios.scenario import Scenario
from repro.sweep.cache import FactorizationCache
from repro.sweep.spec import GridPoint, SweepSpec, build_topology

__all__ = ["build_scenarios", "read_checkpoint", "run_grid_point", "run_sweep"]


# ----------------------------------------------------------------------
# deterministic derivations
# ----------------------------------------------------------------------
def _scenario_rng(spec: SweepSpec, topology_index: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(spec.seed, spawn_key=(0, topology_index))
    )


def _point_rng(spec: SweepSpec, point_index: int) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence(spec.seed, spawn_key=(1, point_index))
    )


def _build_scenario(spec: SweepSpec, topology_index: int) -> Scenario:
    """The (deterministic) scenario for one topology entry."""
    entry = spec.topologies[topology_index]
    topology = build_topology(entry, seed=spec.seed)
    kwargs = dict(spec.scenario)
    thresholds = kwargs.pop("thresholds", None)
    if thresholds is not None:
        kwargs["thresholds"] = StateThresholds(
            lower=float(thresholds[0]), upper=float(thresholds[1])
        )
    delay_range = kwargs.pop("delay_range", None)
    if delay_range is not None:
        kwargs["delay_range"] = (float(delay_range[0]), float(delay_range[1]))
    return Scenario.build(
        topology,
        rng=_scenario_rng(spec, topology_index),
        name=entry["label"],
        **kwargs,
    )


def build_scenarios(
    spec: SweepSpec, points: list[GridPoint] | None = None
) -> dict[int, Scenario]:
    """Pre-built scenarios for ``points`` (default: the whole grid).

    Returns the per-topology-index dict :func:`run_grid_point` accepts as
    its ``scenarios`` memo.  Scenario construction is matrix-independent
    and often dominates cold wall time; building up front lets harnesses
    (the perf bench, white-box tests) time the factorization work on its
    own.
    """
    points = spec.expand() if points is None else points
    return {
        index: _build_scenario(spec, index)
        for index in sorted({p.topology_index for p in points})
    }


def _sample_attackers(scenario: Scenario, rng: np.random.Generator, count: int) -> list:
    """Draw the point's attacker node set (monitors are not protected)."""
    nodes = scenario.topology.nodes()
    picks = rng.choice(len(nodes), size=min(count, len(nodes)), replace=False)
    return [nodes[int(i)] for i in picks]


def _sample_victim(scenario: Scenario, rng: np.random.Generator, forbidden: set) -> int | None:
    """Draw a measured victim link whose endpoints are not attackers."""
    measured = [
        link.index
        for link in scenario.topology.links()
        if link.u not in forbidden
        and link.v not in forbidden
        and scenario.path_set.paths_containing_link(link.index)
    ]
    if not measured:
        return None
    return int(measured[int(rng.integers(len(measured)))])


# ----------------------------------------------------------------------
# one grid point
# ----------------------------------------------------------------------
def run_grid_point(
    spec: SweepSpec,
    point: GridPoint,
    *,
    cache: FactorizationCache | None = None,
    scenarios: dict[int, Scenario] | None = None,
) -> dict:
    """Execute one grid point; returns its JSON-safe result record.

    ``cache`` shares factorisations and LP base blocks across calls;
    ``scenarios`` memoises built scenarios per topology index (both are
    created fresh when omitted — a cold run).  The record depends only on
    the spec and the point, never on cache warmth: cached and cold runs
    are bit-identical (property-tested).
    """
    cache = cache if cache is not None else FactorizationCache()
    scenarios = scenarios if scenarios is not None else {}
    scenario = scenarios.get(point.topology_index)
    if scenario is None:
        scenario = _build_scenario(spec, point.topology_index)
        scenarios[point.topology_index] = scenario

    rng = _point_rng(spec, point.index)
    attackers = _sample_attackers(scenario, rng, point.num_attackers)
    attack = spec.attack
    mode, confined, stealthy = attack["mode"], attack["confined"], attack["stealthy"]
    # Optional-by-absence, like max_victims: specs that do not name an
    # estimator keep the historical least-squares defender (and their
    # point digests); specs that do judge outcomes and run detection
    # under the named family.
    estimator = attack.get("estimator")
    estimator_params = attack.get("estimator_params")

    record = {
        "index": point.index,
        "digest": point.digest,
        "topology": point.topology_label,
        "strategy": point.strategy,
        "num_attackers": point.num_attackers,
        "attackers": [obs.sanitize(a) for a in attackers],
    }
    perf.record_event("sweep_point")
    with obs.span(
        "sweep_point",
        index=point.index,
        topology=point.topology_label,
        strategy=point.strategy,
        num_attackers=point.num_attackers,
    ):
        try:
            context = cache.context_for(
                scenario,
                tuple(attackers),
                estimator=estimator,
                estimator_params=estimator_params,
            )
            outcome = None
            if point.strategy == "chosen-victim":
                from repro.attacks.chosen_victim import ChosenVictimAttack

                victim = _sample_victim(scenario, rng, set(attackers))
                if victim is None:
                    record.update(_infeasible_fields("no victim candidate"))
                else:
                    outcome = ChosenVictimAttack(
                        context,
                        [victim],
                        mode=mode,
                        stealthy=stealthy,
                        confined=confined,
                    ).run()
            elif point.strategy == "max-damage":
                from repro.attacks.max_damage import MaxDamageAttack

                outcome = MaxDamageAttack(
                    context,
                    mode=mode,
                    stealthy=stealthy,
                    confined=confined,
                    shared_solver=cache.solver_for(
                        context, mode=mode, confined=confined, stealthy=stealthy
                    ),
                ).run()
            elif point.strategy == "obfuscation":
                from repro.attacks.obfuscation import ObfuscationAttack

                outcome = ObfuscationAttack(
                    context,
                    min_victims=attack["min_victims"],
                    # The knob is optional-by-absence: specs that do not
                    # set it keep the historical pinned window (and their
                    # point digests), specs that do get a real range.
                    max_victims=attack.get("max_victims", attack["min_victims"]),
                    mode=mode,
                    stealthy=stealthy,
                    confined=confined,
                ).run()
            else:  # naive
                from repro.attacks.naive import NaiveDelayAttack

                outcome = NaiveDelayAttack(context).run()

            if outcome is not None:
                record.update(_outcome_fields(outcome))
                if outcome.feasible:
                    auditor = cache.auditor_for(
                        scenario,
                        alpha=attack["alpha"],
                        estimator=estimator,
                        estimator_params=estimator_params,
                    )
                    report = auditor.audit(outcome.observed_measurements)
                    record["detected"] = bool(not report.trustworthy)
                    record["residual_l1"] = float(report.detection.residual_l1)
        except ReproError as exc:
            # Degenerate draws (attacker on no path, contradictory bands in
            # tiny graphs) surface as library errors; a sweep records them
            # as infeasible points rather than aborting the whole grid.
            record.update(_infeasible_fields(f"error: {exc}"))
    return record


def _infeasible_fields(status: str) -> dict:
    return {
        "feasible": False,
        "damage": 0.0,
        "victim_links": [],
        "num_victims": 0,
        "num_abnormal": 0,
        "num_uncertain": 0,
        "detected": None,
        "residual_l1": None,
        "status": status,
    }


def _outcome_fields(outcome) -> dict:
    fields = {
        "feasible": bool(outcome.feasible),
        "damage": float(outcome.damage),
        "victim_links": [int(v) for v in outcome.victim_links],
        "num_victims": len(outcome.victim_links),
        "num_abnormal": 0,
        "num_uncertain": 0,
        "detected": None,
        "residual_l1": None,
        "status": str(outcome.status),
    }
    if outcome.diagnosis is not None:
        fields["num_abnormal"] = len(outcome.diagnosis.abnormal)
        fields["num_uncertain"] = len(outcome.diagnosis.uncertain)
    return fields


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
def _run_point_chunk(spec: SweepSpec, chunk: list[GridPoint]) -> list[dict]:
    """Worker body: run one chunk of grid points with a chunk-local cache.

    Module-level (and the spec plain data) so the process pool can pickle
    it; each chunk holds all points of at most one topology, so the
    chunk-local cache gives one factorisation per distinct routing matrix
    in parallel runs too.  The chunk ships the :class:`GridPoint` payloads
    themselves — workers never re-expand the grid, so a sweep of ``c``
    chunks costs one expansion total instead of ``c`` (each of which was
    O(points) digest hashing).  When ``REPRO_CACHE_DIR`` names a
    cross-process store, the chunk-local cache warm-starts factorizations
    from it, so even chunks split off the same topology (or a whole
    re-invocation of the sweep) share one SVD.
    """
    obs.detach_inherited_log()
    cache = FactorizationCache()
    scenarios: dict[int, Scenario] = {}
    return [
        run_grid_point(spec, point, cache=cache, scenarios=scenarios)
        for point in chunk
    ]


def _chunk_points(
    points: list[GridPoint], chunk_size: int | None
) -> list[list[GridPoint]]:
    """Group grid points by topology (one cache domain per chunk).

    ``chunk_size`` optionally splits large topology groups further for
    load balancing; grouping never crosses a topology boundary, so each
    chunk's worker factorises at most one routing matrix.
    """
    groups: list[list[GridPoint]] = []
    current_topology: int | None = None
    for point in points:
        if point.topology_index != current_topology:
            groups.append([])
            current_topology = point.topology_index
        groups[-1].append(point)
    if chunk_size is None or chunk_size < 1:
        return groups
    return [
        group[i : i + chunk_size]
        for group in groups
        for i in range(0, len(group), chunk_size)
    ]


# ----------------------------------------------------------------------
# checkpoints
# ----------------------------------------------------------------------
def _header_line(spec: SweepSpec) -> dict:
    from repro.sweep.aggregate import RESULTS_FORMAT, RESULTS_VERSION

    return {
        "kind": "header",
        "format": RESULTS_FORMAT,
        "version": RESULTS_VERSION,
        "name": spec.name,
        "spec_digest": spec.digest,
        "points": spec.num_points(),
    }


def _encode_line(record: dict) -> str:
    return json.dumps(
        obs.sanitize(record), allow_nan=False, separators=(",", ":")
    )


def read_checkpoint(path: str | Path, spec: SweepSpec) -> dict[str, dict]:
    """Replay a results file; returns completed records keyed by digest.

    Raises :class:`SerializationError` when the file is corrupt (any
    unparseable line, wrong format/version), belongs to a different spec,
    or holds a point this spec does not define — the caller must refuse
    to touch it rather than clobber partial results.
    """
    from repro.sweep.aggregate import load_results

    _, results = load_results(path, spec=spec)
    known = {point.digest for point in spec.expand()}
    completed: dict[str, dict] = {}
    for result in results:
        digest = result.get("digest")
        if digest not in known:
            raise SerializationError(
                f"results file {path} holds point {digest!r} "
                "which matches no point of this spec"
            )
        completed[digest] = result
    return completed


# ----------------------------------------------------------------------
# the sweep driver
# ----------------------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    *,
    results_path: str | Path,
    workers: int | None = None,
    chunk_size: int | None = None,
    resume: bool = False,
    max_points: int | None = None,
) -> dict:
    """Run (or resume) a sweep, checkpointing each completed grid point.

    Parameters
    ----------
    results_path:
        The append-only JSONL checkpoint/results file.  An existing file
        is an error unless ``resume=True`` (never clobbered); a corrupt
        or foreign existing file is an error even then.
    workers / chunk_size:
        Pool fan-out, as in :func:`repro.scenarios.montecarlo.run_trials`.
        Points are sharded by topology so each worker factorises a
        routing matrix at most once; results are bit-identical for any
        worker/chunk choice.
    resume:
        Replay ``results_path`` and skip every point whose config digest
        is already checkpointed.
    max_points:
        Budget: stop (cleanly, resumable) after this many *new* points.

    Returns a summary dict: ``points`` (all completed records, index
    order), ``ran``/``skipped``/``remaining`` counts, and the spec digest.
    """
    points = spec.expand()
    file_path = Path(results_path)
    completed: dict[str, dict] = {}
    if file_path.exists():
        if not resume:
            raise SerializationError(
                f"results file {file_path} already exists; "
                "pass resume=True (--resume) or move it aside"
            )
        completed = read_checkpoint(file_path, spec)

    todo = [p for p in points if p.digest not in completed]
    budget_hit = False
    if max_points is not None and len(todo) > max_points:
        todo = todo[:max_points]
        budget_hit = True
    chunks = _chunk_points(todo, chunk_size)
    if obs.is_enabled():
        obs.event(
            "sweep_start",
            sweep=spec.name,
            spec_digest=spec.digest,
            total=len(points),
            skipped=len(completed),
            todo=len(todo),
            chunks=len(chunks),
            workers=workers or 1,
        )

    results_by_digest = dict(completed)
    ran = 0
    file_path.parent.mkdir(parents=True, exist_ok=True)
    mode = "a" if (resume and file_path.exists()) else "w"
    with perf.stage("sweep_run"), file_path.open(mode, encoding="utf-8") as out:
        if mode == "w":
            out.write(_encode_line(_header_line(spec)) + "\n")
            out.flush()
        chunk_fn = partial(_run_point_chunk, spec)
        for chunk_number, chunk_records in enumerate(
            iter_map_chunks(chunk_fn, chunks, workers=workers)
        ):
            for record in chunk_records:
                out.write(
                    _encode_line(
                        {
                            "kind": "point",
                            "index": record["index"],
                            "digest": record["digest"],
                            "result": record,
                        }
                    )
                    + "\n"
                )
                results_by_digest[record["digest"]] = record
                ran += 1
            out.flush()
            if obs.is_enabled():
                obs.event(
                    "sweep_checkpoint",
                    chunk=chunk_number,
                    size=len(chunk_records),
                    completed=len(results_by_digest),
                )

    ordered = sorted(results_by_digest.values(), key=lambda r: r["index"])
    if obs.is_enabled():
        obs.event(
            "sweep_done",
            ran=ran,
            skipped=len(completed),
            remaining=len(points) - len(ordered),
        )
    return {
        "name": spec.name,
        "spec_digest": spec.digest,
        "total": len(points),
        "ran": ran,
        "skipped": len(completed),
        "remaining": len(points) - len(ordered),
        "budget_hit": budget_hit,
        "points": ordered,
    }
