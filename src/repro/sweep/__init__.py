"""Declarative parameter-grid sweeps over scapegoating scenarios.

The sweep engine runs the paper's experiment grids — strategy x topology
x attacker count — from a single JSON spec:

- :mod:`repro.sweep.spec` — the spec schema, topology registry, and
  deterministic grid expansion (every point carries a config digest);
- :mod:`repro.sweep.cache` — shared-work caches (one ``LinearSystem``
  factorisation per distinct routing matrix, reusable LP base blocks,
  shared auditors);
- :mod:`repro.sweep.store` — cross-process persistent factorization
  store (``REPRO_CACHE_DIR``): dense SVD factors spilled to disk keyed
  by matrix digest, shared by sharded workers and repeated runs;
- :mod:`repro.sweep.runner` — sharded, resumable execution with
  append-only JSONL checkpoints;
- :mod:`repro.sweep.aggregate` — folding results into report tables.

CLI entry point: ``repro sweep <spec.json> [--workers N] [--resume]``.
"""

from repro.sweep.aggregate import aggregate_rows, load_results
from repro.sweep.cache import FactorizationCache
from repro.sweep.runner import run_grid_point, run_sweep
from repro.sweep.spec import GridPoint, SweepSpec, build_topology
from repro.sweep.store import FactorizationStore, default_store

__all__ = [
    "FactorizationCache",
    "FactorizationStore",
    "GridPoint",
    "SweepSpec",
    "aggregate_rows",
    "build_topology",
    "default_store",
    "load_results",
    "run_grid_point",
    "run_sweep",
]
