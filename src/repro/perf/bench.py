"""Timing harness emitting machine-readable ``BENCH_*.json`` files.

Two benchmarks back the performance trajectory:

- :func:`fig1_pipeline_benchmark` instruments the full Fig. 1 attack
  pipeline (scenario build, context, the three strategies, detection) and
  reports per-stage wall time plus the library's internal counters (SVD
  factorisations, LP solves, LP-assembly time).
- :func:`fig5_assembly_benchmark` measures the optimisation this layer
  exists for: the seed's three independent SVD/pinv factorisations and
  per-candidate Python-loop LP assembly versus the shared
  :class:`~repro.tomography.linear_system.LinearSystem` kernel and the
  incremental vectorised assembly.  Both paths are timed on the Fig. 5
  max-damage candidate scan and the speedups recorded.

The JSON schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "created_unix": <float>,
      "benchmarks": {
        "<name>": {
          "wall_s": <float>,
          "stages": {"<stage>": {"seconds": <float>, "calls": <int>}},
          "counters": {"svd": <int>, "lp_solve": <int>, ...},
          ...benchmark-specific fields...
        }
      }
    }

Repro imports are deferred into the functions: the instrumented modules
import ``repro.perf.instrumentation`` themselves, and eager imports here
would cycle.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.exceptions import InfeasibleAttackError
from repro.perf.instrumentation import PerfRecorder, recording, stage

__all__ = [
    "append_trajectory",
    "backends_benchmark",
    "estimators_benchmark",
    "fig1_pipeline_benchmark",
    "fig5_assembly_benchmark",
    "full_perf_benchmark",
    "lp_benchmark",
    "sweep_cache_benchmark",
    "write_bench_json",
]

#: Schema version stamped into every BENCH_*.json payload.
SCHEMA_VERSION = 1


def _best_of(fn, repeat: int) -> float:
    """Minimum wall time of ``repeat`` runs of ``fn`` (noise-robust)."""
    best = float("inf")
    for _ in range(max(1, repeat)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _seed_style_operators(matrix: np.ndarray) -> None:
    """The seed's three independent factorisations of the same ``R``.

    Before the shared kernel, the estimator (``least_squares_pinv``), the
    column-space projector (``mat @ pinv(mat)``) and the nullspace
    (a third SVD) each factorised ``R`` from scratch.
    """
    # The unshared factorisations ARE the thing being benchmarked here.
    operator = np.linalg.pinv(matrix)  # repro: noqa RP001
    matrix @ np.linalg.pinv(matrix)  # repro: noqa RP001
    np.linalg.svd(matrix)  # repro: noqa RP001
    return operator


def _shared_kernel_operators(matrix: np.ndarray) -> None:
    """The same three operators off one :class:`LinearSystem` SVD."""
    from repro.tomography.linear_system import LinearSystem

    system = LinearSystem(matrix)
    system.estimator
    system.column_space_projector
    system.nullspace


def _seed_assemble_rows(sub_operator, bands, x_true) -> tuple:
    """The seed's per-link Python-loop constraint assembly (reference)."""
    num_links = sub_operator.shape[0]
    a_rows: list[np.ndarray] = []
    b_vals: list[float] = []
    for j in range(num_links):
        if np.isfinite(bands.upper[j]):
            a_rows.append(sub_operator[j])
            b_vals.append(float(bands.upper[j] - x_true[j]))
        if np.isfinite(bands.lower[j]):
            a_rows.append(-sub_operator[j])
            b_vals.append(float(x_true[j] - bands.lower[j]))
    a_ub = np.vstack(a_rows) if a_rows else None
    b_ub = np.asarray(b_vals) if b_vals else None
    return a_ub, b_ub


def fig5_assembly_benchmark(*, repeat: int = 5, inner_loops: int = 50) -> dict:
    """Seed vs. cached/vectorised path on the Fig. 5 max-damage scan.

    Times, for the Fig. 1 scenario's full candidate-victim scan:

    - ``svd``: three independent factorisations per context (seed) versus
      one shared :class:`LinearSystem` SVD (optimised);
    - ``lp_assembly``: per-candidate band construction + Python-loop row
      assembly (seed) versus incremental row splicing off the shared base
      block (optimised).

    Each measurement is the best of ``repeat`` runs of ``inner_loops``
    scan passes, so sub-millisecond stages are resolved well above timer
    noise.  Also runs the real (instrumented) max-damage attack once and
    embeds its stage/counter snapshot.
    """
    import math

    from repro.attacks.chosen_victim import build_chosen_victim_bands
    from repro.attacks.lp import IncrementalLpSolver
    from repro.attacks.max_damage import MaxDamageAttack
    from repro.scenarios.simple_network import paper_fig1_scenario

    start = time.perf_counter()
    scenario = paper_fig1_scenario()
    context = scenario.attack_context(["B", "C"])
    candidates = MaxDamageAttack(context).candidates
    abnormal_bound = context.thresholds.upper + context.margin
    support_cols = np.asarray(context.support, dtype=int)
    sub_operator = context.operator[:, support_cols]

    def seed_svd() -> None:
        for _ in range(inner_loops):
            _seed_style_operators(context.routing_matrix)

    def shared_svd() -> None:
        for _ in range(inner_loops):
            _shared_kernel_operators(context.routing_matrix)

    def seed_assembly() -> None:
        for _ in range(inner_loops):
            for j in candidates:
                bands = build_chosen_victim_bands(context, (j,), "paper")
                _seed_assemble_rows(sub_operator, bands, context.baseline_estimate)

    base_bands = build_chosen_victim_bands(context, (), "paper")
    solver = IncrementalLpSolver(
        context.operator,
        context.baseline_estimate,
        context.support,
        context.num_paths,
        base_bands,
        cap=context.cap,
    )

    def incremental_assembly() -> None:
        for _ in range(inner_loops):
            for j in candidates:
                solver._rows_for_overrides({j: (abnormal_bound, math.inf)})

    svd_seed_s = _best_of(seed_svd, repeat)
    svd_shared_s = _best_of(shared_svd, repeat)
    assembly_seed_s = _best_of(seed_assembly, repeat)
    assembly_vectorized_s = _best_of(incremental_assembly, repeat)

    recorder = PerfRecorder()
    with recording(recorder):
        with stage("max_damage_attack"):
            outcome = MaxDamageAttack(context).run()
            MaxDamageAttack(context).damage_by_victim()

    seed_total = svd_seed_s + assembly_seed_s
    optimized_total = svd_shared_s + assembly_vectorized_s
    return {
        "bench": "fig5_max_damage_perf",
        "repeat": repeat,
        "inner_loops": inner_loops,
        "candidates": len(candidates),
        "wall_s": time.perf_counter() - start,
        "seed_path": {
            "svd_s": svd_seed_s,
            "lp_assembly_s": assembly_seed_s,
            "total_s": seed_total,
            "svd_calls_per_context": 3,
        },
        "optimized_path": {
            "svd_s": svd_shared_s,
            "lp_assembly_s": assembly_vectorized_s,
            "total_s": optimized_total,
            "svd_calls_per_context": 1,
        },
        "speedup": {
            "svd": svd_seed_s / svd_shared_s if svd_shared_s > 0 else float("inf"),
            "lp_assembly": (
                assembly_seed_s / assembly_vectorized_s
                if assembly_vectorized_s > 0
                else float("inf")
            ),
            "combined": seed_total / optimized_total if optimized_total > 0 else float("inf"),
        },
        "attack": {
            "feasible": bool(outcome.feasible),
            "damage": float(outcome.damage),
            **recorder.snapshot(),
        },
    }


def lp_benchmark(*, repeat: int = 5, inner_loops: int = 10) -> dict:
    """Cold vs. incremental vs. warm-started LP engine on the Fig. 5 scan.

    Three implementations of the same full candidate-victim max-damage
    scan (every LP identical in constraints and optimum):

    - **cold** — the pre-engine path: per candidate, from-scratch band
      construction, constraint assembly and one cold
      :func:`scipy.optimize.linprog` call;
    - **incremental** — :class:`~repro.attacks.lp.IncrementalLpSolver`
      on the scipy engine: shared base block, per-candidate row splicing,
      still one cold ``linprog`` per candidate;
    - **warm** — the same solver on the best available engine
      (``resolve_engine_name("auto")``): one persistent HiGHS model,
      per-candidate row-bound edits, warm-started basis.  Falls back to
      the incremental scipy path when no HiGHS bindings exist (the
      recorded ``engine`` says which ran).

    ``speedup["fig5_max_damage"]`` is cold / warm — the acceptance
    headline for the persistent engine (target >= 5x with bindings).
    Damage parity across all three phases is checked on a full pass and
    the worst absolute gap recorded (``max_damage_gap``).
    """
    import math

    from repro.attacks.chosen_victim import build_chosen_victim_bands
    from repro.attacks.lp import IncrementalLpSolver, solve_manipulation_lp
    from repro.attacks.lp_engine import resolve_engine_name
    from repro.attacks.max_damage import MaxDamageAttack
    from repro.scenarios.simple_network import paper_fig1_scenario

    start = time.perf_counter()
    scenario = paper_fig1_scenario()
    context = scenario.attack_context(["B", "C"])
    candidates = MaxDamageAttack(context).candidates
    abnormal_bound = context.thresholds.upper + context.margin
    engine = resolve_engine_name("auto")

    def overrides_iter():
        return ({j: (abnormal_bound, math.inf)} for j in candidates)

    def cold_scan() -> list[float]:
        damages = []
        for j in candidates:
            bands = build_chosen_victim_bands(context, (j,), "paper")
            solution = solve_manipulation_lp(
                None,
                context.baseline_estimate,
                context.support,
                context.num_paths,
                bands,
                cap=context.cap,
                sub_operator=context.support_operator,
            )
            damages.append(solution.damage if solution.feasible else float("nan"))
        return damages

    def make_solver(engine_name: str) -> IncrementalLpSolver:
        return IncrementalLpSolver(
            None,
            context.baseline_estimate,
            context.support,
            context.num_paths,
            build_chosen_victim_bands(context, (), "paper"),
            cap=context.cap,
            sub_operator=context.support_operator,
            engine=engine_name,
        )

    incremental_solver = make_solver("scipy")
    warm_solver = make_solver(engine)

    def scan(solver: IncrementalLpSolver) -> list[float]:
        return [
            solution.damage if solution.feasible else float("nan")
            for solution in solver.solve_many(overrides_iter())
        ]

    # One full pass per phase up front: damage parity + warm model build
    # (so the timed warm loop measures steady-state re-solves).
    cold_damages = np.asarray(cold_scan())
    incremental_damages = np.asarray(scan(incremental_solver))
    warm_damages = np.asarray(scan(warm_solver))
    max_damage_gap = float(
        max(
            np.nanmax(np.abs(cold_damages - incremental_damages), initial=0.0),
            np.nanmax(np.abs(cold_damages - warm_damages), initial=0.0),
        )
    )

    cold_s = _best_of(lambda: [cold_scan() for _ in range(inner_loops)], repeat)
    incremental_s = _best_of(
        lambda: [scan(incremental_solver) for _ in range(inner_loops)], repeat
    )
    recorder = PerfRecorder()
    with recording(recorder):
        warm_s = _best_of(
            lambda: [scan(warm_solver) for _ in range(inner_loops)], repeat
        )

    return {
        "bench": "lp_engine",
        "repeat": repeat,
        "inner_loops": inner_loops,
        "candidates": len(candidates),
        "engine": engine,
        "wall_s": time.perf_counter() - start,
        "phases": {
            "cold_s": cold_s,
            "incremental_s": incremental_s,
            "warm_s": warm_s,
        },
        "speedup": {
            "fig5_max_damage": cold_s / warm_s if warm_s > 0 else float("inf"),
            "incremental_over_cold": (
                cold_s / incremental_s if incremental_s > 0 else float("inf")
            ),
            "warm_over_incremental": (
                incremental_s / warm_s if warm_s > 0 else float("inf")
            ),
        },
        "max_damage_gap": max_damage_gap,
        "presolve_pruned": int(
            incremental_solver.presolve_pruned + warm_solver.presolve_pruned
        ),
        "warm_phase": recorder.snapshot(),
    }


def fig1_pipeline_benchmark(*, repeat: int = 1) -> dict:
    """Instrumented end-to-end run of the Fig. 1 attack pipeline.

    Stages cover scenario construction, attack-context construction (one
    shared SVD), the three strategies, and the consistency detector;
    counters report every SVD factorisation and LP solve underneath.
    ``repeat`` repeats the whole pipeline, accumulating into one recorder
    (stage ``calls`` shows the multiplicity).
    """
    from repro.attacks.chosen_victim import ChosenVictimAttack
    from repro.attacks.max_damage import MaxDamageAttack
    from repro.attacks.obfuscation import ObfuscationAttack
    from repro.detection.auditor import TomographyAuditor
    from repro.scenarios.simple_network import paper_fig1_scenario

    recorder = PerfRecorder()
    start = time.perf_counter()
    with recording(recorder):
        for _ in range(max(1, repeat)):
            with stage("scenario_build"):
                scenario = paper_fig1_scenario()
            with stage("context_build"):
                context = scenario.attack_context(["B", "C"])
            with stage("chosen_victim"):
                chosen = ChosenVictimAttack(context, [9], mode="exclusive").run()
            with stage("max_damage"):
                MaxDamageAttack(context).run()
            with stage("obfuscation"):
                ObfuscationAttack(context, min_victims=1).run()
            with stage("detection"):
                auditor = TomographyAuditor(scenario.path_set, alpha=200.0)
                if chosen.observed_measurements is None:
                    raise InfeasibleAttackError(
                        "benchmark chosen-victim attack was infeasible"
                    )
                auditor.audit(chosen.observed_measurements)
    return {
        "bench": "fig1_pipeline",
        "repeat": repeat,
        "wall_s": time.perf_counter() - start,
        **recorder.snapshot(),
    }


#: Grid the sweep-cache bench runs: a Waxman-50 topology (dense backend,
#: the SVD is real work) with the two cheapest strategies, so the shared
#: per-matrix work — matrix build, canonical hash, SVD, LP base block,
#: auditor — dominates per-point attack cost and the cache's effect is
#: visible rather than buried under LP time.
_SWEEP_BENCH_SPEC = {
    "format": "repro-sweep",
    "version": 1,
    "name": "bench-cache",
    "seed": 2017,
    "strategies": ["chosen-victim", "naive"],
    "topologies": [{"kind": "waxman", "num_nodes": 50}],
    "attacker_counts": [1, 2, 3],
}


def _sweep_store_process(spec_dict: dict, store_root: str | None) -> dict:
    """One simulated sweep process, run in a real child process.

    Builds everything from scratch — scenarios, a fresh
    :class:`~repro.sweep.cache.FactorizationCache`, a fresh
    :class:`~repro.sweep.store.FactorizationStore` handle over
    ``store_root`` (``None`` = no store) — and reports the factorization
    stage (digest + SVD, or digest + store import) separately from the
    grid-point loop.  The factorization stage is exactly what the disk
    store can warm-start across processes; scenario construction is
    matrix-independent and paid identically on both sides.
    """
    from repro.sweep.cache import FactorizationCache
    from repro.sweep.runner import build_scenarios, run_grid_point
    from repro.sweep.spec import SweepSpec
    from repro.sweep.store import FactorizationStore

    spec = SweepSpec.from_dict(spec_dict)
    points = spec.expand()
    scenarios = build_scenarios(spec, points)
    store = FactorizationStore(store_root) if store_root else None
    cache = FactorizationCache(store=store)
    start = time.perf_counter()
    for scenario in scenarios.values():
        # export_factors() forces the dense factorisation, so the timing
        # covers the SVD on the cold side and the import on the warm side.
        cache.scenario_system_for(scenario).export_factors()
    factorize_s = time.perf_counter() - start
    start = time.perf_counter()
    records = [
        run_grid_point(spec, point, cache=cache, scenarios=scenarios)
        for point in points
    ]
    return {
        "factorize_s": factorize_s,
        "points_s": time.perf_counter() - start,
        "records": records,
        "cache_stats": dict(cache.stats),
        "store_stats": dict(store.stats) if store is not None else {},
    }


def sweep_cache_benchmark(*, repeat: int = 3) -> dict:
    """Cold vs. cached vs. cross-process execution of a sweep grid.

    Three phases over the same six-point grid (:data:`_SWEEP_BENCH_SPEC`):

    - **cold** — every grid point builds its own
      :class:`~repro.sweep.cache.FactorizationCache`, so each point
      re-builds the routing matrix, re-hashes it, re-runs the SVD and
      re-assembles its LP base block (the pre-cache behaviour);
    - **cached** — all points share one cache, the way
      :func:`~repro.sweep.runner.run_sweep` shards them; a hit is a dict
      get;
    - **cross-process** — a second OS process warm-starts from a
      :class:`~repro.sweep.store.FactorizationStore` this process seeded:
      its factorization stage imports the dense SVD factors from disk
      instead of recomputing them (a control child without a store runs
      the same grid cold for comparison).

    All three phases produce bit-identical records (also property-tested
    in ``tests/sweep/test_properties.py``); the recorded ``identical``
    flags re-check it on the measured runs.  ``speedup.sweep`` is the
    cached-vs-cold headline, ``speedup.store_factorize`` the
    cross-process factorization warm-start.
    """
    import tempfile
    from concurrent.futures import ProcessPoolExecutor

    from repro.sweep.cache import FactorizationCache
    from repro.sweep.runner import build_scenarios, run_grid_point
    from repro.sweep.spec import SweepSpec

    spec = SweepSpec.from_dict(_SWEEP_BENCH_SPEC)
    points = spec.expand()
    start = time.perf_counter()
    scenarios = build_scenarios(spec, points)

    def cold() -> list[dict]:
        return [
            run_grid_point(
                spec, point, cache=FactorizationCache(store=None), scenarios=scenarios
            )
            for point in points
        ]

    warm_cache = FactorizationCache(store=None)

    def warm() -> list[dict]:
        return [
            run_grid_point(spec, point, cache=warm_cache, scenarios=scenarios)
            for point in points
        ]

    warm()  # populate the shared cache before timing
    cold_s = _best_of(cold, repeat)
    warm_s = _best_of(warm, repeat)
    cold_records = cold()
    warm_records = warm()

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store_root:
        seeding = _sweep_store_process(_SWEEP_BENCH_SPEC, store_root)
        with ProcessPoolExecutor(max_workers=1) as pool:
            child_cold = pool.submit(
                _sweep_store_process, _SWEEP_BENCH_SPEC, None
            ).result()
            child_warm = pool.submit(
                _sweep_store_process, _SWEEP_BENCH_SPEC, store_root
            ).result()

    store_phase = {
        "seed_write_stats": seeding["store_stats"],
        "cold_factorize_s": child_cold["factorize_s"],
        "warm_factorize_s": child_warm["factorize_s"],
        "cold_points_s": child_cold["points_s"],
        "warm_points_s": child_warm["points_s"],
        "warm_cache_stats": child_warm["cache_stats"],
        "warm_store_stats": child_warm["store_stats"],
    }
    return {
        "bench": "sweep_cache",
        "repeat": repeat,
        "points": len(points),
        "wall_s": time.perf_counter() - start,
        "cold_s": cold_s,
        "cached_s": warm_s,
        "speedup": {
            "sweep": cold_s / warm_s if warm_s > 0 else float("inf"),
            "store_factorize": (
                child_cold["factorize_s"] / child_warm["factorize_s"]
                if child_warm["factorize_s"] > 0
                else float("inf")
            ),
        },
        "identical": {
            "cached_vs_cold": warm_records == cold_records,
            "store_vs_cold": child_warm["records"] == cold_records
            and child_cold["records"] == cold_records,
        },
        "cache_stats": dict(warm_cache.stats),
        "store_phase": store_phase,
    }


def _path_incidence_matrix(num_paths: int, num_links: int, hops: int, seed: int) -> np.ndarray:
    """A random path-like 0/1 incidence matrix (``hops`` ones per row)."""
    rng = np.random.default_rng(seed)
    matrix = np.zeros((num_paths, num_links))
    for i in range(num_paths):
        cols = rng.choice(num_links, size=min(hops, num_links), replace=False)
        matrix[i, cols] = 1.0
    return matrix


def _time_factorize_estimate(matrix, backend: str, observed: np.ndarray, repeat: int) -> float:
    """Best wall time of a cold factorise + one estimate on ``backend``."""

    def run() -> None:
        from repro.tomography.linear_system import LinearSystem

        system = LinearSystem(matrix, backend=backend)
        system.estimate(observed)

    return _best_of(run, repeat)


def _isp_path_set(seed: int, target_paths: int, *, dedupe: bool = False):
    """Shortest paths between sampled monitor pairs on the large ISP topology.

    Pairs are sampled (the quadratic all-pairs enumeration is exactly what
    the pair_budget knob exists to avoid) until the path count clears
    ``target_paths``.  ``dedupe`` skips value-duplicate paths — the online
    bench needs a full-row-rank matrix for the Gram-Cholesky regime, and a
    pair sampled twice would add an identical row.
    """
    from repro.routing.ksp import k_shortest_paths
    from repro.routing.paths import MeasurementPath, PathSet
    from repro.exceptions import NoPathError
    from repro.topology.generators.isp import large_isp_topology

    rng = np.random.default_rng(seed)
    topology = large_isp_topology(seed=seed)
    nodes = topology.nodes()
    path_set = PathSet(topology)
    seen: set = set()
    attempts = 0
    while path_set.num_paths < target_paths and attempts < 20 * target_paths:
        attempts += 1
        a, b = rng.choice(len(nodes), size=2, replace=False)
        try:
            sequences = k_shortest_paths(topology, nodes[int(a)], nodes[int(b)], 1)
        except NoPathError:
            continue
        path = MeasurementPath(topology, sequences[0])
        if dedupe:
            key = path.key()
            if key in seen:
                continue
            seen.add(key)
        path_set.append(path)
    return topology, path_set


def backends_benchmark(*, repeat: int = 3, seed: int = 2017) -> dict:
    """Dense-vs-sparse backend crossover curve plus the ISP-scale headline.

    Two measurements:

    - **Crossover curve**: cold factorise + one estimate on synthetic
      path-incidence matrices of growing size, timed on both backends.
      Small systems favour the dense SVD (the sparse Gram machinery has
      fixed overhead); the curve records where sparse takes over.
    - **ISP scale**: shortest paths between sampled monitor pairs of
      :func:`~repro.topology.generators.isp.large_isp_topology` give a
      real routing matrix with thousands of links; the sparse backend's
      Gram solve replaces a dense SVD that is cubic in these dimensions.
      The ``speedup`` entry is the acceptance headline for the sparse
      backend (target: >= 3x on factorise + estimate).
    """
    from repro.routing.routing_matrix import density

    start = time.perf_counter()
    rng = np.random.default_rng(seed)

    crossover = []
    for num_paths, num_links, hops in (
        (40, 60, 4),
        (120, 180, 6),
        (320, 480, 8),
        (800, 1200, 10),
    ):
        matrix = _path_incidence_matrix(num_paths, num_links, hops, seed)
        observed = matrix @ rng.uniform(1.0, 20.0, size=num_links)
        dense_s = _time_factorize_estimate(matrix, "dense", observed, repeat)
        sparse_s = _time_factorize_estimate(matrix, "sparse", observed, repeat)
        crossover.append(
            {
                "paths": num_paths,
                "links": num_links,
                "density": float(matrix.sum() / matrix.size),
                "dense_s": dense_s,
                "sparse_s": sparse_s,
                "speedup": dense_s / sparse_s if sparse_s > 0 else float("inf"),
            }
        )

    # ISP scale: real shortest paths on the large topology, sampled until
    # the path count clears the acceptance floor.
    topology, path_set = _isp_path_set(seed, 1600)
    matrix = path_set.routing_matrix()
    observed = matrix @ rng.uniform(1.0, 20.0, size=matrix.shape[1])
    isp_repeat = max(1, min(repeat, 2))  # the dense SVD here costs seconds
    dense_s = _time_factorize_estimate(matrix, "dense", observed, isp_repeat)
    sparse_s = _time_factorize_estimate(matrix, "sparse", observed, isp_repeat)
    return {
        "bench": "backends",
        "repeat": repeat,
        "wall_s": time.perf_counter() - start,
        "crossover": crossover,
        "isp_scale": {
            "nodes": topology.num_nodes,
            "links": matrix.shape[1],
            "paths": matrix.shape[0],
            "density": density(matrix),
            "dense_s": dense_s,
            "sparse_s": sparse_s,
        },
        "speedup": {
            "isp_factorize_estimate": dense_s / sparse_s if sparse_s > 0 else float("inf"),
        },
    }


def estimators_benchmark(*, repeat: int = 3, inner_loops: int = 200, seed: int = 2017) -> dict:
    """Per-family estimate latency across the estimator zoo.

    Two systems — the paper's Fig. 1 matrix and a mid-size synthetic
    path-incidence matrix — each factorised once and shared by every
    family (the zoo's contract).  Per family, the single-vector
    :meth:`~repro.tomography.estimator_zoo.Estimator.estimate` latency is
    the best of ``repeat`` runs of ``inner_loops`` solves; batch latency
    covers one ``estimate_batch`` over a 32-column block.  The iterative
    families (``nnls``, ``l1``) run fewer inner loops — their per-solve
    cost is orders above the closed-form families and the bench should
    stay seconds, not minutes.

    ``ls_vs_kernel`` is the acceptance headline: the zoo's ``ls`` member
    over the raw :meth:`LinearSystem.estimate` it delegates to.  A ratio
    near 1.0 certifies the pluggable layer adds only dispatch overhead to
    the default path.
    """
    from repro.scenarios.simple_network import paper_fig1_scenario
    from repro.tomography.estimator_zoo import estimator_names, resolve_estimator
    from repro.tomography.linear_system import LinearSystem

    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    scenario = paper_fig1_scenario()
    fig1_matrix = scenario.path_set.routing_matrix()
    synth_matrix = _path_incidence_matrix(120, 180, 6, seed)
    systems = {
        "fig1": (LinearSystem(fig1_matrix), fig1_matrix @ scenario.true_metrics),
        "synthetic-120x180": (
            LinearSystem(synth_matrix),
            synth_matrix @ rng.uniform(1.0, 20.0, size=synth_matrix.shape[1]),
        ),
    }
    batch_cols = 32
    sections: dict = {}
    ls_vs_kernel: dict = {}
    for label, (system, observed) in systems.items():
        block = np.tile(observed[:, None], (1, batch_cols))

        def kernel() -> None:
            for _ in range(inner_loops):
                system.estimate(observed)

        kernel_s = _best_of(kernel, repeat)
        families: dict = {}
        for name in estimator_names():
            estimator = resolve_estimator(name, system=system)
            loops = inner_loops if name in ("ls", "bayes-map", "ridge") else max(
                1, inner_loops // 20
            )

            def single() -> None:
                for _ in range(loops):
                    estimator.estimate(observed)

            if name == "l1":
                # Build the persistent LP model off-clock so the timed
                # loop measures warm re-solves, like the lp bench does.
                estimator.estimate(observed)
            single_s = _best_of(single, repeat)
            batch_s = _best_of(lambda: estimator.estimate_batch(block), repeat)
            families[name] = {
                "estimate_s": single_s,
                "inner_loops": loops,
                "per_solve_us": 1e6 * single_s / loops,
                "batch32_s": batch_s,
            }
        sections[label] = {
            "paths": system.num_paths,
            "links": system.num_links,
            "kernel_estimate_s": kernel_s,
            "estimators": families,
        }
        ls_vs_kernel[label] = (
            families["ls"]["estimate_s"] / kernel_s if kernel_s > 0 else float("inf")
        )
    return {
        "bench": "estimator_zoo",
        "repeat": repeat,
        "inner_loops": inner_loops,
        "wall_s": time.perf_counter() - start,
        "systems": sections,
        "ls_vs_kernel": ls_vs_kernel,
    }


#: Online-bench scale presets: path-count target on the large ISP topology.
_ONLINE_SCALES = {"small": 800, "isp_large": 2500}


def online_benchmark(
    *,
    repeat: int = 3,
    epochs: int = 6,
    seed: int = 2017,
    scales: tuple = ("small", "isp_large"),
) -> dict:
    """Per-epoch churn latency: incremental ``evolve`` vs full refactorize.

    Real shortest paths on the large ISP topology (~2.5k routers), sparse
    backend, wide regime (paths < links, so the small side is the
    ``R R^T`` Gram).  Each epoch one path fails and a fresh reserve path
    joins — the dominant churn pattern :meth:`LinearSystem.evolve` fuses
    into a single-allocation Cholesky replace.  Two latencies per epoch:

    - ``evolve_s`` — bring the system current incrementally (rank-1
      kernels + round-trip certification + seeding), best of ``repeat``.
    - ``refactorize_s`` — the alternative: rebuild ``LinearSystem`` cold
      and force its factorization (Gram build + ``cho_factor`` + rank
      certificate), best of ``repeat``.

    The online check (estimate + residual) is timed separately on both
    arms — it is identical downstream work, and its estimates are
    compared per epoch (``max_abs_err``) so the headline speedup comes
    with a bit-consistency certificate in every benchmarked phase.
    ``speedup.online_per_epoch`` (isp_large) is the acceptance headline;
    ``speedup.online_small`` backs the CI smoke floor.
    """
    from repro.tomography.linear_system import LinearSystem

    start = time.perf_counter()
    rng = np.random.default_rng(seed)
    sections: dict = {}
    speedups: dict = {}
    for scale in scales:
        target = _ONLINE_SCALES[scale]
        topology, path_set = _isp_path_set(seed, target + epochs, dedupe=True)
        full_matrix = path_set.sparse_routing_matrix()
        base = full_matrix[:target].tocsr()
        reserve = full_matrix[target : target + epochs]
        n = base.shape[1]
        x_true = rng.uniform(1.0, 20.0, size=n)
        system = LinearSystem(base, backend="sparse")
        system.estimate(system.predict(x_true))  # warm the factorization

        records = []
        evolve_total = refactor_total = check_inc_total = check_cold_total = 0.0
        worst_err = 0.0
        for epoch in range(min(epochs, reserve.shape[0])):
            index = int(rng.integers(0, system.num_paths))
            new_row = np.asarray(reserve[epoch].todense()).ravel()

            evolve_s = _best_of(
                lambda: system.evolve(remove_indices=[index], add_rows=[new_row]),
                repeat,
            )
            evolved = system.evolve(remove_indices=[index], add_rows=[new_row])

            def refactorize() -> None:
                cold = LinearSystem(evolved.raw_matrix, backend="sparse")
                cold.rank  # noqa: B018 — forces Gram build + cho_factor + certificate

            refactor_s = _best_of(refactorize, repeat)
            observed = evolved.predict(x_true)
            check_inc_s = _best_of(lambda: evolved.estimate(observed), repeat)
            cold = LinearSystem(evolved.raw_matrix, backend="sparse")
            check_cold_s = _best_of(lambda: cold.estimate(observed), repeat)
            err = float(
                np.abs(evolved.estimate(observed) - cold.estimate(observed)).max()
            )

            evolve_total += evolve_s
            refactor_total += refactor_s
            check_inc_total += check_inc_s
            check_cold_total += check_cold_s
            worst_err = max(worst_err, err)
            records.append(
                {
                    "epoch": epoch,
                    "removed_index": index,
                    "incremental": bool(evolved.evolved_incrementally),
                    "evolve_s": evolve_s,
                    "refactorize_s": refactor_s,
                    "check_incremental_s": check_inc_s,
                    "check_cold_s": check_cold_s,
                    "speedup": refactor_s / evolve_s if evolve_s > 0 else float("inf"),
                    "max_abs_err": err,
                }
            )
            system = evolved

        sections[scale] = {
            "nodes": topology.num_nodes,
            "links": n,
            "paths": target,
            "epochs": len(records),
            "incremental_epochs": sum(r["incremental"] for r in records),
            "evolve_total_s": evolve_total,
            "refactorize_total_s": refactor_total,
            "check_incremental_total_s": check_inc_total,
            "check_cold_total_s": check_cold_total,
            "max_abs_err": worst_err,
            "consistent": worst_err <= 1e-8,
            "per_epoch": records,
        }
        speedups[f"online_{'per_epoch' if scale == 'isp_large' else scale}"] = (
            refactor_total / evolve_total if evolve_total > 0 else float("inf")
        )
        speedups[
            f"online_{'isp_large' if scale == 'isp_large' else scale}_end_to_end"
        ] = (
            (refactor_total + check_cold_total) / (evolve_total + check_inc_total)
            if evolve_total + check_inc_total > 0
            else float("inf")
        )
    return {
        "bench": "online",
        "repeat": repeat,
        "epochs": epochs,
        "wall_s": time.perf_counter() - start,
        "scales": sections,
        "speedup": speedups,
    }


def full_perf_benchmark(*, repeat: int = 3) -> dict:
    """All benchmark sections in one payload (what ``BENCH_perf.json`` holds)."""
    return {
        "fig1_pipeline": fig1_pipeline_benchmark(repeat=repeat),
        "fig5_max_damage": fig5_assembly_benchmark(repeat=repeat),
        "lp": lp_benchmark(repeat=repeat),
        "sweep_cache": sweep_cache_benchmark(repeat=repeat),
        "backends": backends_benchmark(repeat=repeat),
        "estimators": estimators_benchmark(repeat=repeat),
        "online": online_benchmark(repeat=repeat),
    }


def write_bench_json(benchmarks: dict, path: str | Path) -> Path:
    """Write ``benchmarks`` under the versioned envelope; returns the path.

    ``benchmarks`` maps section name to a benchmark payload (one of the
    ``*_benchmark`` results above, or any JSON-ready dict).
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "created_unix": time.time(),
        "benchmarks": benchmarks,
    }
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def _trajectory_point(benchmarks: dict) -> dict:
    """Compact per-run summary kept in the trajectory (wall time + speedups)."""
    point: dict = {}
    for name, payload in benchmarks.items():
        entry: dict = {}
        if isinstance(payload, dict):
            if "wall_s" in payload:
                entry["wall_s"] = payload["wall_s"]
            speedup = payload.get("speedup")
            if isinstance(speedup, dict):
                entry["speedup"] = dict(speedup)
        point[name] = entry
    return point


def append_trajectory(benchmarks: dict, path: str | Path) -> Path:
    """Append one compact benchmark point to a trajectory file.

    The trajectory file accumulates a summary of every ``--trajectory``
    bench run (schema_version 1)::

        {"schema_version": 1, "runs": [{"created_unix": ..., "benchmarks":
         {"<name>": {"wall_s": ..., "speedup": {...}}}}, ...]}

    Existing runs are preserved — the file is append-only at the ``runs``
    level.  A missing or unparseable file starts a fresh trajectory (the
    unparseable original is not overwritten silently: parse errors raise).
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    if out.exists():
        try:
            doc = json.loads(out.read_text())
        except json.JSONDecodeError as exc:
            raise ValueError(f"existing trajectory file {out} is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
            raise ValueError(f"existing trajectory file {out} has no 'runs' list")
    else:
        doc = {"schema_version": SCHEMA_VERSION, "runs": []}
    doc["runs"].append(
        {"created_unix": time.time(), "benchmarks": _trajectory_point(benchmarks)}
    )
    out.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return out
