"""Lightweight global instrumentation for the numerical hot paths.

The library's expensive primitives (SVD factorisations, LP assembly, LP
solves, Monte-Carlo trials) report events and stage timings here.  When
neither a recorder nor an observability run log is active — the normal
case — every hook is two global loads plus ``None`` checks, so
instrumentation costs nothing in production use.  The bench harness
activates a :class:`PerfRecorder` around a workload and reads the
aggregated counters/timings back out.

Since the :mod:`repro.obs` layer landed, ``stage`` and ``record_event``
are thin shims over it as well: when a structured run log is active
(``REPRO_OBS=1`` or :func:`repro.obs.enabled`), every stage becomes a
nested span and every event a counter record in the JSONL log — all
pre-existing instrumentation points flow into run logs with no caller
changes.  ``PerfRecorder`` keeps its aggregate-snapshot role for the
bench harness.

Only stdlib and the (equally stdlib-only) :mod:`repro.obs.core` are
used; this module must stay import-free of the rest of ``repro`` so that
any layer (``utils``, ``attacks``, ``scenarios``) can report into it
without cycles.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import ExitStack, contextmanager

from repro.obs import core as _obs

__all__ = [
    "PerfRecorder",
    "active_recorder",
    "record_event",
    "recording",
    "stage",
]


class PerfRecorder:
    """Aggregates event counts and per-stage wall-clock time.

    Attributes
    ----------
    counters:
        Event name -> occurrence count (e.g. ``"svd"``, ``"lp_solve"``).
    stage_seconds:
        Stage name -> cumulative wall seconds spent inside that stage.
    stage_calls:
        Stage name -> number of times the stage was entered.
    """

    def __init__(self) -> None:
        self.counters: Counter[str] = Counter()
        self.stage_seconds: dict[str, float] = {}
        self.stage_calls: Counter[str] = Counter()

    def count(self, name: str, n: int = 1) -> None:
        """Record ``n`` occurrences of event ``name``."""
        self.counters[name] += n

    @contextmanager
    def stage(self, name: str):
        """Time a ``with`` block under stage ``name`` (cumulative)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self.stage_seconds[name] = self.stage_seconds.get(name, 0.0) + elapsed
            self.stage_calls[name] += 1

    def snapshot(self) -> dict:
        """A JSON-ready copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "stages": {
                name: {
                    "seconds": self.stage_seconds[name],
                    "calls": int(self.stage_calls[name]),
                }
                for name in sorted(self.stage_seconds)
            },
        }


#: The currently active recorder (None = instrumentation disabled).
_ACTIVE: PerfRecorder | None = None


def active_recorder() -> PerfRecorder | None:
    """The recorder events currently report into, if any."""
    return _ACTIVE


def record_event(name: str, n: int = 1) -> None:
    """Report ``n`` occurrences of ``name`` to the active recorder.

    Also forwarded as a counter record to the active observability run
    log, when one is enabled.
    """
    if _ACTIVE is not None:
        _ACTIVE.count(name, n)
    log = _obs.active_log()
    if log is not None:
        log.counter(name, n)


@contextmanager
def stage(name: str):
    """Time a block under ``name`` when a recorder or run log is active.

    With a :class:`PerfRecorder` active the block accumulates into its
    stage timings; with an observability run log active it additionally
    opens a nested span in the JSONL log.  With neither, a no-op.
    """
    log = _obs.active_log()
    if _ACTIVE is None and log is None:
        yield None
        return
    with ExitStack() as stack:
        if log is not None:
            stack.enter_context(log.span(name))
        if _ACTIVE is not None:
            stack.enter_context(_ACTIVE.stage(name))
        yield _ACTIVE


@contextmanager
def recording(recorder: PerfRecorder | None = None):
    """Activate ``recorder`` (a fresh one by default) for the block.

    Nesting replaces the active recorder for the inner block and restores
    the outer one afterwards — inner workloads are attributed to the
    innermost recorder only, keeping bench sections independent.
    """
    global _ACTIVE
    rec = recorder if recorder is not None else PerfRecorder()
    previous = _ACTIVE
    _ACTIVE = rec
    try:
        yield rec
    finally:
        _ACTIVE = previous
