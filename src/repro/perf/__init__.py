"""Performance layer: instrumentation and benchmark harness.

``repro.perf.instrumentation`` is the lightweight event/stage recorder the
hot paths report into (SVD count, LP count, per-stage wall time); it is a
no-op unless a recorder is activated, so the library pays nothing in
normal use.  ``repro.perf.bench`` turns recordings into machine-readable
``BENCH_*.json`` files and backs the ``repro bench`` CLI subcommand.

Only the instrumentation names are imported eagerly: the bench harness
pulls in scenario/attack modules which themselves report into the
instrumentation, so loading it here would create an import cycle.  The
bench entry points are re-exported lazily instead.
"""

from repro.perf.instrumentation import (
    PerfRecorder,
    active_recorder,
    record_event,
    recording,
    stage,
)

__all__ = [
    "PerfRecorder",
    "active_recorder",
    "record_event",
    "recording",
    "stage",
    "backends_benchmark",
    "fig1_pipeline_benchmark",
    "fig5_assembly_benchmark",
    "full_perf_benchmark",
    "write_bench_json",
]

_BENCH_EXPORTS = {
    "backends_benchmark",
    "fig1_pipeline_benchmark",
    "fig5_assembly_benchmark",
    "full_perf_benchmark",
    "write_bench_json",
}


def __getattr__(name: str):
    if name in _BENCH_EXPORTS:
        from repro.perf import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
