"""Structured observability: JSONL run logs, manifests, and summaries.

``repro.obs`` generalises the :mod:`repro.perf` stage timers into a
first-class run log.  When a log is active, every instrumented hot path
(SVD factorisations, LP assembly and solves, Monte-Carlo chunks,
detection sweeps, the CLI itself) appends one JSON object per event to a
``.jsonl`` file — nested spans with durations, monotonically aggregated
counters, and gauge samples — and a *run manifest* (seed, config digest,
package version, topology summary, wall/CPU time) is written next to it.

The layer is **off by default** and costs one global load plus a ``None``
check per hook when disabled.  Enable it either programmatically::

    from repro import obs

    with obs.enabled("runs/run.jsonl") as log:
        outcome = MaxDamageAttack(context).run()

or from the environment (honoured by the CLI)::

    REPRO_OBS=1 repro run scenario.json        # writes run log + manifest
    repro obs summarize <run.jsonl>            # render it afterwards

Environment variables: ``REPRO_OBS`` (truthy enables), ``REPRO_OBS_PATH``
(exact run-log path), ``REPRO_OBS_DIR`` (directory for auto-named logs,
default ``obs_runs/``).

:mod:`repro.perf.instrumentation` is a thin shim over this layer: its
``stage``/``record_event`` hooks forward into the active event log, so
every pre-existing instrumentation point shows up in run logs without
any caller changes.
"""

from repro.obs.core import (
    SCHEMA_VERSION,
    EventLog,
    active_log,
    counter,
    default_run_path,
    detach_inherited_log,
    enabled,
    enabled_from_env,
    env_enabled,
    event,
    gauge,
    is_enabled,
    span,
)
from repro.obs.manifest import RunManifest, config_digest
from repro.obs.summary import (
    format_summary,
    read_events,
    summarize_events,
    summarize_run,
)

__all__ = [
    "SCHEMA_VERSION",
    "EventLog",
    "RunManifest",
    "active_log",
    "config_digest",
    "counter",
    "default_run_path",
    "detach_inherited_log",
    "enabled",
    "enabled_from_env",
    "env_enabled",
    "event",
    "format_summary",
    "gauge",
    "is_enabled",
    "read_events",
    "span",
    "summarize_events",
    "summarize_run",
]
