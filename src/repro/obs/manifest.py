"""Per-run manifests: what exactly produced a result directory.

A manifest freezes the run's provenance next to its outputs — seed,
command, a canonical config digest, package version, interpreter and
platform, an optional topology summary, and wall/CPU time — so a result
file can always be traced back to the inputs that produced it.  The
digest is a SHA-256 over the *sanitized, key-sorted* JSON encoding of
the config, so two runs with the same effective configuration have the
same digest regardless of dict ordering or numpy scalar types.

Typical lifecycle (the CLI does this automatically under ``REPRO_OBS=1``)::

    manifest = RunManifest(command="run", seed=7, config=vars(args))
    ...  # the actual work
    manifest.write("runs/run.manifest.json")
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.obs.core import SCHEMA_VERSION, _package_version, sanitize

__all__ = ["RunManifest", "config_digest", "matrix_digest"]


def config_digest(config: dict | None) -> str:
    """SHA-256 of the canonical JSON encoding of ``config``.

    ``None`` and ``{}`` share the digest of the empty config; non-finite
    floats and numpy scalars are normalised by :func:`repro.obs.core.sanitize`
    first, so the digest is stable across platforms.
    """
    canonical = json.dumps(
        sanitize(config or {}), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def matrix_digest(matrix: object) -> str:
    """Canonical SHA-256 of a 2-D numeric array (e.g. a routing matrix).

    Defined as :func:`config_digest` over ``{"shape": ..., "data": ...}``
    with the entries normalised by :func:`repro.obs.core.sanitize`, so the
    digest is independent of dtype/container (a numpy array, a nested
    list, and a tuple of rows with equal values all agree) and stable
    across platforms.  The :mod:`repro.sweep` factorization cache keys
    shared :class:`~repro.tomography.linear_system.LinearSystem` kernels
    by this digest.
    """
    fast = _binary_matrix_digest(matrix)
    if fast is not None:
        return fast
    tolist = getattr(matrix, "tolist", None)
    rows = tolist() if callable(tolist) else [list(row) for row in matrix]
    return config_digest({"shape": [len(rows), len(rows[0]) if rows else 0], "data": rows})


def _binary_matrix_digest(matrix: object) -> str | None:
    """Fast path of :func:`matrix_digest` for float 0/1 arrays.

    Routing matrices are 0/1 incidence arrays, and on ISP-scale inputs the
    generic tolist -> sanitize -> json.dumps round-trip dominates every
    cache lookup.  For those arrays the canonical JSON has only two
    possible cell encodings, so the string is assembled directly.  The
    output is byte-identical to the generic path (verified by test);
    anything outside the narrow precondition — including negative zeros,
    whose sign the canonical encoding preserves — returns ``None`` and
    takes the generic path.
    """
    if not isinstance(matrix, np.ndarray) or matrix.ndim != 2 or matrix.size == 0:
        return None
    if matrix.dtype != np.float64:
        return None
    ones = matrix == 1.0
    if not np.all(ones | (matrix == 0.0)) or np.any(np.signbit(matrix)):
        return None
    num_rows, num_cols = matrix.shape
    # Every cell encodes as exactly four bytes "0.0," / "1.0," — write them
    # all at once, then splice the row separators over the trailing commas.
    cell = np.empty((num_rows, num_cols, 4), dtype=np.uint8)
    cell[..., 0] = np.where(ones, ord("1"), ord("0"))
    cell[..., 1] = ord(".")
    cell[..., 2] = ord("0")
    cell[..., 3] = ord(",")
    raw = cell.reshape(num_rows, -1).tobytes()
    width = 4 * num_cols
    body = b"],[".join(
        raw[i * width : (i + 1) * width - 1] for i in range(num_rows)
    )
    canonical = b'{"data":[[' + body + b']],"shape":[%d,%d]}' % matrix.shape
    return hashlib.sha256(canonical).hexdigest()


class RunManifest:
    """Collects run provenance; :meth:`finalize` stamps wall/CPU time.

    Parameters
    ----------
    command:
        What ran (CLI subcommand, driver name, ...).
    seed:
        The run's top-level seed, when it has one.
    config:
        The effective configuration (e.g. ``vars(args)``); digested and
        embedded verbatim (sanitized).
    scenario:
        Anything with a ``describe()`` method returning a flat dict
        (:class:`repro.scenarios.scenario.Scenario` qualifies); its
        summary lands under ``topology``.

    The wall clock starts at construction (monotonic) and CPU time uses
    ``time.process_time``; both are measured at :meth:`finalize` /
    :meth:`write` time.
    """

    def __init__(
        self,
        *,
        command: str = "",
        seed: object = None,
        config: dict | None = None,
        scenario: object = None,
    ) -> None:
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()
        self.data: dict = {
            "format": "repro-run-manifest",
            "schema": SCHEMA_VERSION,
            "version": _package_version(),
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "command": command,
            "seed": sanitize(seed),
            "config": sanitize(config or {}),
            "config_digest": config_digest(config),
            "created_unix": time.time(),
        }
        if scenario is not None:
            self.attach_scenario(scenario)

    def attach_scenario(self, scenario: object) -> None:
        """Embed a topology/path summary from ``scenario.describe()``."""
        describe = getattr(scenario, "describe", None)
        if callable(describe):
            self.data["topology"] = sanitize(describe())

    def finalize(self) -> dict:
        """Stamp wall/CPU seconds and return the manifest dict."""
        self.data["wall_s"] = time.perf_counter() - self._wall_start
        self.data["cpu_s"] = time.process_time() - self._cpu_start
        return self.data

    def write(self, path: str | Path) -> Path:
        """Finalize and write the manifest as JSON; returns the path."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(self.finalize(), indent=2, sort_keys=True, allow_nan=False)
            + "\n"
        )
        return out
