"""Read back and aggregate a JSONL run log.

The inverse of :class:`repro.obs.core.EventLog`: parse the line stream,
validate the envelope, and fold it into a compact summary — per-span
timing (calls, total, max), final counter totals, gauge statistics, and
chronology.  Backs the ``repro obs summarize`` CLI subcommand.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import SerializationError
from repro.obs.core import SCHEMA_VERSION

__all__ = ["format_summary", "read_events", "summarize_events", "summarize_run"]


def read_events(path: str | Path) -> list[dict]:
    """Parse a run log into its record list, validating the envelope.

    Raises :class:`~repro.exceptions.SerializationError` when the file is
    missing, a line is not a JSON object, or the header is absent or of
    an unsupported schema version.  Blank lines are tolerated (a killed
    run may leave a partial final line — that one still errors, by
    design: a truncated log should be noticed, not silently summarised).
    """
    file_path = Path(path)
    try:
        text = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise SerializationError(f"cannot read run log {file_path}: {exc}") from exc
    records: list[dict] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SerializationError(
                f"{file_path}:{line_number}: invalid JSON record: {exc}"
            ) from exc
        if not isinstance(record, dict) or "kind" not in record:
            raise SerializationError(
                f"{file_path}:{line_number}: not an event record: {line[:80]!r}"
            )
        records.append(record)
    if not records or records[0].get("kind") != "header":
        raise SerializationError(f"{file_path}: missing run-log header record")
    schema = records[0].get("schema")
    if schema != SCHEMA_VERSION:
        raise SerializationError(
            f"{file_path}: unsupported run-log schema {schema!r} "
            f"(this build reads {SCHEMA_VERSION})"
        )
    return records


def summarize_events(records: list[dict]) -> dict:
    """Fold parsed records into an aggregate summary dict.

    Spans aggregate from ``span_end`` records (so an unclosed span from a
    crashed run counts in ``open_spans`` instead of skewing timings);
    counters prefer the footer totals and fall back to summing increments
    when the footer is missing.
    """
    header = records[0]
    footer = records[-1] if records[-1].get("kind") == "footer" else None
    spans: dict[str, dict] = {}
    counters: dict[str, int] = {}
    gauges: dict[str, dict] = {}
    events: dict[str, int] = {}
    started = 0
    ended = 0
    for record in records:
        kind = record.get("kind")
        if kind == "span_start":
            started += 1
        elif kind == "span_end":
            ended += 1
            entry = spans.setdefault(
                str(record.get("name")), {"calls": 0, "seconds": 0.0, "max_s": 0.0}
            )
            duration = float(record.get("dur_s", 0.0))
            entry["calls"] += 1
            entry["seconds"] += duration
            entry["max_s"] = max(entry["max_s"], duration)
        elif kind == "counter":
            name = str(record.get("name"))
            counters[name] = counters.get(name, 0) + int(record.get("n", 1))
        elif kind == "gauge":
            name = str(record.get("name"))
            value = record.get("value")
            entry = gauges.setdefault(
                name, {"samples": 0, "last": value, "min": value, "max": value}
            )
            entry["samples"] += 1
            entry["last"] = value
            if isinstance(value, (int, float)):
                for bound, pick in (("min", min), ("max", max)):
                    if isinstance(entry[bound], (int, float)):
                        entry[bound] = pick(entry[bound], value)
        elif kind == "event":
            name = str(record.get("name"))
            events[name] = events.get(name, 0) + 1
    if footer is not None and isinstance(footer.get("counters"), dict):
        counters = {str(k): int(v) for k, v in footer["counters"].items()}
    return {
        "run": header.get("run"),
        "version": header.get("version"),
        "schema": header.get("schema"),
        "records": len(records),
        "complete": footer is not None,
        "wall_s": (footer or {}).get("wall_s"),
        "open_spans": started - ended,
        "spans": dict(sorted(spans.items())),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "events": dict(sorted(events.items())),
    }


def summarize_run(path: str | Path) -> dict:
    """Read and summarize a run log in one step."""
    return summarize_events(read_events(path))


def format_summary(summary: dict) -> str:
    """Render a summary dict as the ``repro obs summarize`` text report."""
    lines = [
        f"run      : {summary.get('run')}",
        f"version  : {summary.get('version')} (schema {summary.get('schema')})",
        f"records  : {summary.get('records')}"
        + ("" if summary.get("complete") else "  [INCOMPLETE: no footer]"),
    ]
    wall = summary.get("wall_s")
    if isinstance(wall, (int, float)):
        lines.append(f"wall     : {wall * 1e3:.2f} ms")
    if summary.get("open_spans"):
        lines.append(f"UNCLOSED : {summary['open_spans']} span(s) never ended")
    if summary.get("spans"):
        lines.append("spans:")
        for name, info in summary["spans"].items():
            lines.append(
                f"  {name:<24} {info['seconds'] * 1e3:10.3f} ms"
                f"  ({info['calls']} calls, max {info['max_s'] * 1e3:.3f} ms)"
            )
    if summary.get("counters"):
        lines.append("counters:")
        for name, total in summary["counters"].items():
            lines.append(f"  {name:<24} {total}")
    if summary.get("gauges"):
        lines.append("gauges:")
        for name, info in summary["gauges"].items():
            lines.append(
                f"  {name:<24} last={info['last']}  min={info['min']}"
                f"  max={info['max']}  ({info['samples']} samples)"
            )
    if summary.get("events"):
        lines.append("events:")
        for name, count in summary["events"].items():
            lines.append(f"  {name:<24} {count}")
    return "\n".join(lines)
