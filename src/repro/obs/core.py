"""The JSONL event log and its global activation hooks.

One :class:`EventLog` owns one append-only ``.jsonl`` file.  Every record
is a single-line JSON object stamped with ``t`` — seconds since the log
opened, from a monotonic clock — and, when inside a span, the enclosing
span id.  Record kinds (``schema`` 1):

``header``
    First line: schema version, run name, package version, pid, the one
    wall-clock timestamp (``unix_time``) of the run.
``span_start`` / ``span_end``
    Nested timed sections.  ``id`` is unique within the log, ``parent``
    is the enclosing span's id (``None`` at top level), ``depth`` the
    nesting level; ``span_end`` carries ``dur_s``.
``counter``
    A monotone increment: ``n`` this call, ``total`` the running sum.
``gauge``
    A point sample of a named scalar.
``event``
    A free-form point event with arbitrary extra fields.
``footer``
    Last line: final counter totals and total wall seconds.

Non-finite floats in user-supplied fields are encoded as the strings
``"Infinity"`` / ``"-Infinity"`` / ``"NaN"`` so every line stays strict
JSON (``allow_nan=False`` is enforced on write).

Like :mod:`repro.perf.instrumentation`, this module is stdlib-only apart
from the leaf-level :mod:`repro.config` knob registry, and imports
nothing else from ``repro`` so that any layer can report into it without
cycles.  When no log is active every module-level hook is a single
global load plus a ``None`` check.
"""

from __future__ import annotations

import json
import math
import os
import time
from collections import Counter
from contextlib import contextmanager, nullcontext
from pathlib import Path

from repro import config

__all__ = [
    "SCHEMA_VERSION",
    "EventLog",
    "active_log",
    "counter",
    "default_run_path",
    "detach_inherited_log",
    "enabled",
    "enabled_from_env",
    "env_enabled",
    "event",
    "gauge",
    "is_enabled",
    "sanitize",
    "span",
]

#: Schema version stamped into every run-log header.
SCHEMA_VERSION = 1


def sanitize(value: object) -> object:
    """Make ``value`` strict-JSON-ready (recursively).

    Non-finite floats become the string sentinels ``"Infinity"`` /
    ``"-Infinity"`` / ``"NaN"``; numpy scalars and arrays collapse to
    Python numbers / nested lists via their ``tolist()`` method;
    tuples/sets become lists; anything else unserializable falls back to
    ``repr``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "Infinity" if value > 0 else "-Infinity"
        return value
    if isinstance(value, dict):
        return {str(key): sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [sanitize(item) for item in value]
    # numpy scalars and arrays both expose tolist(): scalars collapse to
    # Python numbers, arrays to (nested) lists — no numpy import needed.
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        try:
            return sanitize(tolist())
        except (TypeError, ValueError):
            return repr(value)
    return repr(value)


class EventLog:
    """An open JSONL run log with nested spans, counters, and gauges.

    Parameters
    ----------
    path:
        Destination ``.jsonl`` file (parent directories are created).
    run_id:
        Human-readable run name for the header (default: the file stem).

    The log keeps running counter totals in :attr:`counters` so summaries
    do not need to re-read the file.  Instances are not thread-safe; the
    library activates at most one per process.  Pool workers forked while
    a log is active inherit it — worker chunk bodies call
    :func:`detach_inherited_log` so only the parent process writes.
    """

    def __init__(self, path: str | Path, *, run_id: str | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.counters: Counter[str] = Counter()
        self._span_stack: list[int] = []
        self._next_span_id = 1
        self._closed = False
        self._start = time.perf_counter()
        self._pid = os.getpid()
        self._file = self.path.open("w", encoding="utf-8")
        self._write(
            {
                "t": 0.0,
                "kind": "header",
                "schema": SCHEMA_VERSION,
                "run": run_id or self.path.stem,
                "version": _package_version(),
                "pid": os.getpid(),
                "unix_time": time.time(),
            }
        )

    # -- low-level record plumbing ----------------------------------------

    def _write(self, record: dict) -> None:
        if self._closed:
            return
        self._file.write(
            json.dumps(sanitize(record), allow_nan=False, separators=(",", ":"))
            + "\n"
        )
        # Flush per record so the userspace buffer is empty whenever a
        # pool worker forks — a child inheriting buffered bytes would
        # replay them into the shared descriptor on exit.
        self._file.flush()

    def _emit(self, record: dict) -> None:
        record.setdefault("t", round(time.perf_counter() - self._start, 9))
        if self._span_stack:
            record.setdefault("span", self._span_stack[-1])
        self._write(record)

    # -- the recording surface --------------------------------------------

    def event(self, name: str, **fields: object) -> None:
        """Record a point event with arbitrary extra ``fields``."""
        self._emit({"kind": "event", "name": name, **fields})

    def counter(self, name: str, n: int = 1) -> None:
        """Record ``n`` occurrences of ``name`` (running total kept)."""
        self.counters[name] += n
        self._emit(
            {"kind": "counter", "name": name, "n": int(n), "total": self.counters[name]}
        )

    def gauge(self, name: str, value: float) -> None:
        """Record a point sample of the scalar ``name``."""
        self._emit({"kind": "gauge", "name": name, "value": value})

    @contextmanager
    def span(self, name: str, **fields: object):
        """Time a ``with`` block as a (possibly nested) named span."""
        span_id = self._next_span_id
        self._next_span_id += 1
        parent = self._span_stack[-1] if self._span_stack else None
        self._emit(
            {
                "kind": "span_start",
                "name": name,
                "id": span_id,
                "parent": parent,
                "depth": len(self._span_stack),
                **fields,
            }
        )
        self._span_stack.append(span_id)
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._span_stack.pop()
            self._emit(
                {
                    "kind": "span_end",
                    "name": name,
                    "id": span_id,
                    "parent": parent,
                    "dur_s": elapsed,
                }
            )

    def close(self) -> None:
        """Write the footer and close the file (idempotent)."""
        if self._closed:
            return
        self._emit(
            {
                "kind": "footer",
                "counters": dict(self.counters),
                "wall_s": time.perf_counter() - self._start,
            }
        )
        self._closed = True
        self._file.close()


def _package_version() -> str:
    """The installed ``repro`` version without importing the package eagerly.

    The partially-initialised ``repro`` module is consulted only at call
    time (log construction), never at import time, so this module stays
    cycle-free.
    """
    import sys

    module = sys.modules.get("repro")
    return str(getattr(module, "__version__", "unknown"))


#: The currently active event log (None = observability disabled).
_ACTIVE: EventLog | None = None


def active_log() -> EventLog | None:
    """The event log hooks currently report into, if any."""
    return _ACTIVE


def is_enabled() -> bool:
    """True when a run log is active (use to gate costly field assembly)."""
    return _ACTIVE is not None


def detach_inherited_log() -> None:
    """Disable a log inherited from the parent process across ``fork``.

    With the ``fork`` start method a pool worker inherits both the
    module-global active log and the parent's open file descriptor, so
    its events would interleave with (and corrupt the span nesting of)
    the parent's log.  Worker chunk bodies call this first: if the
    active log was created by a different process it is dropped without
    closing the shared descriptor, and the worker runs with the log
    disabled.  No-op in the process that created the log.
    """
    global _ACTIVE  # repro: worker-state-ok (dropping the inherited log IS the job)
    if _ACTIVE is not None and _ACTIVE._pid != os.getpid():
        _ACTIVE = None


def event(name: str, **fields: object) -> None:
    """Record a point event on the active log, if any."""
    if _ACTIVE is not None:
        _ACTIVE.event(name, **fields)


def counter(name: str, n: int = 1) -> None:
    """Record ``n`` occurrences of ``name`` on the active log, if any."""
    if _ACTIVE is not None:
        _ACTIVE.counter(name, n)


def gauge(name: str, value: float) -> None:
    """Record a gauge sample on the active log, if any."""
    if _ACTIVE is not None:
        _ACTIVE.gauge(name, value)


def span(name: str, **fields: object):
    """A context manager timing a span on the active log (no-op when off)."""
    if _ACTIVE is None:
        return nullcontext(None)
    return _ACTIVE.span(name, **fields)


@contextmanager
def enabled(path: str | Path, *, run_id: str | None = None):
    """Activate a fresh :class:`EventLog` at ``path`` for the block.

    Nesting replaces the active log for the inner block and restores the
    outer one afterwards; the inner log is closed (footer written) on
    exit either way.
    """
    global _ACTIVE
    log = EventLog(path, run_id=run_id)
    previous = _ACTIVE
    _ACTIVE = log
    try:
        yield log
    finally:
        _ACTIVE = previous
        log.close()


def env_enabled() -> bool:
    """True when ``REPRO_OBS`` requests observability."""
    return config.get_bool("REPRO_OBS")


def default_run_path() -> Path:
    """Where an environment-activated run log goes.

    ``REPRO_OBS_PATH`` names the exact file; otherwise a timestamped
    ``run-YYYYmmdd-HHMMSS-<pid>.jsonl`` under ``REPRO_OBS_DIR`` (default
    ``obs_runs/``).
    """
    explicit = config.get_str("REPRO_OBS_PATH")
    if explicit:
        return Path(explicit)
    directory = Path(config.get_str("REPRO_OBS_DIR"))
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return directory / f"run-{stamp}-{os.getpid()}.jsonl"


@contextmanager
def enabled_from_env():
    """Activate a run log iff ``REPRO_OBS`` asks for one.

    Yields the :class:`EventLog` (or ``None`` when disabled or when a log
    is already active — an outer activation wins, so nested CLI calls in
    one process do not clobber each other's files).
    """
    if not env_enabled() or _ACTIVE is not None:
        yield None
        return
    with enabled(default_run_path()) as log:
        yield log
