"""Link-metric estimators.

:class:`LeastSquaresEstimator` is the paper's estimator (eq. 2).  The two
variants are defensive alternatives a cautious operator might deploy —
non-negative least squares (link delays cannot be negative) and ridge
regularisation (stabilises near-dependent path sets); the ablation benches
measure whether they change scapegoating feasibility (they do not, for
perfect cuts — the attack forges measurements that are *exactly* consistent
with a legitimate metric vector).

:class:`NonNegativeEstimator` and :class:`RidgeEstimator` are deprecated
shims over the registry-dispatched families in
:mod:`repro.tomography.estimator_zoo` (``"nnls"`` and ``"ridge"``) — they
delegate every solve to the zoo member, so the two spellings can never
drift numerically.  New code should call
:func:`~repro.tomography.estimator_zoo.resolve_estimator` instead.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SingularSystemError, TomographyError
from repro.tomography.linear_system import LinearSystem
from repro.utils.validation import check_finite_vector

__all__ = ["LeastSquaresEstimator", "NonNegativeEstimator", "RidgeEstimator"]


def _checked_matrix(routing_matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(routing_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
        raise TomographyError(f"degenerate routing matrix shape {matrix.shape}")
    return matrix


class LeastSquaresEstimator:
    """The least-squares inversion of eq. (2): ``x_hat = R⁺ y``.

    Parameters
    ----------
    routing_matrix:
        The 0/1 measurement matrix ``R``.
    require_full_rank:
        When True (default), refuse rank-deficient systems with
        :class:`SingularSystemError` instead of silently returning the
        minimum-norm solution — an operator should know when links are
        unidentifiable.  Pass False to opt into the pseudo-inverse
        behaviour.
    """

    def __init__(self, routing_matrix: np.ndarray, *, require_full_rank: bool = True) -> None:
        matrix = np.asarray(routing_matrix, dtype=float)
        if matrix.ndim != 2:
            raise TomographyError(f"routing matrix must be 2-D, got ndim={matrix.ndim}")
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise TomographyError(f"degenerate routing matrix shape {matrix.shape}")
        system = LinearSystem(matrix)
        if require_full_rank and not system.is_full_column_rank:
            raise SingularSystemError(
                f"routing matrix with shape {matrix.shape} is rank-deficient; "
                "some link metrics are unidentifiable"
            )
        self._matrix = matrix
        self._system = system

    @property
    def routing_matrix(self) -> np.ndarray:
        """A copy of ``R``."""
        return self._matrix.copy()

    @property
    def operator(self) -> np.ndarray:
        """A copy of the estimator operator ``R⁺``."""
        return self._system.estimator.copy()

    def estimate(self, measurements: np.ndarray) -> np.ndarray:
        """Estimate the link-metric vector from path measurements."""
        y = check_finite_vector(measurements, "measurements", length=self._matrix.shape[0])
        return self._system.estimate(y)


class NonNegativeEstimator:
    """Non-negative least squares: ``min ||R x - y||_2`` s.t. ``x >= 0``.

    .. deprecated:: delegates to the zoo family ``"nnls"``; use
       ``resolve_estimator("nnls", routing_matrix=R)`` in new code.
    """

    def __init__(self, routing_matrix: np.ndarray) -> None:
        from repro.tomography.estimator_zoo import resolve_estimator

        self._matrix = _checked_matrix(routing_matrix)
        self._delegate = resolve_estimator("nnls", routing_matrix=self._matrix)

    @property
    def routing_matrix(self) -> np.ndarray:
        """A copy of ``R``."""
        return self._matrix.copy()

    def estimate(self, measurements: np.ndarray) -> np.ndarray:
        """Estimate non-negative link metrics from path measurements."""
        y = check_finite_vector(measurements, "measurements", length=self._matrix.shape[0])
        return self._delegate.estimate(y)


class RidgeEstimator:
    """Tikhonov-regularised inversion: ``(R^T R + lam I)^{-1} R^T y``.

    ``lam > 0`` always yields a well-posed system, at the cost of a small
    bias toward zero.  Useful as a robustness baseline when the path set is
    nearly rank-deficient.

    .. deprecated:: delegates to the zoo family ``"ridge"``; use
       ``resolve_estimator("ridge", routing_matrix=R, lam=lam)`` in new code.
    """

    def __init__(self, routing_matrix: np.ndarray, lam: float = 1e-6) -> None:
        from repro.tomography.estimator_zoo import resolve_estimator

        self._matrix = _checked_matrix(routing_matrix)
        if lam <= 0:
            raise TomographyError(f"ridge parameter must be positive, got {lam}")
        self._delegate = resolve_estimator(
            "ridge", routing_matrix=self._matrix, lam=float(lam)
        )
        self.lam = float(lam)

    @property
    def routing_matrix(self) -> np.ndarray:
        """A copy of ``R``."""
        return self._matrix.copy()

    def estimate(self, measurements: np.ndarray) -> np.ndarray:
        """Estimate link metrics with ridge regularisation."""
        y = check_finite_vector(measurements, "measurements", length=self._matrix.shape[0])
        return self._delegate.estimate(y)
