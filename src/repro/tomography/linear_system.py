"""Linear-system utilities for the tomography model ``y = R x``.

The *estimator operator* is the matrix that maps measurements to estimates;
for the paper's least-squares estimator it is the Moore-Penrose
pseudo-inverse ``R⁺ = (R^T R)^{-1} R^T`` (eq. 2) when ``R`` has full column
rank.  The *measurement residual* ``R x_hat - y'`` is the quantity the
scapegoating detector thresholds (eq. 23 / Remark 4): honest measurements
lie in the column space of ``R`` (up to noise), manipulated ones generally
do not.
"""

from __future__ import annotations

import numpy as np

from repro.utils.linalg import least_squares_pinv
from repro.utils.validation import check_finite_vector

__all__ = ["estimator_operator", "measurement_residual", "residual_l1_norm"]


def estimator_operator(routing_matrix: np.ndarray) -> np.ndarray:
    """The measurement-to-estimate operator ``R⁺`` (|L| x |P|).

    Equals ``(R^T R)^{-1} R^T`` for full-column-rank ``R``; otherwise the
    minimum-norm least-squares operator.  Attack planners use the *same*
    operator to predict what tomography will conclude — the attacker and
    the operator share the public algorithm, only the attacker also knows
    the manipulation.
    """
    return least_squares_pinv(routing_matrix)


def measurement_residual(
    routing_matrix: np.ndarray, estimate: np.ndarray, observed: np.ndarray
) -> np.ndarray:
    """Per-path residual vector ``R x_hat - y'``.

    Entry ``i`` is how far path ``i``'s observed measurement is from the sum
    of the estimated link metrics along it — the per-path consistency check
    underlying eq. (23).
    """
    matrix = np.asarray(routing_matrix, dtype=float)
    x_hat = check_finite_vector(estimate, "estimate", length=matrix.shape[1])
    y = check_finite_vector(observed, "observed", length=matrix.shape[0])
    return matrix @ x_hat - y


def residual_l1_norm(
    routing_matrix: np.ndarray, estimate: np.ndarray, observed: np.ndarray
) -> float:
    """The detector statistic ``||R x_hat - y'||_1`` of Remark 4."""
    return float(np.abs(measurement_residual(routing_matrix, estimate, observed)).sum())
