"""Linear-system utilities for the tomography model ``y = R x``.

The *estimator operator* is the matrix that maps measurements to estimates;
for the paper's least-squares estimator it is the Moore-Penrose
pseudo-inverse ``R⁺ = (R^T R)^{-1} R^T`` (eq. 2) when ``R`` has full column
rank.  The *measurement residual* ``R x_hat - y'`` is the quantity the
scapegoating detector thresholds (eq. 23 / Remark 4): honest measurements
lie in the column space of ``R`` (up to noise), manipulated ones generally
do not.

:class:`LinearSystem` is the shared kernel behind all of this: it runs
*one* economy SVD of ``R`` and derives every operator the library needs —
``R⁺``, the column-space and residual projectors, rank/redundancy, and a
nullspace basis — from the same factors.  Attack contexts, detectors and
estimators that previously each ran their own ``pinv``/``svd`` now share
these factorisations.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.analysis.contracts import check_routing_matrix, contract
from repro.obs import core as obs
from repro.utils.linalg import DEFAULT_RANK_TOL, compact_svd, pinv_from_svd
from repro.utils.validation import check_finite_vector

__all__ = [
    "LinearSystem",
    "estimator_operator",
    "measurement_residual",
    "residual_l1_norm",
]


class LinearSystem:
    """One-SVD kernel for the measurement system ``y = R x``.

    Parameters
    ----------
    routing_matrix:
        The 0/1 measurement matrix ``R`` (|P| x |L|).
    rank_tol:
        Relative singular-value cutoff for rank decisions (the library-wide
        :data:`repro.utils.linalg.DEFAULT_RANK_TOL` by default).

    The SVD runs once, lazily, on first use of any derived quantity; each
    derived operator is then assembled from the shared factors and cached.
    For a routing matrix this replaces three independent dense
    factorisations (estimator ``pinv``, projector ``pinv``, nullspace
    ``svd``) with one.
    """

    # NOTE: no 0/1 contract here — the kernel is deliberately generic (the
    # parity suite feeds it arbitrary dense matrices).  The routing-matrix
    # contract sits on the tomography entry points that *mean* ``R``.
    def __init__(
        self, routing_matrix: np.ndarray, *, rank_tol: float = DEFAULT_RANK_TOL
    ) -> None:
        matrix = np.asarray(routing_matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"routing matrix must be 2-D, got ndim={matrix.ndim}")
        self._matrix = matrix
        self._rank_tol = float(rank_tol)

    # -- shared factors ---------------------------------------------------

    @cached_property
    def _factors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """``(u, s, vt, rank)`` — the one factorisation everything shares."""
        factors = compact_svd(self._matrix, rank_tol=self._rank_tol)
        if obs.is_enabled():
            obs.event(
                "linear_system_factorize",
                paths=self.num_paths,
                links=self.num_links,
                rank=factors[3],
                digest=self.digest,
            )
        return factors

    @cached_property
    def digest(self) -> str:
        """Canonical SHA-256 of ``R`` (the sweep engine's cache key).

        Two systems over value-equal matrices share the digest, so callers
        holding one kernel per digest (``repro.sweep``'s factorization
        cache) never factorise the same routing matrix twice.
        """
        from repro.obs.manifest import matrix_digest

        return matrix_digest(self._matrix)

    # -- basic shape ------------------------------------------------------

    @property
    def matrix(self) -> np.ndarray:
        """The routing matrix ``R`` (not copied; treat as read-only)."""
        return self._matrix

    @property
    def num_paths(self) -> int:
        """Number of measurement paths (rows of ``R``)."""
        return self._matrix.shape[0]

    @property
    def num_links(self) -> int:
        """Number of links (columns of ``R``)."""
        return self._matrix.shape[1]

    # -- rank structure ---------------------------------------------------

    @property
    def singular_values(self) -> np.ndarray:
        """The singular values of ``R`` (descending)."""
        return self._factors[1]

    @property
    def rank(self) -> int:
        """Numerical rank of ``R`` under the shared cutoff."""
        return self._factors[3]

    @property
    def redundancy(self) -> int:
        """``|P| - rank`` — consistency rows available to the detector."""
        return self.num_paths - self.rank

    @property
    def is_full_column_rank(self) -> bool:
        """True when every link metric is identifiable (eq. 2 well posed)."""
        return self.rank == self.num_links

    # -- derived operators (each assembled once from the shared factors) --

    @cached_property
    def estimator(self) -> np.ndarray:
        """``R⁺`` — the measurement-to-estimate operator (|L| x |P|)."""
        return pinv_from_svd(*self._factors)

    @cached_property
    def column_space_projector(self) -> np.ndarray:
        """``P = U_r U_r^T`` with ``P y = R R⁺ y`` (|P| x |P|)."""
        u, _, _, rank = self._factors
        return u[:, :rank] @ u[:, :rank].T

    @cached_property
    def residual_projector(self) -> np.ndarray:
        """``I - R R⁺`` — its kernel is the eq. (23) detector's blind set."""
        return np.eye(self.num_paths) - self.column_space_projector

    @cached_property
    def nullspace(self) -> np.ndarray:
        """Orthonormal right-nullspace basis as columns (|L| x (|L|-rank))."""
        if self._matrix.size == 0:
            return np.eye(self.num_links)
        _, _, vt, rank = self._factors
        return vt[rank:].T.copy()

    # -- operations -------------------------------------------------------

    def estimate(self, observed: np.ndarray) -> np.ndarray:
        """Least-squares estimate ``x_hat = R⁺ y`` (eq. 2)."""
        y = check_finite_vector(observed, "observed", length=self.num_paths)
        return self.estimator @ y

    def predict(self, metrics: np.ndarray) -> np.ndarray:
        """Forward model ``y = R x`` (eq. 1)."""
        x = check_finite_vector(metrics, "metrics", length=self.num_links)
        return self._matrix @ x

    def residual(self, observed: np.ndarray) -> np.ndarray:
        """Per-path residual ``R x_hat - y`` of the observed vector.

        Computed as ``(P - I) y`` from the shared column-space projector —
        identical to estimating first and re-predicting, without the
        round trip through link space.
        """
        y = check_finite_vector(observed, "observed", length=self.num_paths)
        return self.column_space_projector @ y - y

    def residual_l1(self, observed: np.ndarray) -> float:
        """The detector statistic ``||R x_hat - y'||_1`` of Remark 4."""
        return float(np.abs(self.residual(observed)).sum())


@contract(routing_matrix=check_routing_matrix)
def estimator_operator(routing_matrix: np.ndarray) -> np.ndarray:
    """The measurement-to-estimate operator ``R⁺`` (|L| x |P|).

    Equals ``(R^T R)^{-1} R^T`` for full-column-rank ``R``; otherwise the
    minimum-norm least-squares operator.  Attack planners use the *same*
    operator to predict what tomography will conclude — the attacker and
    the operator share the public algorithm, only the attacker also knows
    the manipulation.  One-shot convenience over :class:`LinearSystem`;
    callers needing several operators of the same ``R`` should hold a
    :class:`LinearSystem` instead.
    """
    return LinearSystem(routing_matrix).estimator


@contract(routing_matrix=check_routing_matrix)
def measurement_residual(
    routing_matrix: np.ndarray, estimate: np.ndarray, observed: np.ndarray
) -> np.ndarray:
    """Per-path residual vector ``R x_hat - y'``.

    Entry ``i`` is how far path ``i``'s observed measurement is from the sum
    of the estimated link metrics along it — the per-path consistency check
    underlying eq. (23).
    """
    matrix = np.asarray(routing_matrix, dtype=float)
    x_hat = check_finite_vector(estimate, "estimate", length=matrix.shape[1])
    y = check_finite_vector(observed, "observed", length=matrix.shape[0])
    return matrix @ x_hat - y


def residual_l1_norm(
    routing_matrix: np.ndarray, estimate: np.ndarray, observed: np.ndarray
) -> float:
    """The detector statistic ``||R x_hat - y'||_1`` of Remark 4."""
    return float(np.abs(measurement_residual(routing_matrix, estimate, observed)).sum())
