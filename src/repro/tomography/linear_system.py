"""Linear-system utilities for the tomography model ``y = R x``.

The *estimator operator* is the matrix that maps measurements to estimates;
for the paper's least-squares estimator it is the Moore-Penrose
pseudo-inverse ``R⁺ = (R^T R)^{-1} R^T`` (eq. 2) when ``R`` has full column
rank.  The *measurement residual* ``R x_hat - y'`` is the quantity the
scapegoating detector thresholds (eq. 23 / Remark 4): honest measurements
lie in the column space of ``R`` (up to noise), manipulated ones generally
do not.

:class:`LinearSystem` is the shared kernel behind all of this.  The
numerics live in a pluggable backend (:mod:`repro.tomography.backends`):
the dense backend runs *one* economy SVD of ``R`` and derives every
operator from the same factors; the sparse backend stores ``R`` in CSR
form and solves estimates matrix-free (Gram Cholesky / LSMR) without ever
materialising ``R⁺``.  Which backend runs is resolved per system —
explicit ``backend=`` argument, then the ``REPRO_BACKEND`` environment
variable, then a size/density heuristic — so attack contexts, detectors,
the sweep cache and Monte-Carlo drivers pick the right kernel
transparently.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.sparse

from repro.analysis.contracts import check_routing_matrix, contract
from repro.exceptions import ValidationError
from repro.obs import core as obs
from repro.perf import instrumentation as perf
from repro.tomography.backends import (
    DenseBackend,
    SparseBackend,
    resolve_backend_name,
)
from repro.utils.linalg import DEFAULT_RANK_TOL
from repro.utils.validation import check_finite_vector

__all__ = [
    "LinearSystem",
    "estimator_operator",
    "measurement_residual",
    "residual_l1_norm",
]


class LinearSystem:
    """Shared kernel for the measurement system ``y = R x``.

    Parameters
    ----------
    routing_matrix:
        The 0/1 measurement matrix ``R`` (|P| x |L|) — a dense array or a
        ``scipy.sparse`` matrix.
    rank_tol:
        Relative singular-value cutoff for rank decisions (the library-wide
        :data:`repro.utils.linalg.DEFAULT_RANK_TOL` by default).
    backend:
        ``"dense"``, ``"sparse"``, ``"auto"`` or ``None``.  ``None`` defers
        to the ``REPRO_BACKEND`` environment variable and then the auto
        heuristic (sparse only for large, sparse matrices); see
        :func:`repro.tomography.backends.resolve_backend_name`.

    Factorisation is lazy: nothing numerical happens until the first
    derived quantity is requested, and each derived operator is then
    cached.  Under the dense backend this replaces three independent dense
    factorisations (estimator ``pinv``, projector ``pinv``, nullspace
    ``svd``) with one; under the sparse backend estimates and residuals
    never materialise a dense operator at all.
    """

    # NOTE: no 0/1 contract here — the kernel is deliberately generic (the
    # parity suite feeds it arbitrary dense matrices).  The routing-matrix
    # contract sits on the tomography entry points that *mean* ``R``.
    def __init__(
        self,
        routing_matrix: np.ndarray,
        *,
        rank_tol: float = DEFAULT_RANK_TOL,
        backend: str | None = None,
    ) -> None:
        from repro.routing.routing_matrix import density

        if scipy.sparse.issparse(routing_matrix):
            self._raw = routing_matrix.tocsr().astype(float)
            sparse_input = True
        else:
            matrix = np.asarray(routing_matrix, dtype=float)
            if matrix.ndim != 2:
                raise ValueError(f"routing matrix must be 2-D, got ndim={matrix.ndim}")
            self._raw = matrix
            sparse_input = False
        self._rank_tol = float(rank_tol)
        name = resolve_backend_name(
            backend,
            shape=self._raw.shape,
            density=density(self._raw),
            sparse_input=sparse_input,
        )
        self._backend = (
            SparseBackend(self) if name == "sparse" else DenseBackend(self)
        )

    # -- backend plumbing --------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Which numerical core serves this system (``dense``/``sparse``)."""
        return self._backend.name

    @property
    def rank_tol(self) -> float:
        """Relative singular-value cutoff shared by every rank decision."""
        return self._rank_tol

    @property
    def raw_matrix(self):
        """``R`` exactly as handed in (dense array or scipy sparse matrix)."""
        return self._raw

    @cached_property
    def _factorized(self) -> object:
        """Touch the backend's factorisation once, emitting the obs event.

        For the dense backend this is the shared SVD; for the sparse
        backend it is the Gram factorisation that certifies rank and
        powers multi-RHS solves.  Either way the event fires exactly once
        per system, tagged with the backend that did the work.
        """
        rank = (
            self._backend.factors[3]
            if self._backend.name == "dense"
            else self._backend.rank
        )
        if obs.is_enabled():
            obs.event(
                "linear_system_factorize",
                paths=self.num_paths,
                links=self.num_links,
                rank=rank,
                backend=self.backend_name,
                digest=self.digest,
            )
        return self._backend

    @cached_property
    def digest(self) -> str:
        """Canonical SHA-256 of ``R`` (the sweep engine's cache key).

        Two systems over value-equal matrices share the digest, so callers
        holding one kernel per digest (``repro.sweep``'s factorization
        cache) never factorise the same routing matrix twice.
        """
        from repro.obs.manifest import matrix_digest

        return matrix_digest(self.matrix)

    # -- factor export / import -------------------------------------------

    def export_factors(self) -> dict[str, np.ndarray] | None:
        """The dense SVD factors as a JSON-free array payload, or ``None``.

        Returns ``{"u", "s", "vt", "rank"}`` — exactly what
        :func:`repro.utils.linalg.compact_svd` produced — forcing the
        factorisation if it has not run yet.  Only the dense backend
        exports: the sparse backend's Gram/LSMR state is cheap to rebuild
        and exporting it would force the dense SVD it exists to avoid, so
        it returns ``None`` (callers skip persisting).  The payload is
        what :meth:`import_factors` and the sweep engine's cross-process
        factorization store consume.
        """
        if self.backend_name != "dense":
            return None
        u, s, vt, rank = self._factorized.factors
        return {
            "u": u,
            "s": s,
            "vt": vt,
            "rank": np.asarray(rank, dtype=np.int64),
        }

    def import_factors(self, payload: dict[str, np.ndarray]) -> bool:
        """Seed the dense backend with previously exported factors.

        Validates the factor shapes against this system's matrix and, on
        success, installs them as the backend's factorisation — the SVD
        never runs.  Returns ``False`` (imports nothing) when this system
        runs the sparse backend, when the factorisation already happened,
        or when the shapes do not belong to a matrix of this size; it
        never trusts the payload blindly.  Numerical *content* is the
        caller's contract — the sweep store keys payloads by the matrix
        digest, so a shape-compatible payload under the right digest is
        the right factorisation.
        """
        if self.backend_name != "dense" or "factors" in self._backend.__dict__:
            return False
        try:
            u = np.asarray(payload["u"], dtype=float)
            s = np.asarray(payload["s"], dtype=float)
            vt = np.asarray(payload["vt"], dtype=float)
            rank = int(np.asarray(payload["rank"]))
        except (KeyError, TypeError, ValueError):
            return False
        m, n = self._raw.shape
        k = min(m, n)
        # compact_svd shapes: economy ``u`` (m x k), but ``vt`` is always
        # the complete n x n right basis (its trailing rows span the
        # nullspace, which the economy form would truncate for m < n).
        if u.shape != (m, k) or s.shape != (k,) or vt.shape != (n, n):
            return False
        if not (0 <= rank <= k):
            return False
        # ``factors`` is a cached_property (non-data descriptor): writing
        # the instance attribute is exactly how it memoises itself.
        self._backend.factors = (u, s, vt, rank)
        return True

    # -- incremental evolution --------------------------------------------

    #: Whether the latest :meth:`evolve` seeded this system incrementally
    #: (``None`` on systems that were built cold, not evolved).
    evolved_incrementally: bool | None = None

    def evolve(
        self,
        *,
        add_rows: tuple | list = (),
        remove_indices: tuple | list = (),
    ) -> LinearSystem:
        """A new system with rows removed and appended — factors patched.

        ``remove_indices`` name rows of *this* system's matrix (unique,
        in range); ``add_rows`` are appended after the removals, in
        order.  The evolved system is a fresh :class:`LinearSystem` (new
        digest, same ``rank_tol``, same backend pinned), but its backend
        is seeded by rank-1 update/downdate of this system's factors
        whenever the incremental chain can be certified — the cold
        factorization then never runs.  Chains that cannot be certified
        (no cached factors yet, a degenerate downdate, a small-side
        orientation flip on the sparse backend) fall back transparently:
        the returned system simply factorizes cold on first use.

        The result's ``evolved_incrementally`` attribute records which
        path was taken; a ``system_evolve`` obs event is emitted either
        way.  This system is never mutated.
        """
        m, n = self._raw.shape
        removals = sorted({int(i) for i in remove_indices})
        if len(removals) != len(tuple(remove_indices)):
            raise ValidationError("remove_indices must be unique")
        if removals and not (0 <= removals[0] and removals[-1] < m):
            raise ValidationError(
                f"remove_indices must lie in [0, {m}), got {removals}"
            )
        added = [
            check_finite_vector(row, "added row", length=n) for row in add_rows
        ]
        if scipy.sparse.issparse(self._raw):
            keep = np.ones(m, dtype=bool)
            keep[removals] = False
            parts = [self._raw[keep]]
            if added:
                parts.append(scipy.sparse.csr_matrix(np.asarray(added)))
            new_raw = scipy.sparse.vstack(parts, format="csr")
        else:
            new_raw = np.delete(self._raw, removals, axis=0)
            if added:
                new_raw = np.vstack([new_raw, np.asarray(added)])
        new_system = LinearSystem(
            new_raw, rank_tol=self._rank_tol, backend=self.backend_name
        )
        with perf.stage("system_evolve"):
            perf.record_event("system_evolve")
            incremental = self._backend.seed_evolution(
                new_system._backend, removals, added
            )
        new_system.evolved_incrementally = incremental
        if obs.is_enabled():
            obs.event(
                "system_evolve",
                rows_removed=len(removals),
                rows_added=len(added),
                paths=new_system.num_paths,
                links=new_system.num_links,
                incremental=incremental,
                backend=new_system.backend_name,
            )
        return new_system

    # -- basic shape ------------------------------------------------------

    @cached_property
    def matrix(self) -> np.ndarray:
        """The routing matrix ``R`` as a dense array (treat as read-only)."""
        if scipy.sparse.issparse(self._raw):
            return np.asarray(self._raw.todense(), dtype=float)
        return self._raw

    @property
    def num_paths(self) -> int:
        """Number of measurement paths (rows of ``R``)."""
        return self._raw.shape[0]

    @property
    def num_links(self) -> int:
        """Number of links (columns of ``R``)."""
        return self._raw.shape[1]

    # -- rank structure ---------------------------------------------------

    @property
    def singular_values(self) -> np.ndarray:
        """The singular values of ``R`` (descending)."""
        return self._factorized.singular_values

    @property
    def rank(self) -> int:
        """Numerical rank of ``R`` under the shared cutoff."""
        return self._factorized.rank

    @property
    def redundancy(self) -> int:
        """``|P| - rank`` — consistency rows available to the detector."""
        return self.num_paths - self.rank

    @property
    def is_full_column_rank(self) -> bool:
        """True when every link metric is identifiable (eq. 2 well posed)."""
        return self.rank == self.num_links

    # -- derived operators (dense; assembled once, cached) ----------------

    @property
    def estimator(self) -> np.ndarray:
        """``R⁺`` — the measurement-to-estimate operator (|L| x |P|).

        Dense by construction; under the sparse backend prefer
        :meth:`estimate`/:meth:`estimator_columns`, which never build it.
        """
        return self._factorized.estimator

    @property
    def column_space_projector(self) -> np.ndarray:
        """``P = U_r U_r^T`` with ``P y = R R⁺ y`` (|P| x |P|)."""
        return self._factorized.column_space_projector

    @property
    def residual_projector(self) -> np.ndarray:
        """``I - R R⁺`` — its kernel is the eq. (23) detector's blind set."""
        return self._factorized.residual_projector

    @property
    def nullspace(self) -> np.ndarray:
        """Orthonormal right-nullspace basis as columns (|L| x (|L|-rank))."""
        return self._factorized.nullspace

    def estimator_columns(self, cols: np.ndarray) -> np.ndarray:
        """Columns ``R⁺[:, cols]`` (|L| x k) without forming all of ``R⁺``.

        The dense backend slices its cached estimator; the sparse backend
        solves one batched system over the corresponding identity columns.
        Attack planners that only touch the support columns (Constraint 1)
        should prefer this over :attr:`estimator`.
        """
        return self._factorized.estimator_columns(np.asarray(cols, dtype=int))

    def residual_projector_columns(self, cols: np.ndarray) -> np.ndarray:
        """Columns ``(I - R R⁺)[:, cols]`` (|P| x k), matrix-free when sparse."""
        return self._factorized.residual_projector_columns(
            np.asarray(cols, dtype=int)
        )

    # -- operations -------------------------------------------------------

    def estimate(self, observed: np.ndarray) -> np.ndarray:
        """Least-squares estimate ``x_hat = R⁺ y`` (eq. 2)."""
        y = check_finite_vector(observed, "observed", length=self.num_paths)
        return self._factorized.estimate(y)

    def estimate_many(self, observed: np.ndarray) -> np.ndarray:
        """Column-wise estimates of a measurement block (|P| x k -> |L| x k).

        One multi-RHS solve — a single GEMM on the dense backend, one
        batched Gram solve on the sparse backend — so Monte-Carlo chunks
        cost one kernel call instead of a Python loop of matvecs.
        """
        block = np.asarray(observed, dtype=float)
        if block.ndim == 1:
            return self.estimate(block)
        if block.ndim != 2 or block.shape[0] != self.num_paths:
            raise ValueError(
                f"expected a ({self.num_paths}, k) measurement block, "
                f"got shape {block.shape}"
            )
        if not np.all(np.isfinite(block)):
            raise ValueError("measurement block must be finite")
        return self._factorized.estimate_many(block)

    def regularized_estimate(self, observed: np.ndarray, lam: float) -> np.ndarray:
        """Tikhonov estimate ``(R^T R + lam I)^{-1} R^T y`` (``lam > 0``).

        The backend seam for ridge / Bayesian-MAP estimators: the dense
        backend assembles the regularized operator from the shared SVD
        factors, the sparse backend runs a Cholesky of the shifted
        small-side Gram — neither opens a second factorisation path.
        """
        if not (lam > 0) or not np.isfinite(lam):
            raise ValueError(f"regularization lam must be positive and finite, got {lam}")
        y = check_finite_vector(observed, "observed", length=self.num_paths)
        return self._factorized.regularized_estimate_many(y, float(lam))

    def regularized_estimate_many(self, observed: np.ndarray, lam: float) -> np.ndarray:
        """Column-wise regularized estimates of a block (|P| x k -> |L| x k)."""
        block = np.asarray(observed, dtype=float)
        if block.ndim == 1:
            return self.regularized_estimate(block, lam)
        if not (lam > 0) or not np.isfinite(lam):
            raise ValueError(f"regularization lam must be positive and finite, got {lam}")
        if block.ndim != 2 or block.shape[0] != self.num_paths:
            raise ValueError(
                f"expected a ({self.num_paths}, k) measurement block, "
                f"got shape {block.shape}"
            )
        if not np.all(np.isfinite(block)):
            raise ValueError("measurement block must be finite")
        return self._factorized.regularized_estimate_many(block, float(lam))

    def predict(self, metrics: np.ndarray) -> np.ndarray:
        """Forward model ``y = R x`` (eq. 1)."""
        x = check_finite_vector(metrics, "metrics", length=self.num_links)
        return self._factorized.predict(x)

    def predict_many(self, metrics: np.ndarray) -> np.ndarray:
        """Forward model over a block of metric columns (|L| x k -> |P| x k)."""
        block = np.asarray(metrics, dtype=float)
        if block.ndim == 1:
            return self.predict(block)
        return self._factorized.predict_many(block)

    def residual(self, observed: np.ndarray) -> np.ndarray:
        """Per-path residual ``R x_hat - y`` of the observed vector.

        The dense backend computes ``(P - I) y`` from the shared
        column-space projector; the sparse backend estimates and
        re-predicts with two sparse matvecs — same vector, no dense
        projector.
        """
        y = check_finite_vector(observed, "observed", length=self.num_paths)
        return self._factorized.residual(y)

    def residual_many(self, observed: np.ndarray) -> np.ndarray:
        """Per-path residuals of a measurement block (|P| x k -> |P| x k)."""
        block = np.asarray(observed, dtype=float)
        if block.ndim == 1:
            return self.residual(block)
        if block.ndim != 2 or block.shape[0] != self.num_paths:
            raise ValueError(
                f"expected a ({self.num_paths}, k) measurement block, "
                f"got shape {block.shape}"
            )
        if not np.all(np.isfinite(block)):
            raise ValueError("measurement block must be finite")
        return self._factorized.residual_many(block)

    def residual_l1(self, observed: np.ndarray) -> float:
        """The detector statistic ``||R x_hat - y'||_1`` of Remark 4."""
        return float(np.abs(self.residual(observed)).sum())


@contract(routing_matrix=check_routing_matrix)
def estimator_operator(routing_matrix: np.ndarray) -> np.ndarray:
    """The measurement-to-estimate operator ``R⁺`` (|L| x |P|).

    Equals ``(R^T R)^{-1} R^T`` for full-column-rank ``R``; otherwise the
    minimum-norm least-squares operator.  Attack planners use the *same*
    operator to predict what tomography will conclude — the attacker and
    the operator share the public algorithm, only the attacker also knows
    the manipulation.  One-shot convenience over :class:`LinearSystem`;
    callers needing several operators of the same ``R`` should hold a
    :class:`LinearSystem` instead.
    """
    return LinearSystem(routing_matrix).estimator


@contract(routing_matrix=check_routing_matrix)
def measurement_residual(
    routing_matrix: np.ndarray, estimate: np.ndarray, observed: np.ndarray
) -> np.ndarray:
    """Per-path residual vector ``R x_hat - y'``.

    Entry ``i`` is how far path ``i``'s observed measurement is from the sum
    of the estimated link metrics along it — the per-path consistency check
    underlying eq. (23).
    """
    matrix = np.asarray(routing_matrix, dtype=float)
    x_hat = check_finite_vector(estimate, "estimate", length=matrix.shape[1])
    y = check_finite_vector(observed, "observed", length=matrix.shape[0])
    return matrix @ x_hat - y


def residual_l1_norm(
    routing_matrix: np.ndarray, estimate: np.ndarray, observed: np.ndarray
) -> float:
    """The detector statistic ``||R x_hat - y'||_1`` of Remark 4."""
    return float(np.abs(measurement_residual(routing_matrix, estimate, observed)).sum())
