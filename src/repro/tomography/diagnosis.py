"""Operator-facing diagnosis: estimates -> link states -> verdicts.

The end product of network tomography in the paper's setting is a list of
links flagged abnormal (candidates for failure recovery).  Scapegoating is
precisely an attack on this report: it makes the report finger innocent
links.  :func:`diagnose` packages the estimate, per-link states, and the
flagged sets so experiments can compare reports with and without attacks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.contracts import check_band_bounds, contract
from repro.metrics.states import LinkState, StateThresholds, classify_vector

__all__ = ["DiagnosisReport", "diagnose"]


@dataclass(frozen=True)
class DiagnosisReport:
    """What the operator concludes from one tomography round.

    Attributes
    ----------
    estimate:
        The estimated link-metric vector ``x_hat``.
    states:
        Per-link :class:`LinkState`, indexed by link index.
    abnormal, uncertain, normal:
        Link indices in each state (tuples, ascending).
    thresholds:
        The classification bounds used.
    """

    estimate: np.ndarray
    states: tuple[LinkState, ...]
    abnormal: tuple[int, ...]
    uncertain: tuple[int, ...]
    normal: tuple[int, ...]
    thresholds: StateThresholds

    def state_of(self, link_index: int) -> LinkState:
        """State of one link."""
        return self.states[link_index]

    def blames(self, link_indices) -> bool:
        """True when *every* given link is flagged abnormal.

        A chosen-victim scapegoating attack succeeded from the operator's
        perspective exactly when the report blames the victim set.
        """
        flagged = set(self.abnormal)
        indices = list(link_indices)
        return bool(indices) and all(index in flagged for index in indices)

    def summary(self) -> dict:
        """Counts per state plus the extreme estimates (for logs)."""
        return {
            "num_links": len(self.states),
            "abnormal": len(self.abnormal),
            "uncertain": len(self.uncertain),
            "normal": len(self.normal),
            "max_estimate": float(np.max(self.estimate)) if self.estimate.size else 0.0,
            "min_estimate": float(np.min(self.estimate)) if self.estimate.size else 0.0,
        }


@contract(thresholds=check_band_bounds)
def diagnose(estimate: np.ndarray, thresholds: StateThresholds) -> DiagnosisReport:
    """Classify an estimated metric vector into a :class:`DiagnosisReport`."""
    values = np.asarray(estimate, dtype=float)
    states = tuple(classify_vector(values, thresholds))
    abnormal = tuple(i for i, s in enumerate(states) if s is LinkState.ABNORMAL)
    uncertain = tuple(i for i, s in enumerate(states) if s is LinkState.UNCERTAIN)
    normal = tuple(i for i, s in enumerate(states) if s is LinkState.NORMAL)
    return DiagnosisReport(
        estimate=values.copy(),
        states=states,
        abnormal=abnormal,
        uncertain=uncertain,
        normal=normal,
        thresholds=thresholds,
    )
