"""The pluggable estimator zoo: registry-dispatched inversion families.

The paper fixes least-squares inversion (eq. 2) as the defender's
estimator, so every attack-success and detection number in this repro is
conditioned on one linear operator.  This module makes the inversion
step pluggable so the same attacks and detectors can be re-run against
genuinely different estimator families:

- ``ls`` — the paper's least squares, a thin delegate to
  :meth:`LinearSystem.estimate`.  Bit-identical to the historical path
  and the default everywhere.
- ``bayes-map`` — Bayesian maximum a posteriori under a Gaussian prior
  ``x ~ N(mu0, prior_var I)`` and Gaussian measurement noise
  ``N(0, noise_var I)`` (cf. Bayesian tomography, Pluch & Wakounig):
  the posterior mode solves the regularized normal equations
  ``x = mu0 + (R^T R + lam I)^{-1} R^T (y - R mu0)`` with
  ``lam = noise_var / prior_var``, computed through the backend seam
  (:meth:`LinearSystem.regularized_estimate`) so dense and sparse
  kernels agree and no second factorisation path exists (RP001).
- ``ridge`` — Tikhonov regularisation, the zero-mean special case of
  ``bayes-map`` parameterised directly by ``lam``.
- ``nnls`` — non-negative least squares (Lawson-Hanson), the physical
  constraint that link delays cannot be negative.
- ``l1`` — a nonnegative basis-pursuit / LASSO-style sparse decoder
  (cf. compressive-sensing tomography, FRANTIC): minimise
  ``1^T x + penalty * ||R x - y||_1`` over ``x >= 0``, solved as an LP
  on the persistent HiGHS bindings the attack LP engine already probes
  (:func:`repro.attacks.lp_engine.highs_bindings` — reused, not a scipy
  re-wrap).  On identifiable (full-column-rank) systems with consistent
  measurements it recovers the exact solution.

Dispatch is registry-based: :func:`resolve_estimator` resolves the
family with the precedence *explicit name > ``REPRO_ESTIMATOR``
environment knob > ``"ls"``*, mirroring the backend and LP-engine
conventions.  Detection thresholds are recalibrated per estimator with
:func:`calibrated_alpha` — biased estimators (ridge/MAP shrinkage, L1
sparsity) leave a nonzero residual even on honest measurements, and the
detector's alpha must absorb that bias before it can mean "manipulation
evidence".

The attack LP engine lives *above* this layer (attacks depend on
tomography, never the reverse), so the ``l1`` member imports the HiGHS
bindings function-locally at first solve.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from repro import config
from repro.exceptions import TomographyError, ValidationError
from repro.obs import core as obs
from repro.obs.manifest import config_digest
from repro.tomography.linear_system import LinearSystem
from repro.utils.validation import check_finite_vector

__all__ = [
    "ESTIMATOR_ENV_VAR",
    "BayesMapEstimator",
    "Estimator",
    "L1SparseEstimator",
    "LeastSquaresZooEstimator",
    "NonNegativeZooEstimator",
    "RidgeZooEstimator",
    "calibrated_alpha",
    "estimator_names",
    "register_estimator",
    "resolve_estimator",
]

#: Environment variable selecting the defender-side estimator family.
ESTIMATOR_ENV_VAR = "REPRO_ESTIMATOR"


@runtime_checkable
class Estimator(Protocol):
    """What every zoo member (and any external estimator) must expose."""

    name: str
    system: LinearSystem

    @property
    def params_digest(self) -> str: ...

    def estimate(self, observed: np.ndarray) -> np.ndarray: ...

    def estimate_batch(self, observed_block: np.ndarray) -> np.ndarray: ...


#: Registered estimator families, keyed by registry name.
_REGISTRY: dict[str, type] = {}


def register_estimator(name: str):
    """Class decorator adding an estimator family to the registry."""

    def decorate(cls):
        if name in _REGISTRY:
            raise ValidationError(f"estimator {name!r} is already registered")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def estimator_names() -> tuple[str, ...]:
    """The registered estimator names, sorted."""
    return tuple(sorted(_REGISTRY))


def resolve_estimator(
    name: str | None = None,
    *,
    system: LinearSystem | None = None,
    routing_matrix: np.ndarray | None = None,
    **params: object,
) -> "Estimator":
    """Build the estimator ``name`` over a shared kernel.

    Precedence mirrors the backend dispatch convention: an explicit
    ``name`` argument wins, then the ``REPRO_ESTIMATOR`` environment
    knob, then the bit-compatible default ``"ls"``.  Exactly one of
    ``system`` (a pre-factorised :class:`LinearSystem` — what detectors,
    attack contexts and the sweep cache pass) or ``routing_matrix`` must
    be given; extra keyword ``params`` go to the family's constructor.
    """
    if system is None:
        if routing_matrix is None:
            raise ValidationError(
                "resolve_estimator needs a system= or a routing_matrix="
            )
        system = LinearSystem(routing_matrix)
    elif routing_matrix is not None:
        raise ValidationError(
            "pass either system= or routing_matrix=, not both"
        )
    if name is None:
        name = config.get_str(ESTIMATOR_ENV_VAR)
    cls = _REGISTRY.get(name)
    if cls is None:
        raise ValidationError(
            f"unknown estimator {name!r}; choose from {estimator_names()}"
        )
    return cls(system, **params)


def calibrated_alpha(
    estimator: "Estimator",
    honest_measurements: np.ndarray,
    base_alpha: float = 200.0,
) -> float:
    """Detection threshold recalibrated for a (possibly biased) estimator.

    Least squares leaves a numerically-zero residual on honest
    measurements, so the paper's ``alpha`` measures manipulation evidence
    directly.  Shrinkage (ridge / Bayes-MAP) and sparsity (L1) estimators
    leave a *systematic* honest-round residual; thresholding their raw
    residual at the paper's alpha would conflate estimator bias with
    attack evidence.  The calibrated threshold is ``base_alpha`` plus the
    honest-round residual L1 of this estimator — the same head-room above
    the no-attack operating point for every family.
    """
    if base_alpha < 0:
        raise ValidationError(f"base_alpha must be non-negative, got {base_alpha}")
    y = check_finite_vector(
        honest_measurements, "honest_measurements", length=estimator.system.num_paths
    )
    x_hat = estimator.estimate(y)
    bias = float(np.abs(estimator.system.predict(x_hat) - y).sum())
    return float(base_alpha) + bias


class _ZooEstimator:
    """Shared plumbing: validation, the obs event, batch fallback."""

    name = ""

    def __init__(self, system: LinearSystem) -> None:
        if not isinstance(system, LinearSystem):
            raise ValidationError(
                "estimators are built over a LinearSystem kernel; "
                f"got {type(system).__name__}"
            )
        self.system = system

    def params(self) -> dict:
        """The family's effective parameters (JSON-safe)."""
        return {}

    @property
    def params_digest(self) -> str:
        """Canonical SHA-256 of (name, params) — the sweep cache key part."""
        return config_digest({"estimator": self.name, "params": self.params()})

    # -- the numerical core each family supplies ---------------------------

    def _solve(self, y: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _solve_batch(self, block: np.ndarray) -> np.ndarray:
        """Default batch path: looped single solves (vector families override)."""
        return np.stack(
            [self._solve(block[:, j]) for j in range(block.shape[1])], axis=1
        )

    # -- the Estimator protocol surface ------------------------------------

    def estimate(self, observed: np.ndarray) -> np.ndarray:
        """Estimate the link-metric vector from one measurement vector."""
        y = check_finite_vector(observed, "observed", length=self.system.num_paths)
        x_hat = self._solve(y)
        if obs.is_enabled():
            obs.event(
                "estimator_solve",
                estimator=self.name,
                batch=1,
                paths=self.system.num_paths,
                links=self.system.num_links,
            )
        return x_hat

    def estimate_batch(self, observed_block: np.ndarray) -> np.ndarray:
        """Column-wise estimates of a measurement block (|P| x k -> |L| x k).

        Verdict-identical to looping :meth:`estimate` over the columns;
        vectorised families (ls, bayes-map, ridge) pay one multi-RHS
        kernel call for the whole block.
        """
        block = np.asarray(observed_block, dtype=float)
        if block.ndim == 1:
            return self.estimate(block)
        if block.ndim != 2 or block.shape[0] != self.system.num_paths:
            raise ValidationError(
                f"expected a ({self.system.num_paths}, k) measurement block, "
                f"got shape {block.shape}"
            )
        if not np.all(np.isfinite(block)):
            raise ValidationError("measurement block must be finite")
        out = self._solve_batch(block)
        if obs.is_enabled():
            obs.event(
                "estimator_solve",
                estimator=self.name,
                batch=int(block.shape[1]),
                paths=self.system.num_paths,
                links=self.system.num_links,
            )
        return out


@register_estimator("ls")
class LeastSquaresZooEstimator(_ZooEstimator):
    """The paper's estimator (eq. 2) — a delegate to the shared kernel.

    Bit-identical to calling :meth:`LinearSystem.estimate` directly (the
    same cached operator is applied), so threading the zoo through the
    detector and attack pipelines changes nothing under the default.
    """

    def _solve(self, y: np.ndarray) -> np.ndarray:
        # ``estimate`` already validated y; going straight to the shared
        # backend skips LinearSystem.estimate's identical re-validation,
        # keeping the zoo's default path within noise of the raw kernel.
        return self.system._factorized.estimate(y)

    def _solve_batch(self, block: np.ndarray) -> np.ndarray:
        return self.system._factorized.estimate_many(block)


@register_estimator("bayes-map")
class BayesMapEstimator(_ZooEstimator):
    """Gaussian-prior MAP estimator (regularized normal equations).

    Parameters
    ----------
    prior_var:
        Prior variance of every link metric (ms^2).  Larger = weaker
        prior; as ``prior_var -> inf`` the MAP estimate converges to
        least squares.
    noise_var:
        Measurement-noise variance (ms^2).  Only the ratio
        ``lam = noise_var / prior_var`` enters the estimate.
    prior_mean:
        Prior mean ``mu0`` — a scalar (broadcast over links) or a
        length-|L| vector.  The paper's routine delays are 1-20 ms, so a
        mean in that band encodes "links are healthy unless the data
        insists otherwise".
    """

    def __init__(
        self,
        system: LinearSystem,
        *,
        prior_var: float = 1e4,
        noise_var: float = 1.0,
        prior_mean: float | np.ndarray = 0.0,
    ) -> None:
        super().__init__(system)
        if not (prior_var > 0) or not np.isfinite(prior_var):
            raise TomographyError(
                f"prior_var must be positive and finite, got {prior_var}"
            )
        if not (noise_var > 0) or not np.isfinite(noise_var):
            raise TomographyError(
                f"noise_var must be positive and finite, got {noise_var}"
            )
        self.prior_var = float(prior_var)
        self.noise_var = float(noise_var)
        self.lam = self.noise_var / self.prior_var
        mean = np.asarray(prior_mean, dtype=float)
        if mean.ndim == 0:
            mean = np.full(system.num_links, float(mean))
        self.prior_mean = check_finite_vector(
            mean, "prior_mean", length=system.num_links
        )
        # ``R mu0`` is fixed per estimator; every solve shifts by it once.
        self._prior_prediction = (
            self.system.predict(self.prior_mean)
            if np.any(self.prior_mean)
            else np.zeros(system.num_paths)
        )

    def params(self) -> dict:
        return {
            "prior_var": self.prior_var,
            "noise_var": self.noise_var,
            "prior_mean": [float(v) for v in self.prior_mean],
        }

    def _solve(self, y: np.ndarray) -> np.ndarray:
        shifted = y - self._prior_prediction
        return self.prior_mean + self.system.regularized_estimate(shifted, self.lam)

    def _solve_batch(self, block: np.ndarray) -> np.ndarray:
        shifted = block - self._prior_prediction[:, None]
        return self.prior_mean[:, None] + self.system.regularized_estimate_many(
            shifted, self.lam
        )


@register_estimator("ridge")
class RidgeZooEstimator(BayesMapEstimator):
    """Tikhonov regularisation — zero-mean Bayes-MAP parameterised by ``lam``."""

    def __init__(self, system: LinearSystem, *, lam: float = 1e-6) -> None:
        if not (lam > 0) or not np.isfinite(lam):
            raise TomographyError(f"ridge parameter must be positive, got {lam}")
        super().__init__(system, prior_var=1.0 / float(lam), noise_var=1.0)

    def params(self) -> dict:
        return {"lam": self.lam}


@register_estimator("nnls")
class NonNegativeZooEstimator(_ZooEstimator):
    """Non-negative least squares (Lawson-Hanson active set)."""

    def _solve(self, y: np.ndarray) -> np.ndarray:
        from scipy.optimize import nnls

        solution, _ = nnls(self.system.matrix, y)
        return solution


@register_estimator("l1")
class L1SparseEstimator(_ZooEstimator):
    """Nonnegative basis-pursuit decoder on the warm-started HiGHS engine.

    Solves, per measurement vector ``y``::

        min  1^T x + penalty * 1^T (r+ + r-)
        s.t. R x - r+ + r- = y,   x, r+, r- >= 0

    ``r+ - r-`` is the signed residual, so the objective is the L1-sparse
    recovery ``min ||x||_1 + penalty * ||R x - y||_1`` over nonnegative
    metrics — always feasible, and exact (residual zero, minimum-L1
    ``x``) whenever ``y`` is consistent and the penalty dominates.  The
    model is built once on the same HiGHS bindings the manipulation-LP
    engine probes; each solve only edits the equality rows' bounds to the
    new ``y`` and re-runs with the previous basis (the
    :class:`~repro.attacks.lp_engine.PersistentLpSolver` idiom, applied
    to decoding instead of attacking).
    """

    def __init__(self, system: LinearSystem, *, penalty: float = 1e6) -> None:
        super().__init__(system)
        if not (penalty > 0) or not np.isfinite(penalty):
            raise TomographyError(
                f"residual penalty must be positive and finite, got {penalty}"
            )
        self.penalty = float(penalty)
        self._model = None
        self._bindings = None
        self.solves = 0

    def params(self) -> dict:
        return {"penalty": self.penalty}

    def _build_model(self):
        # The LP engine sits in the attacks layer, above tomography; the
        # import is function-local so the layering (RP006) holds — the
        # zoo only borrows the bindings probe, no attack semantics.
        from repro.attacks.lp_engine import highs_bindings

        hb = highs_bindings()
        if hb is None:
            raise TomographyError(
                "the l1 estimator needs HiGHS bindings (install highspy, or "
                "scipy >= 1.15 which vendors them)"
            )
        import scipy.sparse

        m, n = self.system.num_paths, self.system.num_links
        matrix = scipy.sparse.hstack(
            [
                scipy.sparse.csr_matrix(self.system.matrix),
                -scipy.sparse.identity(m, format="csr"),
                scipy.sparse.identity(m, format="csr"),
            ],
            format="csr",
        )
        lp = hb.HighsLp()
        lp.num_col_ = n + 2 * m
        lp.num_row_ = m
        lp.col_cost_ = np.concatenate(
            [np.ones(n), np.full(2 * m, self.penalty)]
        )
        lp.col_lower_ = np.zeros(n + 2 * m)
        lp.col_upper_ = np.full(n + 2 * m, hb.infinity)
        lp.row_lower_ = np.zeros(m)
        lp.row_upper_ = np.zeros(m)
        lp.a_matrix_.format_ = hb.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = matrix.indptr.astype(np.int64)
        lp.a_matrix_.index_ = matrix.indices.astype(np.int64)
        lp.a_matrix_.value_ = matrix.data.astype(float)
        model = hb.Highs()
        model.setOptionValue("output_flag", False)
        model.setOptionValue("threads", 1)
        model.passModel(lp)
        self._bindings = hb
        self._model = model

    def _solve(self, y: np.ndarray) -> np.ndarray:
        if self._model is None:
            self._build_model()
        hb, model = self._bindings, self._model
        for i, value in enumerate(np.asarray(y, dtype=float)):
            model.changeRowBounds(i, float(value), float(value))
        model.run()
        self.solves += 1
        status = model.getModelStatus()
        if status != hb.HighsModelStatus.kOptimal:
            raise TomographyError(
                "l1 estimator LP did not reach optimality: "
                f"{model.modelStatusToString(status)}"
            )
        values = np.array(model.getSolution().col_value, dtype=float)
        return values[: self.system.num_links]
