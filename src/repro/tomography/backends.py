"""Pluggable linear-algebra backends for :class:`LinearSystem`.

The measurement matrix ``R`` of eq. (1) is an extremely sparse 0/1
path-link incidence matrix, yet the original kernel materialised dense
operators (``R⁺``, the projectors) from one dense SVD.  That is the right
call at Fig.-1 scale and caps out quickly on ISP-scale topologies.  This
module supplies two interchangeable numerical cores:

- :class:`DenseBackend` — the historical dense path: one
  :func:`repro.utils.linalg.compact_svd`, every derived operator assembled
  from the shared factors.  Bit-identical to the pre-backend kernel.
- :class:`SparseBackend` — stores ``R`` as ``scipy.sparse.csr_matrix`` and
  never materialises ``R⁺``.  Estimates are solved matrix-free: a
  Cholesky factorisation of the *smaller-side* Gram matrix
  (``R^T R`` when tall, ``R R^T`` when wide) with iterative refinement
  when the small side has full rank, and LSMR (min-norm least squares)
  otherwise.  Residuals are two sparse matvecs (``R x_hat - y``) instead
  of a dense ``(I - R R⁺)`` projector.  Rank queries use the Gram
  spectrum with a certified decision rule; spectra too ambiguous to
  certify fall back to the dense factors, so rank decisions never
  silently disagree with the library-wide cutoff convention.

Backend choice is resolved by :func:`resolve_backend_name` with the
precedence *explicit argument > ``REPRO_BACKEND`` environment variable >
auto heuristic*.  The heuristic picks sparse only when the matrix is
large (``m * n >= 65536``) and sparse (density <= 0.25) — exactly the
regime where the dense SVD dominates end-to-end sweep time.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np
import scipy.linalg
import scipy.sparse
from scipy.sparse.linalg import lsmr

from repro import config
from repro.exceptions import ValidationError
from repro.perf import instrumentation as perf
from repro.utils.linalg import compact_svd, pinv_from_svd
from repro.utils.updates import (
    cholesky_append,
    cholesky_delete,
    cholesky_downdate,
    cholesky_replace,
    cholesky_update,
    svd_append_row,
    svd_remove_row,
)

__all__ = [
    "DenseBackend",
    "SparseBackend",
    "resolve_backend_name",
    "AUTO_SIZE_THRESHOLD",
    "AUTO_DENSITY_THRESHOLD",
]

#: ``m * n`` at or above which the auto heuristic considers going sparse.
AUTO_SIZE_THRESHOLD = 65536

#: Density at or below which the auto heuristic considers going sparse.
AUTO_DENSITY_THRESHOLD = 0.25

#: Environment variable overriding the auto dispatch (``dense``/``sparse``/``auto``).
BACKEND_ENV_VAR = "REPRO_BACKEND"

_BACKEND_NAMES = ("dense", "sparse", "auto")

#: LSMR stopping tolerances — far below the library parity tolerance so
#: iterative estimates agree with the dense pseudo-inverse to <= 1e-8.
_LSMR_TOL = 1e-13

#: Iterative-refinement passes after a Gram or LSMR solve.  Normal
#: equations square the condition number; one or two refinement steps
#: recover the accuracy of a backward-stable direct solve.
_REFINE_STEPS = 2

#: Relative residual floor below which further refinement is pure
#: roundoff churn and the loop exits early.
_REFINE_ATOL = 64.0 * np.finfo(float).eps


def _memoised_columns(memo, kind, cols, build):
    """Column-slice memo shared by both backends.

    LP base blocks, warm-started engine models and spliced override rows
    all consume the same ``Q[:, support]`` / ``C[:, support]`` blocks;
    one sweep grid point may ask for them several times (solver cache
    key miss, per-strategy contexts on a shared kernel).  On the sparse
    backend each build is a batched matrix-free solve, so repeats are
    worth remembering.  Keys are the requested column tuple — distinct
    support sets coexist — and the cached block is returned as-is; the
    LP layer never mutates these blocks.
    """
    key = (kind, tuple(int(c) for c in np.asarray(cols, dtype=int)))
    block = memo.get(key)
    if block is None:
        block = build(np.asarray(cols, dtype=int))
        memo[key] = block
    return block


def resolve_backend_name(
    requested: str | None,
    *,
    shape: tuple[int, int],
    density: float,
    sparse_input: bool = False,
) -> str:
    """Resolve ``dense``/``sparse`` from request, environment and heuristic.

    Precedence: explicit ``requested`` argument, then the
    ``REPRO_BACKEND`` environment variable, then the auto heuristic
    (sparse iff the matrix is both large and sparse, or the caller handed
    us an already-sparse matrix).  ``"auto"`` at either override level
    falls through to the heuristic.
    """
    choice = requested
    if choice is None:
        choice = config.raw(BACKEND_ENV_VAR) or "auto"
    if choice not in _BACKEND_NAMES:
        raise ValidationError(
            f"unknown backend {choice!r}; choose from {_BACKEND_NAMES}"
        )
    if choice != "auto":
        return choice
    if sparse_input:
        return "sparse"
    m, n = shape
    if m * n >= AUTO_SIZE_THRESHOLD and density <= AUTO_DENSITY_THRESHOLD:
        return "sparse"
    return "dense"


def _certified_rank(
    s: np.ndarray, shape: tuple[int, int], rank_tol: float
) -> int | None:
    """Rank under the shared cutoff, or ``None`` when not certifiable.

    Incrementally updated singular values carry more rounding error than
    a cold SVD's, so the plain cutoff cannot be trusted near the
    boundary.  The decision mirrors :class:`SparseBackend`'s certified
    spectrum rule: every singular value must sit a factor of 4 away from
    the decision threshold (itself floored at the update noise level);
    ambiguous spectra return ``None`` and the caller refactorizes cold.
    """
    k = s.shape[0]
    if k == 0:
        return 0
    s_max = float(s[0])
    if s_max == 0.0:
        return 0
    m, n = shape
    cutoff = rank_tol * max(m, n) * s_max
    noise = s_max * np.sqrt(64.0 * k * np.finfo(float).eps)
    threshold = max(cutoff, 8.0 * noise)
    clear_above = s >= 4.0 * threshold
    clear_below = s <= threshold / 4.0
    if bool(np.all(clear_above | clear_below)):
        return int(np.count_nonzero(clear_above))
    return None


class DenseBackend:
    """The historical dense kernel: one SVD, dense derived operators.

    ``owner`` is the :class:`~repro.tomography.linear_system.LinearSystem`
    this backend serves; it provides the dense matrix and the rank
    tolerance.  Every quantity here is assembled from the one shared
    :func:`compact_svd` factorisation, exactly as before the backend
    split — existing results are bit-identical.
    """

    name = "dense"

    def __init__(self, owner) -> None:
        self._owner = owner
        self._column_memo: dict[tuple, np.ndarray] = {}

    @cached_property
    def factors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """``(u, s, vt, rank)`` — the one factorisation everything shares."""
        return compact_svd(self._owner.matrix, rank_tol=self._owner.rank_tol)

    @property
    def rank(self) -> int:
        return self.factors[3]

    @property
    def singular_values(self) -> np.ndarray:
        return self.factors[1]

    @cached_property
    def estimator(self) -> np.ndarray:
        """``R⁺`` (|L| x |P|), assembled from the shared factors."""
        return pinv_from_svd(*self.factors)

    @cached_property
    def column_space_projector(self) -> np.ndarray:
        u, _, _, rank = self.factors
        return u[:, :rank] @ u[:, :rank].T

    @cached_property
    def residual_projector(self) -> np.ndarray:
        return np.eye(self._owner.num_paths) - self.column_space_projector

    @cached_property
    def nullspace(self) -> np.ndarray:
        if self._owner.matrix.size == 0:
            return np.eye(self._owner.num_links)
        _, _, vt, rank = self.factors
        return vt[rank:].T.copy()

    def estimate(self, y: np.ndarray) -> np.ndarray:
        return self.estimator @ y

    def estimate_many(self, ys: np.ndarray) -> np.ndarray:
        """Multi-RHS estimate: one GEMM for a whole chunk of trials."""
        return self.estimator @ ys

    def regularized_estimate_many(self, ys: np.ndarray, lam: float) -> np.ndarray:
        """Tikhonov solve ``(R^T R + lam I)^{-1} R^T y`` off the shared SVD.

        With ``R = U S V^T`` the regularized operator is
        ``V diag(s / (s^2 + lam)) U^T`` — assembled from the one cached
        factorisation, no second factorisation path (RP001).  Handles 1-D
        vectors and (|P| x k) blocks alike; ``lam -> 0`` recovers the
        pseudo-inverse (zero singular values contribute nothing either
        way).
        """
        u, s, vt, _ = self.factors
        k = s.shape[0]
        coef = s / (s * s + float(lam))
        uty = u.T @ np.asarray(ys, dtype=float)
        scaled = coef * uty if uty.ndim == 1 else coef[:, None] * uty
        return vt[:k].T @ scaled

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self._owner.matrix @ x

    def predict_many(self, xs: np.ndarray) -> np.ndarray:
        return self._owner.matrix @ xs

    def residual(self, y: np.ndarray) -> np.ndarray:
        return self.column_space_projector @ y - y

    def residual_many(self, ys: np.ndarray) -> np.ndarray:
        return self.column_space_projector @ ys - ys

    def estimator_columns(self, cols: np.ndarray) -> np.ndarray:
        return _memoised_columns(
            self._column_memo, "estimator", cols, lambda c: self.estimator[:, c]
        )

    def residual_projector_columns(self, cols: np.ndarray) -> np.ndarray:
        return _memoised_columns(
            self._column_memo,
            "residual",
            cols,
            lambda c: self.residual_projector[:, c],
        )

    # -- incremental evolution (LinearSystem.evolve seam) ------------------

    def update_path(
        self, row: np.ndarray, *, state: tuple | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Factors with ``row`` appended (Brand-style rank-1 SVD update).

        ``state`` is an ``(u, s, vt)`` triple to evolve from; by default
        the backend's own cached factors.  The returned triple follows
        the same convention and can be chained through further updates.
        """
        u, s, vt = state if state is not None else self.factors[:3]
        return svd_append_row(u, s, vt, np.asarray(row, dtype=float))

    def downdate_path(
        self, index: int, *, state: tuple | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Factors with row ``index`` removed, or ``None`` (refactorize)."""
        u, s, vt = state if state is not None else self.factors[:3]
        return svd_remove_row(u, s, vt, int(index))

    def seed_evolution(self, target, remove_indices, add_rows) -> bool:
        """Install incrementally evolved factors into ``target``.

        ``target`` is the fresh backend of the evolved
        :class:`~repro.tomography.linear_system.LinearSystem`; on success
        its ``factors`` cache is pre-seeded so the cold SVD never runs.
        Returns ``False`` — leaving ``target`` untouched — whenever the
        incremental chain cannot be certified: no cached factors to
        evolve from, an uncertifiable downdate or rank decision, or a
        reconstruction/orthonormality probe outside tolerance.
        """
        if not isinstance(target, DenseBackend):
            return False
        if "factors" not in self.__dict__:
            return False
        if not remove_indices and not add_rows:
            target.factors = self.factors
            return True
        if self._owner.num_links == 0:
            return False
        state = self.factors[:3]
        for index in sorted(remove_indices, reverse=True):
            state = self.downdate_path(index, state=state)
            if state is None:
                return False
        for row in add_rows:
            state = self.update_path(row, state=state)
        u, s, vt = state
        rank = _certified_rank(
            s, (u.shape[0], vt.shape[1]), self._owner.rank_tol
        )
        if rank is None or not self._certify_factors(target, u, s, vt):
            return False
        target.factors = (u, s, vt, rank)
        return True

    #: Certification threshold for evolved SVD factors.  The estimate
    #: parity contract is 1e-8, but pseudo-inverse amplification can
    #: inflate factor drift by the condition number, so the factors must
    #: be certified orders of magnitude tighter.  Healthy update chains
    #: drift ~1e-14 per epoch; degenerate downdates (a removed row nearly
    #: parallel to the retained subspace) land around 1e-9 and must fall
    #: back to a cold factorization.
    _CERT_TOL = 1e-12

    def _certify_factors(self, target, u, s, vt) -> bool:
        """Probe the evolved factors against the evolved matrix.

        Cheap checks — reconstruction ``M v = U S V^T v`` on two
        deterministic probe vectors (out-of-phase, so a drift direction
        orthogonal to one probe still excites the other), and
        orthonormality of both bases — bound the error the incremental
        chain accumulated.  Any failure routes the target to a cold
        factorization.
        """
        matrix = target._owner.matrix
        m, k = u.shape
        n = vt.shape[1]
        grid = np.arange(n, dtype=float)
        for probe in (np.cos(grid), np.sin(grid + 0.5)):
            expected = matrix @ probe
            rebuilt = u @ (s * (vt[:k] @ probe))
            scale = max(1.0, float(np.abs(expected).max()) if m else 1.0)
            if float(np.abs(rebuilt - expected).max(initial=0.0)) > self._CERT_TOL * scale:
                return False
        if k:
            w = np.cos(np.arange(k, dtype=float))
            drift = u.T @ (u @ w) - w
            if float(np.abs(drift).max()) > self._CERT_TOL * max(
                1.0, float(np.abs(w).max())
            ):
                return False
        z = np.cos(grid)
        drift = vt.T @ (vt @ z) - z
        if float(np.abs(drift).max(initial=0.0)) > self._CERT_TOL * max(
            1.0, float(np.abs(z).max(initial=0.0))
        ):
            return False
        return True


class SparseBackend:
    """Matrix-free sparse kernel: CSR storage, Gram/LSMR solves.

    Estimates and residuals never materialise ``R⁺`` or the dense
    projectors.  Quantities that are irreducibly dense (the full
    estimator matrix, the projectors, a nullspace basis, singular
    values) fall back to a lazily constructed :class:`DenseBackend` over
    the same matrix, so requesting them is always *correct* — merely not
    matrix-free — and parity with the dense backend is exact for them.
    """

    name = "sparse"

    def __init__(self, owner) -> None:
        self._owner = owner
        self._column_memo: dict[tuple, np.ndarray] = {}
        self._regularized_factors: dict[float, tuple] = {}

    # -- storage ----------------------------------------------------------

    @cached_property
    def matrix(self) -> scipy.sparse.csr_matrix:
        """``R`` in CSR form (built once from whichever form the owner has)."""
        raw = self._owner.raw_matrix
        if scipy.sparse.issparse(raw):
            return scipy.sparse.csr_matrix(raw, dtype=float)
        return scipy.sparse.csr_matrix(np.asarray(raw, dtype=float))

    @cached_property
    def matrix_t(self) -> scipy.sparse.csr_matrix:
        """``R^T`` in CSR form (cached — transposition is not free at scale)."""
        return self.matrix.T.tocsr()

    @cached_property
    def _dense_fallback(self) -> DenseBackend:
        """Dense twin used for irreducibly dense quantities."""
        return DenseBackend(self._owner)

    # -- small-side Gram factorisation ------------------------------------

    @cached_property
    def _gram(self) -> np.ndarray:
        """The smaller-side Gram matrix, densified (k x k, k = min(m, n))."""
        m, n = self.matrix.shape
        if m >= n:
            gram = self.matrix_t @ self.matrix
        else:
            gram = self.matrix @ self.matrix_t
        return np.asarray(gram.todense(), dtype=float)

    @cached_property
    def _cholesky(self) -> tuple | None:
        """Certified Cholesky factor of the Gram, or None when deficient.

        The certificate is a verification solve: reconstruct a known
        vector through the factorisation and require the round trip to be
        accurate.  A near-singular Gram that Cholesky happens to survive
        fails the round trip and is treated as rank-deficient, routing
        estimates through LSMR instead of an unstable direct solve.
        """
        gram = self._gram
        k = gram.shape[0]
        if k == 0:
            return None
        perf.record_event("gram_cholesky")
        try:
            factor = scipy.linalg.cho_factor(gram, check_finite=False)
        except scipy.linalg.LinAlgError:
            return None
        diag = np.abs(np.diagonal(factor[0]))
        if diag.min() <= 1e-12 * max(diag.max(), 1.0):
            return None
        probe = np.cos(np.arange(k, dtype=float))
        rhs = gram @ probe
        back = scipy.linalg.cho_solve(factor, rhs, check_finite=False)
        scale = float(np.abs(probe).max()) or 1.0
        if float(np.abs(back - probe).max()) > 1e-8 * scale:
            return None
        # Stored as a CLEAN, Fortran-ordered upper triangle: cho_factor
        # leaves garbage in the unused half, the rank-1 update kernels
        # require (and preserve) the clean form, and keeping the LAPACK
        # memory order lets every later cho_solve run copy-free.
        return (np.asfortranarray(np.triu(factor[0])), False)

    # -- rank -------------------------------------------------------------

    @cached_property
    def _rank(self) -> int:
        """Numerical rank under the shared cutoff, without a dense SVD.

        Full small-side rank is certified by the Gram Cholesky.  When the
        Gram is deficient, the rank is read off its eigenvalue spectrum,
        but only when every eigenvalue sits far from the decision
        threshold (a factor-4 spectral gap both ways); ambiguous spectra
        — where squaring the condition number could miscount — fall back
        to the exact dense factorisation.  Routing matrices have integer
        spectra whose zero singular values are exact, so the fallback is
        rare in practice.
        """
        m, n = self.matrix.shape
        k = min(m, n)
        if k == 0 or self.matrix.nnz == 0:
            return 0
        if self._cholesky is not None:
            return k
        perf.record_event("gram_eigh")
        lam = scipy.linalg.eigvalsh(self._gram)
        s = np.sqrt(np.clip(lam, 0.0, None))
        s_max = float(s[-1])
        if s_max == 0.0:
            return 0
        cutoff = self._owner.rank_tol * max(m, n) * s_max
        # Resolution floor of the Gram spectrum in singular-value units:
        # eigenvalues carry O(k * eps * lam_max) absolute error.
        noise = s_max * np.sqrt(64.0 * k * np.finfo(float).eps)
        threshold = max(cutoff, 8.0 * noise)
        clear_above = s >= 4.0 * threshold
        clear_below = s <= threshold / 4.0
        if bool(np.all(clear_above | clear_below)):
            return int(np.count_nonzero(clear_above))
        return self._dense_fallback.rank

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def singular_values(self) -> np.ndarray:
        """Exact singular values require the dense factors (documented cost)."""
        return self._dense_fallback.singular_values

    # -- solves -----------------------------------------------------------

    def _solve_gram_tall(self, ys: np.ndarray) -> np.ndarray:
        """Full column rank: ``x = (R^T R)^{-1} R^T y`` with refinement.

        Refinement residuals use two sparse matvecs instead of a dense
        Gram GEMV — same arithmetic, but ``O(nnz)`` instead of ``O(k^2)``
        traffic — and stop early once the residual hits roundoff.
        """
        factor = self._cholesky
        aty = self.matrix_t @ ys
        scale = max(1.0, float(np.abs(aty).max(initial=0.0)))
        x = scipy.linalg.cho_solve(factor, aty, check_finite=False)
        for _ in range(_REFINE_STEPS):
            residual = aty - self.matrix_t @ (self.matrix @ x)
            if float(np.abs(residual).max(initial=0.0)) <= _REFINE_ATOL * scale:
                break
            x = x + scipy.linalg.cho_solve(factor, residual, check_finite=False)
        return x

    def _solve_gram_wide(self, ys: np.ndarray) -> np.ndarray:
        """Full row rank: min-norm ``x = R^T (R R^T)^{-1} y`` with refinement."""
        factor = self._cholesky
        scale = max(1.0, float(np.abs(ys).max(initial=0.0)))
        z = scipy.linalg.cho_solve(factor, ys, check_finite=False)
        for _ in range(_REFINE_STEPS):
            residual = ys - self.matrix @ (self.matrix_t @ z)
            if float(np.abs(residual).max(initial=0.0)) <= _REFINE_ATOL * scale:
                break
            z = z + scipy.linalg.cho_solve(factor, residual, check_finite=False)
        return self.matrix_t @ z

    def _solve_lsmr(self, y: np.ndarray) -> np.ndarray:
        """Min-norm least squares via LSMR, with refinement passes.

        LSMR iterates in the row space of ``R`` from a zero start, so its
        limit — and every refinement correction — is the minimum-norm
        least-squares solution, matching ``R⁺ y`` for rank-deficient
        systems too.
        """
        matrix = self.matrix
        if matrix.nnz == 0:
            return np.zeros(matrix.shape[1])
        x = lsmr(matrix, y, atol=_LSMR_TOL, btol=_LSMR_TOL, conlim=1e14)[0]
        for _ in range(_REFINE_STEPS):
            residual = y - matrix @ x
            correction = lsmr(
                matrix, residual, atol=_LSMR_TOL, btol=_LSMR_TOL, conlim=1e14
            )[0]
            if not np.any(correction):
                break
            x = x + correction
        return x

    def estimate(self, y: np.ndarray) -> np.ndarray:
        perf.record_event("sparse_solve")
        if self._cholesky is not None:
            m, n = self.matrix.shape
            solve = self._solve_gram_tall if m >= n else self._solve_gram_wide
            return solve(np.asarray(y, dtype=float))
        return self._solve_lsmr(np.asarray(y, dtype=float))

    def estimate_many(self, ys: np.ndarray) -> np.ndarray:
        """Multi-RHS estimate: one Gram solve per chunk when certified.

        With a certified full-rank Gram the whole block is one LAPACK
        triangular multi-solve; otherwise each column runs LSMR (the
        min-norm path has no blocked equivalent in scipy).
        """
        block = np.asarray(ys, dtype=float)
        perf.record_event("sparse_solve")
        if block.ndim == 2 and block.shape[1] == 0:
            return np.zeros((self.matrix.shape[1], 0))
        if self._cholesky is not None:
            m, n = self.matrix.shape
            solve = self._solve_gram_tall if m >= n else self._solve_gram_wide
            return solve(block)
        if block.ndim == 1:
            return self._solve_lsmr(block)
        return np.stack(
            [self._solve_lsmr(block[:, j]) for j in range(block.shape[1])], axis=1
        )

    def _regularized_cholesky(self, lam: float) -> tuple:
        """Cholesky of the shifted small-side Gram ``G + lam I`` (memoised).

        ``lam > 0`` makes the shifted Gram positive definite whatever the
        rank of ``R``, so this factorisation always succeeds — no LSMR
        fallback needed on the regularized path.  One estimator instance
        solves many right-hand sides with a fixed ``lam``, hence the
        per-``lam`` memo.
        """
        factor = self._regularized_factors.get(float(lam))
        if factor is None:
            perf.record_event("gram_cholesky")
            shifted = self._gram + float(lam) * np.eye(self._gram.shape[0])
            factor = scipy.linalg.cho_factor(shifted, check_finite=False)
            self._regularized_factors[float(lam)] = factor
        return factor

    def regularized_estimate_many(self, ys: np.ndarray, lam: float) -> np.ndarray:
        """Tikhonov solve via the small-side Gram, matrix-free either way.

        Tall systems solve ``(R^T R + lam I) x = R^T y`` directly; wide
        systems use the push-through identity
        ``(R^T R + lam I)^{-1} R^T = R^T (R R^T + lam I)^{-1}`` so the
        smaller Gram serves both orientations.  Iterative refinement
        recovers direct-solve accuracy, matching the dense SVD path to
        well below the library parity tolerance.
        """
        block = np.asarray(ys, dtype=float)
        perf.record_event("sparse_solve")
        factor = self._regularized_cholesky(lam)
        shifted = self._gram + float(lam) * np.eye(self._gram.shape[0])
        m, n = self.matrix.shape
        if m >= n:
            rhs = self.matrix_t @ block
            x = scipy.linalg.cho_solve(factor, rhs, check_finite=False)
            for _ in range(_REFINE_STEPS):
                residual = rhs - shifted @ x
                x = x + scipy.linalg.cho_solve(factor, residual, check_finite=False)
            return x
        z = scipy.linalg.cho_solve(factor, block, check_finite=False)
        for _ in range(_REFINE_STEPS):
            residual = block - shifted @ z
            z = z + scipy.linalg.cho_solve(factor, residual, check_finite=False)
        return self.matrix_t @ z

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.matrix @ x

    def predict_many(self, xs: np.ndarray) -> np.ndarray:
        return self.matrix @ xs

    def residual(self, y: np.ndarray) -> np.ndarray:
        """``R x_hat - y`` via sparse matvecs — no dense projector."""
        y = np.asarray(y, dtype=float)
        return self.matrix @ self.estimate(y) - y

    def residual_many(self, ys: np.ndarray) -> np.ndarray:
        ys = np.asarray(ys, dtype=float)
        return self.matrix @ self.estimate_many(ys) - ys

    def estimator_columns(self, cols: np.ndarray) -> np.ndarray:
        """Selected columns of ``R⁺`` via batched unit-vector solves.

        ``R⁺[:, j] = R⁺ e_j``, so the requested columns are one
        :meth:`estimate_many` over the corresponding identity columns —
        the full dense pseudo-inverse is never formed.  Memoised per
        column set: repeat requests (shared solvers, warm engines) reuse
        the solved block.
        """
        return _memoised_columns(
            self._column_memo, "estimator", cols, self._estimator_columns_uncached
        )

    def _estimator_columns_uncached(self, cols: np.ndarray) -> np.ndarray:
        m = self._owner.num_paths
        if cols.size == 0:
            return np.zeros((self._owner.num_links, 0))
        unit = np.zeros((m, cols.size))
        unit[cols, np.arange(cols.size)] = 1.0
        return self.estimate_many(unit)

    def residual_projector_columns(self, cols: np.ndarray) -> np.ndarray:
        """Selected columns of ``I - R R⁺`` without the dense projector."""
        return _memoised_columns(
            self._column_memo, "residual", cols, self._residual_columns_uncached
        )

    def _residual_columns_uncached(self, cols: np.ndarray) -> np.ndarray:
        m = self._owner.num_paths
        if cols.size == 0:
            return np.zeros((m, 0))
        unit = np.zeros((m, cols.size))
        unit[cols, np.arange(cols.size)] = 1.0
        return unit - (self.matrix @ self.estimate_many(unit))

    # -- incremental evolution (LinearSystem.evolve seam) ------------------

    def _evolution_state(self) -> tuple | None:
        """``(matrix, chol)`` snapshot to evolve from, or ``None``.

        Only the certified-Cholesky regime evolves incrementally: the
        LSMR (rank-deficient) regime has no factor to patch, and a
        system that was never solved has nothing worth carrying over.
        The dense Gram is deliberately NOT part of the evolving state —
        every consumer (refinement, certification) works from sparse
        matvecs, so carrying the ``k x k`` Gram forward would only add a
        full-matrix copy per epoch.
        """
        if "_cholesky" not in self.__dict__:
            return None
        if self._cholesky is None:
            return None
        return (self.matrix, self._cholesky[0])

    def update_path(self, row: np.ndarray, *, state: tuple) -> tuple | None:
        """State with ``row`` appended: Cholesky patched in O(k^2).

        Tall systems rank-1-update the ``R^T R`` factor; wide systems
        border the ``R R^T`` factor by one dimension.  Returns ``None``
        when the append would flip the small side (wide -> tall) or the
        bordered factor is not safely positive.
        """
        matrix, chol = state
        m, n = matrix.shape
        row = np.asarray(row, dtype=float)
        new_matrix = scipy.sparse.vstack(
            [matrix, scipy.sparse.csr_matrix(row)], format="csr"
        )
        if m >= n:
            new_chol = cholesky_update(chol, row)
        else:
            if m + 1 >= n:
                return None
            b = matrix @ row
            d = float(row @ row)
            new_chol = cholesky_append(chol, b, d)
            if new_chol is None:
                return None
        return (new_matrix, new_chol)

    def downdate_path(self, index: int, *, state: tuple) -> tuple | None:
        """State with row ``index`` removed, or ``None`` (refactorize).

        Tall systems hyperbolically downdate the ``R^T R`` factor (which
        can fail when the removal exhausts a pivot); wide systems delete
        one dimension of the ``R R^T`` factor (always stable).
        """
        matrix, chol = state
        m, n = matrix.shape
        index = int(index)
        keep = np.ones(m, dtype=bool)
        keep[index] = False
        new_matrix = matrix[keep]
        if m >= n:
            if m - 1 < n:
                return None
            row = np.asarray(matrix[index].todense()).ravel()
            new_chol = cholesky_downdate(chol, row)
            if new_chol is None:
                return None
        else:
            new_chol = cholesky_delete(chol, index)
        return (new_matrix, new_chol)

    def replace_path(self, index: int, row: np.ndarray, *, state: tuple) -> tuple | None:
        """State with row ``index`` swapped for ``row`` — fused, or ``None``.

        The dominant churn pattern (one path fails, one recovers) would
        naively copy the full Cholesky factor twice; on memory-bound
        hosts those copies dwarf the O(k^2) arithmetic.  In the wide
        regime this fuses the delete and the border into one
        single-allocation pass (:func:`cholesky_replace`).  The tall
        regime is already rank-1, so it simply chains the downdate and
        update.
        """
        matrix, chol = state
        m, n = matrix.shape
        if m >= n:
            shrunk = self.downdate_path(index, state=state)
            if shrunk is None:
                return None
            return self.update_path(row, state=shrunk)
        index = int(index)
        row = np.asarray(row, dtype=float)
        keep = np.ones(m, dtype=bool)
        keep[index] = False
        kept = matrix[keep]
        new_matrix = scipy.sparse.vstack(
            [kept, scipy.sparse.csr_matrix(row)], format="csr"
        )
        b = kept @ row
        d = float(row @ row)
        new_chol = cholesky_replace(chol, index, b, d)
        if new_chol is None:
            return None
        return (new_matrix, new_chol)

    def seed_evolution(self, target, remove_indices, add_rows) -> bool:
        """Install an incrementally patched Cholesky into ``target``.

        On success the target backend's ``matrix``/``_cholesky`` caches
        are pre-seeded (full small-side rank, certified below), so its
        first estimate pays no ``cho_factor``.  Returns ``False`` for a
        cold rebuild whenever the chain leaves the certified regime: no
        factor to evolve from, a failed downdate, a small-side
        orientation flip, or a final round-trip probe out of tolerance.
        """
        if not isinstance(target, SparseBackend):
            return False
        state = self._evolution_state()
        if state is None:
            return False
        if not remove_indices and not add_rows:
            matrix, chol = state
            self._seed_target(target, matrix, chol)
            return True
        removals = sorted(remove_indices, reverse=True)
        additions = list(add_rows)
        if len(removals) == 1 and len(additions) == 1:
            state = self.replace_path(removals[0], additions[0], state=state)
            if state is None:
                return False
            removals, additions = [], []
        for index in removals:
            state = self.downdate_path(index, state=state)
            if state is None:
                return False
        for row in additions:
            state = self.update_path(row, state=state)
            if state is None:
                return False
        matrix, chol = state
        if not self._certify_state(matrix, chol):
            return False
        self._seed_target(target, matrix, chol)
        return True

    @staticmethod
    def _certify_state(matrix, chol) -> bool:
        """Probe the patched factor against the evolved matrix itself.

        The round trip ``chol^{-T} chol^{-1} (G p)`` — with ``G p``
        computed from two sparse matvecs against the TRUE evolved matrix,
        not any incrementally maintained copy — bounds the accumulated
        drift of the whole update chain in one shot; the pivot floor
        rejects factors that survived the chain numerically but are too
        ill-conditioned to solve with.
        """
        m, n = matrix.shape
        k = chol.shape[0]
        if k == 0 or min(m, n) != k:
            return False
        diag = np.abs(np.diagonal(chol))
        if diag.min() <= 1e-12 * max(diag.max(), 1.0):
            return False
        p = np.cos(np.arange(k, dtype=float))
        if m >= n:
            rhs = matrix.T @ (matrix @ p)
        else:
            rhs = matrix @ (matrix.T @ p)
        back = scipy.linalg.cho_solve((chol, False), rhs, check_finite=False)
        if float(np.abs(back - p).max()) > 1e-8 * max(1.0, float(np.abs(p).max())):
            return False
        return True

    @staticmethod
    def _seed_target(target, matrix, chol) -> None:
        """Pre-seed the target backend's caches with the evolved state."""
        target.matrix = matrix
        target.matrix_t = matrix.T.tocsr()
        target._cholesky = (chol, False)
        target._rank = min(matrix.shape)

    # -- irreducibly dense operators (exact dense fallback) ---------------

    @property
    def factors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        return self._dense_fallback.factors

    @property
    def estimator(self) -> np.ndarray:
        return self._dense_fallback.estimator

    @property
    def column_space_projector(self) -> np.ndarray:
        return self._dense_fallback.column_space_projector

    @property
    def residual_projector(self) -> np.ndarray:
        return self._dense_fallback.residual_projector

    @property
    def nullspace(self) -> np.ndarray:
        return self._dense_fallback.nullspace
