"""Network tomography: inverting ``y = R x`` into link-metric estimates.

- :mod:`~repro.tomography.linear_system` — residuals, consistency, and the
  estimator operator ``R⁺``;
- :mod:`~repro.tomography.estimators` — the paper's least-squares estimator
  (eq. 2) plus non-negative and ridge-regularised variants;
- :mod:`~repro.tomography.estimator_zoo` — the registry-dispatched estimator
  families (``ls`` / ``bayes-map`` / ``ridge`` / ``nnls`` / ``l1``) behind
  the ``REPRO_ESTIMATOR`` knob;
- :mod:`~repro.tomography.diagnosis` — turn an estimate into the link-state
  report a network operator would act on.
"""

from repro.tomography.estimator_zoo import (
    Estimator,
    calibrated_alpha,
    estimator_names,
    resolve_estimator,
)
from repro.tomography.estimators import (
    LeastSquaresEstimator,
    NonNegativeEstimator,
    RidgeEstimator,
)
from repro.tomography.linear_system import (
    LinearSystem,
    estimator_operator,
    measurement_residual,
    residual_l1_norm,
)
from repro.tomography.diagnosis import DiagnosisReport, diagnose

__all__ = [
    "Estimator",
    "LeastSquaresEstimator",
    "NonNegativeEstimator",
    "RidgeEstimator",
    "calibrated_alpha",
    "estimator_names",
    "resolve_estimator",
    "LinearSystem",
    "estimator_operator",
    "measurement_residual",
    "residual_l1_norm",
    "DiagnosisReport",
    "diagnose",
]
