"""Link states (Definition 1 of the paper).

A link is *normal* when its metric is below the lower bound ``b_l``,
*abnormal* above the upper bound ``b_u``, and *uncertain* in between.  The
two-state special case collapses the bounds (``b_l == b_u``).  The paper's
experiments use delays with ``b_l = 100 ms`` and ``b_u = 800 ms``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["LinkState", "StateThresholds", "classify_metric", "classify_vector"]


class LinkState(enum.Enum):
    """The three-valued link state space of Definition 1."""

    NORMAL = "normal"
    UNCERTAIN = "uncertain"
    ABNORMAL = "abnormal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class StateThresholds:
    """The classification bounds ``(b_l, b_u)``.

    ``lower`` is ``b_l`` (strictly below => normal) and ``upper`` is ``b_u``
    (strictly above => abnormal).  The paper's delay experiments use
    ``StateThresholds(100.0, 800.0)``, which is the default.
    """

    lower: float = 100.0
    upper: float = 800.0

    def __post_init__(self) -> None:
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise ValidationError("thresholds must be finite")
        if self.lower < 0:
            raise ValidationError(f"lower bound must be non-negative, got {self.lower}")
        if self.upper < self.lower:
            raise ValidationError(
                f"upper bound {self.upper} must be >= lower bound {self.lower}"
            )

    @classmethod
    def two_state(cls, bound: float) -> "StateThresholds":
        """The two-state special case ``b = b_l = b_u`` (Remark 1)."""
        return cls(lower=bound, upper=bound)

    @property
    def is_two_state(self) -> bool:
        """True when the uncertain band is the single point ``b_l == b_u``."""
        return self.lower == self.upper

    def classify(self, value: float) -> LinkState:
        """Classify one metric value per Definition 1."""
        if value < self.lower:
            return LinkState.NORMAL
        if value > self.upper:
            return LinkState.ABNORMAL
        return LinkState.UNCERTAIN


def classify_metric(value: float, thresholds: StateThresholds) -> LinkState:
    """Functional form of :meth:`StateThresholds.classify`."""
    return thresholds.classify(float(value))


def classify_vector(metrics: np.ndarray, thresholds: StateThresholds) -> list[LinkState]:
    """Classify every entry of a link-metric vector.

    Returns a list indexed by link index; experiment code summarises it
    with ``collections.Counter`` or by selecting abnormal indices.
    """
    values = np.asarray(metrics, dtype=float)
    if values.ndim != 1:
        raise ValidationError(f"metrics must be a 1-D vector, got ndim={values.ndim}")
    return [thresholds.classify(float(value)) for value in values]
