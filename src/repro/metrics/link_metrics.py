"""Ground-truth link metric generation and metric-domain conversions.

The paper's experimental setup (Section V-A) puts "routine traffic on each
link with random delay performance from 1 ms to 20 ms"; that is
:func:`uniform_delay_metrics` with defaults.  The loss-domain helpers
implement the standard logarithmic transform that makes packet delivery
ratios additive: for per-link delivery ratio ``d``, the additive metric is
``-log(d)``, so a path's metric is ``-log(prod d_i) = sum(-log d_i)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.topology.graph import Topology
from repro.utils.rng import ensure_rng

__all__ = [
    "uniform_delay_metrics",
    "constant_delay_metrics",
    "delivery_ratio_to_log_metric",
    "log_metric_to_delivery_ratio",
    "loss_rate_to_log_metric",
]


def uniform_delay_metrics(
    topology: Topology,
    low: float = 1.0,
    high: float = 20.0,
    *,
    rng: object = None,
) -> np.ndarray:
    """Per-link delays drawn uniformly from ``[low, high]`` milliseconds.

    Matches the paper's routine-traffic model (1-20 ms).  Returns a vector
    indexed by link index.
    """
    if low < 0 or high < low:
        raise ValidationError(f"need 0 <= low <= high, got low={low}, high={high}")
    generator = ensure_rng(rng)
    return generator.uniform(low, high, size=topology.num_links)


def constant_delay_metrics(topology: Topology, value: float = 10.0) -> np.ndarray:
    """Every link gets the same delay ``value`` (useful in unit tests)."""
    if value < 0:
        raise ValidationError(f"delay must be non-negative, got {value}")
    return np.full(topology.num_links, float(value))


def delivery_ratio_to_log_metric(delivery_ratio: np.ndarray) -> np.ndarray:
    """Convert per-link delivery ratios ``d`` in (0, 1] to additive ``-log d``.

    A ratio of 1 maps to metric 0 (perfect link); smaller ratios map to
    larger metrics, preserving the "bigger is worse" convention shared with
    delays.
    """
    ratios = np.asarray(delivery_ratio, dtype=float)
    if np.any(ratios <= 0.0) or np.any(ratios > 1.0):
        raise ValidationError("delivery ratios must lie in (0, 1]")
    return -np.log(ratios)


def log_metric_to_delivery_ratio(metric: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delivery_ratio_to_log_metric`."""
    values = np.asarray(metric, dtype=float)
    if np.any(values < 0.0):
        raise ValidationError("log-domain loss metrics must be non-negative")
    return np.exp(-values)


def loss_rate_to_log_metric(loss_rate: np.ndarray) -> np.ndarray:
    """Convert per-link loss rates in [0, 1) to the additive log metric."""
    losses = np.asarray(loss_rate, dtype=float)
    if np.any(losses < 0.0) or np.any(losses >= 1.0):
        raise ValidationError("loss rates must lie in [0, 1)")
    return delivery_ratio_to_log_metric(1.0 - losses)
