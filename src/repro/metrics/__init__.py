"""Additive link metrics and link-state classification.

The tomography model requires *additive* path metrics (Section II-A):
delays add along a path, and packet delivery ratios multiply — hence add in
the logarithmic domain.  This package provides generators for ground-truth
link metric vectors, the delay/loss conversions, and the three-state link
classifier of Definition 1 (normal / uncertain / abnormal).
"""

from repro.metrics.link_metrics import (
    constant_delay_metrics,
    delivery_ratio_to_log_metric,
    log_metric_to_delivery_ratio,
    loss_rate_to_log_metric,
    uniform_delay_metrics,
)
from repro.metrics.states import (
    LinkState,
    StateThresholds,
    classify_metric,
    classify_vector,
)

__all__ = [
    "constant_delay_metrics",
    "delivery_ratio_to_log_metric",
    "log_metric_to_delivery_ratio",
    "loss_rate_to_log_metric",
    "uniform_delay_metrics",
    "LinkState",
    "StateThresholds",
    "classify_metric",
    "classify_vector",
]
