"""Numerical linear-algebra helpers shared across the library.

These are thin, well-tested wrappers over :mod:`numpy.linalg` that fix the
tolerance conventions used throughout the tomography and attack code.  The
routing matrices produced by this library are small dense 0/1 matrices, so
dense SVD-based routines are appropriate.

Everything rank-related funnels through :func:`compact_svd` — one SVD with
one cutoff convention — so the derived operators (pseudo-inverse,
projectors, nullspace) are mutually consistent.  Callers that need several
operators of the *same* matrix should use
:class:`repro.tomography.linear_system.LinearSystem`, which factorises
once and derives them all from the shared factors.
"""

from __future__ import annotations

import numpy as np

from repro.perf.instrumentation import record_event

__all__ = [
    "column_rank",
    "compact_svd",
    "is_full_column_rank",
    "nullspace",
    "projector_onto_column_space",
    "DEFAULT_RANK_TOL",
]

#: Relative singular-value cutoff used for rank decisions on routing matrices.
DEFAULT_RANK_TOL = 1e-10


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    out = np.asarray(matrix, dtype=float)
    if out.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={out.ndim}")
    return out


def compact_svd(
    matrix: np.ndarray, rank_tol: float = DEFAULT_RANK_TOL
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One SVD, one cutoff: returns ``(u, s, vt, rank)``.

    ``u`` has ``min(m, n)`` columns (economy form), while ``vt`` is always
    the *complete* ``n x n`` right-singular basis so the trailing rows span
    the nullspace even for wide matrices.  ``rank`` counts singular values
    above ``rank_tol * max(m, n) * s_max`` — the same convention
    :func:`nullspace` has always used, now shared by every derived
    operator.
    """
    mat = _as_matrix(matrix)
    m, n = mat.shape
    if mat.size == 0:
        return np.zeros((m, 0)), np.zeros(0), np.eye(n), 0
    record_event("svd")
    # full_matrices only when the matrix is wide: that is the one case the
    # economy factorisation would truncate the right-singular basis needed
    # for the nullspace.
    u, s, vt = np.linalg.svd(mat, full_matrices=m < n)
    cutoff = rank_tol * max(m, n) * (s[0] if s.size else 1.0)
    rank = int(np.sum(s > cutoff))
    return u, s, vt, rank


def column_rank(matrix: np.ndarray, tol: float | None = None) -> int:
    """Return the numerical rank of ``matrix``.

    ``tol`` is an absolute singular-value threshold; when ``None`` numpy's
    default (machine-precision scaled) threshold is used.
    """
    mat = _as_matrix(matrix)
    if mat.size == 0:
        return 0
    record_event("svd")
    return int(np.linalg.matrix_rank(mat, tol=tol))


def is_full_column_rank(matrix: np.ndarray, tol: float | None = None) -> bool:
    """True when ``matrix`` has linearly independent columns.

    A routing matrix with full column rank makes every link metric
    identifiable from path measurements (eq. 2 of the paper is well posed).
    """
    mat = _as_matrix(matrix)
    if mat.shape[1] == 0:
        return True
    return column_rank(mat, tol=tol) == mat.shape[1]


def pinv_from_svd(
    u: np.ndarray, s: np.ndarray, vt: np.ndarray, rank: int
) -> np.ndarray:
    """Assemble ``V_r diag(1/s_r) U_r^T`` from precomputed SVD factors."""
    if rank == 0:
        return np.zeros((vt.shape[1], u.shape[0]))
    return (vt[:rank].T / s[:rank]) @ u[:, :rank].T


def nullspace(matrix: np.ndarray, tol: float = DEFAULT_RANK_TOL) -> np.ndarray:
    """Return an orthonormal basis of the (right) null space as columns.

    The null space of the routing matrix characterises the set of link-metric
    perturbations invisible to every measurement path.
    """
    mat = _as_matrix(matrix)
    if mat.size == 0:
        return np.eye(mat.shape[1])
    _, _, vt, rank = compact_svd(mat, rank_tol=tol)
    return vt[rank:].T.copy()


def projector_onto_column_space(matrix: np.ndarray) -> np.ndarray:
    """Return the orthogonal projector ``P`` with ``P y = R R⁺ y``.

    ``(I - P) y`` is the measurement residual that the scapegoating detector
    of Section IV-B tests against its threshold: measurements consistent with
    *some* link-metric vector lie exactly in the column space of ``R``.
    """
    u, _, _, rank = compact_svd(matrix)
    return u[:, :rank] @ u[:, :rank].T
