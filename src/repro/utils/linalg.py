"""Numerical linear-algebra helpers shared across the library.

These are thin, well-tested wrappers over :mod:`numpy.linalg` that fix the
tolerance conventions used throughout the tomography and attack code.  The
routing matrices produced by this library are small dense 0/1 matrices, so
dense SVD-based routines are appropriate.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "column_rank",
    "is_full_column_rank",
    "least_squares_pinv",
    "nullspace",
    "projector_onto_column_space",
    "DEFAULT_RANK_TOL",
]

#: Relative singular-value cutoff used for rank decisions on routing matrices.
DEFAULT_RANK_TOL = 1e-10


def _as_matrix(matrix: np.ndarray) -> np.ndarray:
    out = np.asarray(matrix, dtype=float)
    if out.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={out.ndim}")
    return out


def column_rank(matrix: np.ndarray, tol: float | None = None) -> int:
    """Return the numerical rank of ``matrix``.

    ``tol`` is an absolute singular-value threshold; when ``None`` numpy's
    default (machine-precision scaled) threshold is used.
    """
    mat = _as_matrix(matrix)
    if mat.size == 0:
        return 0
    return int(np.linalg.matrix_rank(mat, tol=tol))


def is_full_column_rank(matrix: np.ndarray, tol: float | None = None) -> bool:
    """True when ``matrix`` has linearly independent columns.

    A routing matrix with full column rank makes every link metric
    identifiable from path measurements (eq. 2 of the paper is well posed).
    """
    mat = _as_matrix(matrix)
    if mat.shape[1] == 0:
        return True
    return column_rank(mat, tol=tol) == mat.shape[1]


def least_squares_pinv(matrix: np.ndarray) -> np.ndarray:
    """Return the Moore-Penrose pseudo-inverse of ``matrix``.

    For a full-column-rank routing matrix ``R`` this equals
    ``(R^T R)^{-1} R^T``, the estimator matrix of eq. (2) in the paper; for
    rank-deficient systems it yields the minimum-norm least-squares solution
    operator.
    """
    return np.linalg.pinv(_as_matrix(matrix))


def nullspace(matrix: np.ndarray, tol: float = DEFAULT_RANK_TOL) -> np.ndarray:
    """Return an orthonormal basis of the (right) null space as columns.

    The null space of the routing matrix characterises the set of link-metric
    perturbations invisible to every measurement path.
    """
    mat = _as_matrix(matrix)
    if mat.size == 0:
        return np.eye(mat.shape[1])
    _, s, vt = np.linalg.svd(mat)
    cutoff = tol * max(mat.shape) * (s[0] if s.size else 1.0)
    num_nonzero = int(np.sum(s > cutoff))
    return vt[num_nonzero:].T.copy()


def projector_onto_column_space(matrix: np.ndarray) -> np.ndarray:
    """Return the orthogonal projector ``P`` with ``P y = R R⁺ y``.

    ``(I - P) y`` is the measurement residual that the scapegoating detector
    of Section IV-B tests against its threshold: measurements consistent with
    *some* link-metric vector lie exactly in the column space of ``R``.
    """
    mat = _as_matrix(matrix)
    return mat @ np.linalg.pinv(mat)
