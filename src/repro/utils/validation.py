"""Argument-validation helpers.

All helpers raise :class:`repro.exceptions.ValidationError` with a message
that names the offending argument, so API users get actionable errors.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_finite_vector",
    "check_nonnegative_vector",
    "check_probability",
    "check_positive",
]


def check_finite_vector(vector: np.ndarray, name: str, *, length: int | None = None) -> np.ndarray:
    """Coerce ``vector`` to a 1-D float array and require finite entries.

    When ``length`` is given, also enforce the exact length.  Returns the
    coerced array so call sites can write ``x = check_finite_vector(x, "x")``.
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D vector, got ndim={arr.ndim}")
    if length is not None and arr.shape[0] != length:
        raise ValidationError(f"{name} must have length {length}, got {arr.shape[0]}")
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr


def check_nonnegative_vector(
    vector: np.ndarray, name: str, *, length: int | None = None, atol: float = 0.0
) -> np.ndarray:
    """Like :func:`check_finite_vector` but also require entries >= -atol."""
    arr = check_finite_vector(vector, name, length=length)
    if np.any(arr < -atol):
        worst = float(arr.min())
        raise ValidationError(f"{name} must be componentwise non-negative, min entry {worst}")
    return arr


def check_probability(value: float, name: str) -> float:
    """Require ``value`` to lie in [0, 1]."""
    val = float(value)
    if not 0.0 <= val <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {val}")
    return val


def check_positive(value: float, name: str) -> float:
    """Require ``value`` to be strictly positive and finite."""
    val = float(value)
    if not np.isfinite(val) or val <= 0:
        raise ValidationError(f"{name} must be a positive finite number, got {val}")
    return val
