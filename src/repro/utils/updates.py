"""Rank-1 factorization update kernels for evolving measurement systems.

When a measurement path enters or leaves the routing matrix, the shared
factorization behind :class:`~repro.tomography.linear_system.LinearSystem`
changes by one row.  Recomputing it from scratch is cubic in the matrix
dimensions; these kernels patch the existing factors instead:

- :func:`svd_append_row` / :func:`svd_remove_row` update a compact SVD
  (Brand-style: the correction concentrates in a small core matrix whose
  SVD/eigendecomposition costs ``O(k^3)`` for rank ``k``, versus
  ``O(m n min(m, n))`` for a cold factorization).
- :func:`cholesky_update` / :func:`cholesky_downdate` apply a rank-1
  correction ``G +/- w w^T`` to an upper-triangular Cholesky factor in
  ``O(k^2)`` (Givens rotations for the update, hyperbolic rotations for
  the downdate), and :func:`cholesky_append` / :func:`cholesky_delete`
  grow or shrink the factor by one dimension — the four moves the sparse
  backend's Gram factor needs under path churn.

Downdates are not unconditionally stable: removing a row can make the
problem ill-conditioned faster than floating point can track (the
eigenvalue route squares the conditioning; the hyperbolic rotation can
hit a non-positive pivot).  Every kernel therefore either succeeds with
a certified result or returns ``None`` — callers fall back to a cold
refactorization, never to a silently degraded factor.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.perf import instrumentation as perf

__all__ = [
    "cholesky_append",
    "cholesky_delete",
    "cholesky_downdate",
    "cholesky_replace",
    "cholesky_update",
    "svd_append_row",
    "svd_remove_row",
]

#: Relative floor for downdated pivots: below this the correction has
#: consumed the factor's information and a cold rebuild is required.
_PIVOT_TOL = 1e-12


# ----------------------------------------------------------------------
# SVD row updates (dense backend)
# ----------------------------------------------------------------------
def svd_append_row(
    u: np.ndarray, s: np.ndarray, vt: np.ndarray, row: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Factors of ``vstack([M, row])`` from the factors of ``M``.

    ``(u, s, vt)`` follow the :func:`repro.utils.linalg.compact_svd`
    convention: ``u`` is ``(m, k)`` economy with ``k = min(m, n)``,
    ``s`` is ``(k,)``, and ``vt`` is the complete ``(n, n)`` right basis
    whose trailing rows span the nullspace.  The result follows the same
    convention for the ``(m + 1, n)`` matrix.  Cost is the SVD of a
    ``(k + 1)``-sized core plus ``O((m + n) k)`` basis rotations.
    """
    m, k = u.shape
    n = vt.shape[1]
    x = vt @ row
    if k < n:
        # Wide regime: the new row may carry energy outside the current
        # row space.  Split x along the row space / nullspace boundary
        # and absorb the out-of-space part as one new right direction q.
        x1, x2 = x[:k], x[k:]
        rho = float(np.linalg.norm(x2))
        if rho == 0.0:
            q = np.zeros(n - k)
            q[0] = 1.0
        else:
            q = x2 / rho
        core = np.zeros((k + 1, k + 1))
        core[np.arange(k), np.arange(k)] = s
        core[k, :k] = x1
        core[k, k] = rho
        with perf.stage("svd_update"):
            perf.record_event("svd_update")
            cu, cs, cvt = np.linalg.svd(core)  # repro: noqa RP001
        u_new = np.empty((m + 1, k + 1))
        u_new[:m] = u @ cu[:k]
        u_new[m] = cu[k]
        nullspace_rows = vt[k:]
        q_row = q @ nullspace_rows
        basis = np.vstack([vt[:k], q_row])
        vt_new = np.empty((n, n))
        vt_new[: k + 1] = cvt @ basis
        # Rotate the nullspace block so its first row is q_row, then drop
        # it: a symmetric Householder H = I - 2 v v^T / ||v||^2 with
        # v = e1 - q maps e1 <-> q, so (H @ N)[0] = q_row and the rest is
        # an orthonormal basis of the complement of q inside span(N).
        v = -q
        v[0] += 1.0
        vnorm2 = float(v @ v)
        if vnorm2 > 0.0:
            rotated = nullspace_rows - np.outer(v, (v @ nullspace_rows) * (2.0 / vnorm2))
        else:
            rotated = nullspace_rows
        vt_new[k + 1 :] = rotated[1:]
        return u_new, cs, vt_new
    # Tall regime (k == n <= m): the row space already spans R^n, so only
    # the left basis grows.  The core is (k + 1) x k; its economy SVD
    # keeps k singular values and vt stays n x n.
    core = np.zeros((k + 1, k))
    core[np.arange(k), np.arange(k)] = s
    core[k] = x
    with perf.stage("svd_update"):
        perf.record_event("svd_update")
        cu, cs, cvt = np.linalg.svd(core, full_matrices=False)  # repro: noqa RP001
    u_new = np.empty((m + 1, k))
    u_new[:m] = u @ cu[:k]
    u_new[m] = cu[k]
    return u_new, cs, cvt @ vt


def svd_remove_row(
    u: np.ndarray, s: np.ndarray, vt: np.ndarray, index: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Factors of ``M`` with row ``index`` deleted, or ``None``.

    Deleting row ``i`` subtracts the rank-1 term ``r_i r_i^T`` from
    ``M^T M``; restricted to the current right basis this is the small
    symmetric downdate ``W = diag(s^2) - z z^T`` with ``z = s * u[i]``,
    whose eigendecomposition supplies the new factors.  The eigenvalue
    route squares the conditioning (an eigenvalue error of ``eps *
    lmax`` is a singular-value error of ``sqrt(eps) * smax``), so the
    result must be re-certified by the caller; structurally ambiguous
    cases — a rank drop whose discarded eigenvalue is not numerically
    zero, or a left basis that cannot be orthonormally completed —
    return ``None`` for a cold rebuild.
    """
    m, k = u.shape
    n = vt.shape[1]
    c = u[index]
    z = s * c
    w_mat = np.diag(s * s) - np.outer(z, z)
    with perf.stage("svd_downdate"):
        perf.record_event("svd_downdate")
        eigvals, eigvecs = scipy.linalg.eigh(w_mat)
    # eigh returns ascending order; the SVD convention is descending.
    eigvals = eigvals[::-1]
    eigvecs = eigvecs[:, ::-1]
    k_new = min(m - 1, n)
    s_max = float(s[0]) if k else 0.0
    if k_new < k:
        # m <= n: one right direction leaves the row space.  That only
        # happens cleanly when the discarded eigenvalue is numerically
        # zero; otherwise the downdate is not trustworthy.
        dropped = float(eigvals[k - 1])
        if abs(dropped) > 1e-8 * max(s_max * s_max, 1.0):
            return None
    e_keep = eigvecs[:, :k_new]
    s_new = np.sqrt(np.clip(eigvals[:k_new], 0.0, None))
    u_del = np.delete(u, index, axis=0)
    # scaled[:, j] = M_del @ (right direction j); its norm IS sigma'_j in
    # exact arithmetic, so normalizing recovers the left basis directly.
    scaled = u_del @ (s[:, None] * e_keep)
    noise = s_max * np.sqrt(64.0 * max(k, 1) * np.finfo(float).eps)
    u_new = np.empty((m - 1, k_new))
    degenerate: list[int] = []
    for j in range(k_new):
        if s_new[j] > noise:
            u_new[:, j] = scaled[:, j] / s_new[j]
        else:
            degenerate.append(j)
    if degenerate and not _complete_orthonormal(u_new, degenerate):
        return None
    vt_new = np.empty((n, n))
    vt_new[:k_new] = e_keep.T @ vt[:k]
    if k_new < k:
        # The dropped right direction joins the nullspace block, ahead of
        # the rows that were already there.
        vt_new[k_new] = eigvecs[:, k - 1] @ vt[:k]
        vt_new[k_new + 1 :] = vt[k:]
    else:
        vt_new[k_new:] = vt[k:]
    return u_new, s_new, vt_new


def _complete_orthonormal(basis: np.ndarray, columns: list[int]) -> bool:
    """Fill ``columns`` of ``basis`` with orthonormal complement vectors.

    Deterministic Gram-Schmidt over cycled identity candidates; the
    other columns of ``basis`` must already be orthonormal.  Returns
    ``False`` when no candidate survives projection (caller rebuilds).
    """
    m = basis.shape[0]
    filled = [j for j in range(basis.shape[1]) if j not in columns]
    for j in columns:
        accepted = False
        for attempt in range(m):
            candidate = np.zeros(m)
            candidate[(j + attempt) % m] = 1.0
            for other in filled:
                candidate -= (basis[:, other] @ candidate) * basis[:, other]
            norm = float(np.linalg.norm(candidate))
            if norm > 0.5:
                basis[:, j] = candidate / norm
                filled.append(j)
                accepted = True
                break
        if not accepted:
            return False
    return True


# ----------------------------------------------------------------------
# Cholesky rank-1 updates (sparse backend's Gram factor)
# ----------------------------------------------------------------------
def cholesky_update(factor: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Upper factor of ``U^T U + w w^T`` via Givens rotations.

    Unconditionally stable (adding ``w w^T`` keeps the Gram positive
    definite), so unlike the downdate this never returns ``None``.
    ``factor`` must be a clean upper triangle; the input is not mutated.
    Memory order is preserved (``order="K"``) so Fortran-ordered factors
    stay copy-free for LAPACK solves downstream.
    """
    u_new = np.array(factor, dtype=float, order="K")
    work = np.asarray(w, dtype=float).copy()
    k = u_new.shape[0]
    with perf.stage("cholesky_update"):
        perf.record_event("cholesky_update")
        for j in range(k):
            a = u_new[j, j]
            b = work[j]
            r = float(np.hypot(a, b))
            if r == 0.0:
                continue
            c, sn = a / r, b / r
            row = u_new[j, j:].copy()
            tail = work[j:]
            u_new[j, j:] = c * row + sn * tail
            work[j:] = c * tail - sn * row
    return u_new


def cholesky_downdate(factor: np.ndarray, w: np.ndarray) -> np.ndarray | None:
    """Upper factor of ``U^T U - w w^T`` via hyperbolic rotations, or ``None``.

    Returns ``None`` when a pivot loses (almost) all its mass — the
    downdated Gram is then numerically indefinite and only a cold
    refactorization can certify what remains.
    """
    u_new = np.array(factor, dtype=float, order="K")
    work = np.asarray(w, dtype=float).copy()
    k = u_new.shape[0]
    with perf.stage("cholesky_downdate"):
        perf.record_event("cholesky_downdate")
        for j in range(k):
            a = u_new[j, j]
            b = work[j]
            d2 = (a - b) * (a + b)
            if a <= 0.0 or d2 <= _PIVOT_TOL * a * a:
                return None
            r = float(np.sqrt(d2))
            row = u_new[j, j:].copy()
            tail = work[j:]
            u_new[j, j:] = (a * row - b * tail) / r
            work[j:] = (a * tail - b * row) / r
    return u_new


def cholesky_append(
    factor: np.ndarray, b: np.ndarray, d: float
) -> np.ndarray | None:
    """Upper factor of the Gram bordered by column ``b`` and corner ``d``.

    For ``G' = [[G, b], [b^T, d]]`` with ``G = U^T U``: solve
    ``U^T w = b`` and set the new corner to ``sqrt(d - w^T w)``.  Returns
    ``None`` when the Schur complement is not safely positive (the new
    dimension is linearly dependent on the old ones).  ``factor`` must be
    a clean upper triangle (zeros below the diagonal) — it is embedded
    verbatim in the result.
    """
    k = factor.shape[0]
    with perf.stage("cholesky_update"):
        perf.record_event("cholesky_update")
        if k:
            wv = scipy.linalg.solve_triangular(
                factor, b, trans="T", check_finite=False
            )
            gamma2 = float(d) - float(wv @ wv)
        else:
            wv = np.zeros(0)
            gamma2 = float(d)
        if gamma2 <= _PIVOT_TOL * max(float(d), 1.0):
            return None
        u_new = np.zeros((k + 1, k + 1), order="F")
        u_new[:k, :k] = factor
        u_new[:k, k] = wv
        u_new[k, k] = np.sqrt(gamma2)
    return u_new


def cholesky_replace(
    factor: np.ndarray, index: int, b: np.ndarray, d: float
) -> np.ndarray | None:
    """Upper factor after deleting dimension ``index`` and bordering anew.

    Fuses :func:`cholesky_delete` followed by :func:`cholesky_append`
    into one pass with a single output allocation — the dominant churn
    pattern (one path leaves, one path joins) would otherwise copy the
    full ``k x k`` factor twice, and on memory-bound hosts those copies
    cost more than the arithmetic.  ``b``/``d`` border the *post-delete*
    Gram (``b`` has length ``k - 1``).  Returns ``None`` when the new
    dimension's Schur complement is not safely positive.  ``factor``
    must be a clean upper triangle.
    """
    k = factor.shape[0]
    with perf.stage("cholesky_update"):
        perf.record_event("cholesky_update")
        trailing = cholesky_update(
            factor[index + 1 :, index + 1 :], factor[index, index + 1 :]
        )
        u_new = np.zeros((k, k), order="F")
        u_new[:index, :index] = factor[:index, :index]
        u_new[:index, index : k - 1] = factor[:index, index + 1 :]
        u_new[index : k - 1, index : k - 1] = trailing
        if k > 1:
            # Solve against the FULL k x k triangle with the rhs padded
            # by a zero: forward substitution never lets the last
            # equation feed back into the first k - 1 components, so
            # w[:k-1] equals the leading-block solution while the full
            # Fortran-contiguous factor keeps LAPACK copy-free (a sliced
            # leading block would force a 50 MB re-pack at ISP scale).
            u_new[k - 1, k - 1] = 1.0
            padded = np.empty(k)
            padded[: k - 1] = b
            padded[k - 1] = 0.0
            wv = scipy.linalg.solve_triangular(
                u_new, padded, trans="T", check_finite=False
            )[: k - 1]
            gamma2 = float(d) - float(wv @ wv)
        else:
            wv = np.zeros(0)
            gamma2 = float(d)
        if gamma2 <= _PIVOT_TOL * max(float(d), 1.0):
            return None
        u_new[: k - 1, k - 1] = wv
        u_new[k - 1, k - 1] = np.sqrt(gamma2)
    return u_new


def cholesky_delete(factor: np.ndarray, index: int) -> np.ndarray:
    """Upper factor of the Gram with dimension ``index`` deleted.

    Deleting row/column ``i`` keeps the leading block untouched; the
    trailing block absorbs the removed column's coupling as a rank-1
    update (always stable — deletion of a principal submatrix preserves
    positive definiteness).  ``factor`` must be a clean upper triangle;
    its leading blocks are copied verbatim into the result.
    """
    k = factor.shape[0]
    with perf.stage("cholesky_downdate"):
        perf.record_event("cholesky_downdate")
        trailing = cholesky_update(
            factor[index + 1 :, index + 1 :], factor[index, index + 1 :]
        )
        u_new = np.zeros((k - 1, k - 1), order="F")
        u_new[:index, :index] = factor[:index, :index]
        u_new[:index, index:] = factor[:index, index + 1 :]
        u_new[index:, index:] = trailing
    return u_new
