"""Deterministic random-number-generator plumbing.

Every stochastic component in this library accepts either a seed or a
:class:`numpy.random.Generator`.  Centralising the coercion here keeps the
experiment drivers reproducible and the call sites uniform.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(rng: object = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh nondeterministic generator), an integer seed, a
    :class:`numpy.random.SeedSequence`, or an existing generator (returned
    unchanged, so generator state is shared with the caller).

    >>> g = ensure_rng(42)
    >>> h = ensure_rng(42)
    >>> float(g.random()) == float(h.random())
    True
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise TypeError(
        f"expected None, int, SeedSequence or numpy Generator, got {type(rng).__name__}"
    )


def spawn_rngs(rng: object, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``rng``.

    Uses the SeedSequence spawning protocol so that child streams are
    statistically independent regardless of how many draws the parent has
    already made.  Useful for parallel Monte-Carlo trials that must be
    reproducible independent of execution order.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.bit_generator.seed_seq.spawn(count)  # type: ignore[union-attr]
    return [np.random.default_rng(s) for s in seeds]
