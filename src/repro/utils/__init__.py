"""Shared utilities: RNG handling, linear algebra, validation helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.linalg import (
    column_rank,
    is_full_column_rank,
    nullspace,
    projector_onto_column_space,
)
from repro.utils.validation import (
    check_finite_vector,
    check_nonnegative_vector,
    check_probability,
    check_positive,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "column_rank",
    "is_full_column_rank",
    "nullspace",
    "projector_onto_column_space",
    "check_finite_vector",
    "check_nonnegative_vector",
    "check_probability",
    "check_positive",
]
