"""Shortest paths and Yen's k-shortest simple paths, from scratch.

Monitors with controllable routing pick probe routes explicitly; candidate
routes come from shortest / near-shortest simple paths between monitor
pairs.  Hop count is the metric (every link has unit cost), which matches
the path-selection practice of the identifiability literature the paper
builds on.

Also provides an exhaustive simple-path enumerator (depth-first, lazily
yielded) used on small topologies such as the paper's Fig. 1 network.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterator

from repro.exceptions import NoPathError, ValidationError
from repro.topology.graph import NodeId, Topology

__all__ = ["shortest_path", "k_shortest_paths", "all_simple_paths"]


def shortest_path(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    *,
    banned_nodes: frozenset = frozenset(),
    banned_links: frozenset = frozenset(),
) -> list[NodeId]:
    """Minimum-hop path from ``source`` to ``target`` as a node list.

    ``banned_nodes`` / ``banned_links`` (link indices) are excluded — this
    is the spur computation Yen's algorithm needs.  Ties are broken
    deterministically by the topology's link insertion order.  Raises
    :class:`NoPathError` when no path survives the bans.
    """
    if not topology.has_node(source):
        raise NoPathError(source, target)
    if not topology.has_node(target):
        raise NoPathError(source, target)
    if source in banned_nodes or target in banned_nodes:
        raise NoPathError(source, target)
    if source == target:
        raise ValidationError("source and target must differ for a measurement path")

    # Uniform weights: BFS via a heap with (dist, order) keys keeps the
    # deterministic tie-breaking explicit and generalises to weighted links.
    counter = 0
    heap: list[tuple[int, int, NodeId]] = [(0, counter, source)]
    parent: dict[NodeId, NodeId] = {}
    dist: dict[NodeId, int] = {source: 0}
    while heap:
        d, _, node = heapq.heappop(heap)
        if node == target:
            break
        if d > dist.get(node, float("inf")):
            continue
        for link in topology.incident_links(node):
            if link.index in banned_links:
                continue
            neighbor = link.other(node)
            if neighbor in banned_nodes:
                continue
            nd = d + 1
            if nd < dist.get(neighbor, float("inf")):
                dist[neighbor] = nd
                parent[neighbor] = node
                counter += 1
                heapq.heappush(heap, (nd, counter, neighbor))
    if target not in dist:
        raise NoPathError(source, target)
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def k_shortest_paths(
    topology: Topology, source: NodeId, target: NodeId, k: int
) -> list[list[NodeId]]:
    """Yen's algorithm: up to ``k`` shortest *simple* paths by hop count.

    Returns fewer than ``k`` paths when the graph does not contain that many
    simple paths.  The first entry is the shortest path; subsequent entries
    are non-decreasing in length.  Raises :class:`NoPathError` when the
    endpoints are disconnected.
    """
    if k < 1:
        raise ValidationError(f"k must be >= 1, got {k}")
    first = shortest_path(topology, source, target)
    accepted: list[list[NodeId]] = [first]
    # Candidate heap entries: (length, insertion order, path).
    candidates: list[tuple[int, int, list[NodeId]]] = []
    seen: set[tuple] = {tuple(first)}
    counter = 0

    while len(accepted) < k:
        prev_path = accepted[-1]
        for spur_index in range(len(prev_path) - 1):
            root = prev_path[: spur_index + 1]
            spur_node = prev_path[spur_index]
            banned_links: set[int] = set()
            for path in accepted:
                if len(path) > spur_index and path[: spur_index + 1] == root:
                    link = topology.link_between(path[spur_index], path[spur_index + 1])
                    banned_links.add(link.index)
            banned_nodes = frozenset(root[:-1])
            try:
                spur = shortest_path(
                    topology,
                    spur_node,
                    target,
                    banned_nodes=banned_nodes,
                    banned_links=frozenset(banned_links),
                )
            except NoPathError:
                continue
            total = root[:-1] + spur
            key = tuple(total)
            if key not in seen:
                seen.add(key)
                counter += 1
                heapq.heappush(candidates, (len(total) - 1, counter, total))
        if not candidates:
            break
        _, _, best = heapq.heappop(candidates)
        accepted.append(best)
    return accepted


def all_simple_paths(
    topology: Topology,
    source: NodeId,
    target: NodeId,
    *,
    max_hops: int | None = None,
) -> Iterator[list[NodeId]]:
    """Lazily enumerate every simple path from ``source`` to ``target``.

    Depth-first with an optional hop cutoff; order is deterministic
    (adjacency in link-insertion order).  Intended for small topologies —
    the count is exponential in general.
    """
    if not topology.has_node(source) or not topology.has_node(target):
        raise NoPathError(source, target)
    if source == target:
        raise ValidationError("source and target must differ")
    limit = max_hops if max_hops is not None else topology.num_nodes - 1
    if limit < 1:
        return

    path: list[NodeId] = [source]
    on_path: set[NodeId] = {source}
    stack: list[Iterator[NodeId]] = [iter(topology.neighbors(source))]
    while stack:
        children = stack[-1]
        advanced = False
        for child in children:
            if child in on_path:
                continue
            if child == target:
                yield path + [target]
                continue
            if len(path) < limit:
                path.append(child)
                on_path.add(child)
                stack.append(iter(topology.neighbors(child)))
                advanced = True
                break
        if not advanced:
            stack.pop()
            removed = path.pop()
            on_path.discard(removed)
