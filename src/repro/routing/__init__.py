"""Routing substrate: measurement paths and routing matrices.

Network tomography measures end-to-end paths between monitors and inverts
the linear system ``y = R x``.  This package provides:

- :class:`~repro.routing.paths.MeasurementPath` and
  :class:`~repro.routing.paths.PathSet` — validated node-sequence paths with
  link resolution against a topology;
- :mod:`~repro.routing.ksp` — shortest path and Yen's k-shortest simple
  paths, implemented from scratch;
- :mod:`~repro.routing.routing_matrix` — construction and rank /
  identifiability analysis of the 0/1 measurement matrix ``R``;
- :mod:`~repro.routing.selection` — candidate-path enumeration and the
  rank-greedy selection that gives monitors an identifiable path set, with
  optional redundancy (rows beyond rank) that the scapegoating detector
  needs (Theorem 3: a square ``R`` makes attacks undetectable).
"""

from repro.routing.paths import MeasurementPath, PathSet
from repro.routing.ksp import all_simple_paths, k_shortest_paths, shortest_path
from repro.routing.routing_matrix import (
    identifiable_links,
    identifiability_report,
    routing_matrix,
)
from repro.routing.selection import (
    enumerate_candidate_paths,
    select_identifiable_paths,
    select_paths_min_presence,
    select_paths_rank_greedy,
)

__all__ = [
    "MeasurementPath",
    "PathSet",
    "all_simple_paths",
    "k_shortest_paths",
    "shortest_path",
    "identifiable_links",
    "identifiability_report",
    "routing_matrix",
    "enumerate_candidate_paths",
    "select_identifiable_paths",
    "select_paths_min_presence",
    "select_paths_rank_greedy",
]
