"""Measurement paths and path sets.

A measurement path is the route a probe packet takes between two monitors.
Monitors in network tomography control probe routing (source routing /
SDN-installed routes — Section II-A of the paper), so a path here is an
explicit node sequence, validated link-by-link against the topology.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import InvalidPathError, ValidationError
from repro.topology.graph import NodeId, Topology

__all__ = ["MeasurementPath", "PathSet"]


class MeasurementPath:
    """A simple path through the topology, resolved to link indices.

    Parameters
    ----------
    topology:
        The topology the path lives in.
    nodes:
        The node sequence, starting and ending at (distinct) monitors.  The
        sequence must be a *simple* path: consecutive nodes adjacent, no
        repeated nodes.

    >>> from repro.topology import paper_example_network
    >>> topo = paper_example_network()
    >>> p = MeasurementPath(topo, ["M1", "A", "C", "D", "M2"])
    >>> p.link_indices
    (0, 3, 6, 9)
    >>> p.contains_node("C"), p.contains_node("B")
    (True, False)
    """

    __slots__ = ("_nodes", "_link_indices", "_node_set")

    def __init__(self, topology: Topology, nodes: Sequence[NodeId]) -> None:
        node_list = list(nodes)
        if len(node_list) < 2:
            raise InvalidPathError(f"a path needs at least 2 nodes, got {len(node_list)}")
        if len(set(node_list)) != len(node_list):
            raise InvalidPathError(f"path visits a node twice: {node_list!r}")
        links = []
        for u, v in zip(node_list, node_list[1:]):
            if not topology.has_link(u, v):
                raise InvalidPathError(f"nodes {u!r} and {v!r} are not adjacent in the topology")
            links.append(topology.link_between(u, v).index)
        self._nodes: tuple[NodeId, ...] = tuple(node_list)
        self._link_indices: tuple[int, ...] = tuple(links)
        self._node_set = frozenset(node_list)

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """The node sequence, source first."""
        return self._nodes

    @property
    def link_indices(self) -> tuple[int, ...]:
        """Indices of the links traversed, in traversal order."""
        return self._link_indices

    @property
    def source(self) -> NodeId:
        """First node (the probing monitor)."""
        return self._nodes[0]

    @property
    def target(self) -> NodeId:
        """Last node (the receiving monitor)."""
        return self._nodes[-1]

    @property
    def num_hops(self) -> int:
        """Number of links traversed."""
        return len(self._link_indices)

    @property
    def interior_nodes(self) -> tuple[NodeId, ...]:
        """Nodes strictly between the endpoints."""
        return self._nodes[1:-1]

    def contains_node(self, node: NodeId) -> bool:
        """True when ``node`` lies anywhere on the path (endpoints included)."""
        return node in self._node_set

    def contains_any_node(self, nodes: Iterable[NodeId]) -> bool:
        """True when any of ``nodes`` lies on the path."""
        return any(node in self._node_set for node in nodes)

    def contains_link(self, link_index: int) -> bool:
        """True when the path traverses the link with index ``link_index``."""
        return link_index in self._link_indices

    def contains_any_link(self, link_indices: Iterable[int]) -> bool:
        """True when the path traverses any of the given links."""
        mine = set(self._link_indices)
        return any(index in mine for index in link_indices)

    def reversed(self, topology: Topology) -> "MeasurementPath":
        """The same route traversed in the opposite direction."""
        return MeasurementPath(topology, list(reversed(self._nodes)))

    def key(self) -> tuple:
        """Direction-insensitive identity (a path equals its reverse)."""
        fwd = self._nodes
        rev = tuple(reversed(self._nodes))
        return min(fwd, rev, key=repr)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MeasurementPath):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        route = " -> ".join(str(node) for node in self._nodes)
        return f"<MeasurementPath {route}>"


class PathSet:
    """An ordered collection of measurement paths over one topology.

    The order is significant: path *i* is row *i* of the routing matrix and
    entry *i* of measurement vectors.  The class offers the membership
    queries that attack and detection code needs (which paths cross a node
    set, which paths cross a link set).
    """

    def __init__(self, topology: Topology, paths: Iterable[MeasurementPath] = ()) -> None:
        self.topology = topology
        self._paths: list[MeasurementPath] = []
        self._version = 0
        for path in paths:
            self.append(path)

    @classmethod
    def from_node_sequences(
        cls, topology: Topology, sequences: Iterable[Sequence[NodeId]]
    ) -> "PathSet":
        """Build a path set from raw node sequences, validating each."""
        return cls(topology, (MeasurementPath(topology, seq) for seq in sequences))

    def append(self, path: MeasurementPath) -> None:
        """Append ``path`` (validated to belong to this topology's links)."""
        for index in path.link_indices:
            # Raises LinkNotFoundError if the index is out of range.
            self.topology.link(index)
        self._paths.append(path)
        self._version += 1

    def remove(self, index: int) -> MeasurementPath:
        """Remove and return the path at row ``index`` (churn event).

        Later rows shift up by one — exactly the row deletion that
        :meth:`~repro.tomography.linear_system.LinearSystem.evolve`
        applies to the routing matrix.
        """
        if not 0 <= index < len(self._paths):
            raise ValidationError(f"path index {index} out of range [0, {len(self._paths)})")
        self._version += 1
        return self._paths.pop(index)

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every append/remove.

        Caches keyed by object identity (the sweep engine's per-scenario
        memo) compare this to detect that a path set churned underneath
        them and their memoised routing matrix went stale.
        """
        return self._version

    @property
    def num_paths(self) -> int:
        """Number of measurement paths ``|P|``."""
        return len(self._paths)

    def paths(self) -> list[MeasurementPath]:
        """All paths in row order (fresh list)."""
        return list(self._paths)

    def path(self, index: int) -> MeasurementPath:
        """Path at row ``index``."""
        if not 0 <= index < len(self._paths):
            raise ValidationError(f"path index {index} out of range [0, {len(self._paths)})")
        return self._paths[index]

    def paths_containing_node(self, node: NodeId) -> list[int]:
        """Row indices of paths passing through ``node``."""
        return [i for i, path in enumerate(self._paths) if path.contains_node(node)]

    def paths_containing_any_node(self, nodes: Iterable[NodeId]) -> list[int]:
        """Row indices of paths passing through any node in ``nodes``."""
        node_set = set(nodes)
        return [i for i, path in enumerate(self._paths) if path.contains_any_node(node_set)]

    def paths_containing_link(self, link_index: int) -> list[int]:
        """Row indices of paths traversing the given link."""
        return [i for i, path in enumerate(self._paths) if path.contains_link(link_index)]

    def paths_containing_any_link(self, link_indices: Iterable[int]) -> list[int]:
        """Row indices of paths traversing any of the given links."""
        link_set = set(link_indices)
        return [i for i, path in enumerate(self._paths) if path.contains_any_link(link_set)]

    def monitor_pairs(self) -> set[frozenset]:
        """The set of unordered endpoint pairs covered by the paths."""
        return {frozenset((path.source, path.target)) for path in self._paths}

    def routing_matrix(self) -> np.ndarray:
        """The 0/1 measurement matrix ``R`` (|P| x |L|), float dtype.

        ``R[i, j] = 1`` iff path ``i`` traverses link ``j`` — eq. (1) of the
        paper.  Float dtype because the matrix immediately enters numerical
        linear algebra.
        """
        rows, cols = self._incidence_indices()
        matrix = np.zeros((len(self._paths), self.topology.num_links), dtype=float)
        matrix[rows, cols] = 1.0
        return matrix

    def sparse_routing_matrix(self) -> "scipy.sparse.csr_matrix":
        """``R`` as ``scipy.sparse.csr_matrix`` — same entries, CSR storage.

        The form the sparse tomography backend consumes directly; at
        ISP scale this skips materialising the (mostly zero) dense array
        entirely.
        """
        import scipy.sparse

        rows, cols = self._incidence_indices()
        data = np.ones(rows.size, dtype=float)
        matrix = scipy.sparse.csr_matrix(
            (data, (rows, cols)),
            shape=(len(self._paths), self.topology.num_links),
        )
        # CSR assembly sums duplicate coordinates; the dense builder's
        # assignment is idempotent — keep the two representations equal.
        matrix.sum_duplicates()
        matrix.data.fill(1.0)
        return matrix

    def _incidence_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """(row, col) index arrays of the path-link incidences, in path order.

        Built with ``np.repeat`` over per-path link counts — no per-entry
        Python loop, which dominates matrix construction at ISP scale.
        """
        counts = np.fromiter(
            (len(path.link_indices) for path in self._paths),
            dtype=np.intp,
            count=len(self._paths),
        )
        rows = np.repeat(np.arange(len(self._paths), dtype=np.intp), counts)
        cols = np.fromiter(
            (j for path in self._paths for j in path.link_indices),
            dtype=np.intp,
            count=int(counts.sum()),
        )
        return rows, cols

    def __iter__(self) -> Iterator[MeasurementPath]:
        return iter(self._paths)

    def __len__(self) -> int:
        return len(self._paths)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<PathSet: {len(self._paths)} paths over {self.topology!r}>"
