"""Measurement-path selection.

Monitors do not enumerate every possible path (footnote 1 of the paper);
they choose enough paths to make link metrics identifiable.  This module
provides:

- :func:`enumerate_candidate_paths` — candidate simple paths between all
  monitor pairs (exhaustive on small graphs, k-shortest on larger ones);
- :func:`select_paths_rank_greedy` — greedy selection of candidates that
  raise the rank of ``R`` until it is as large as achievable;
- :func:`select_identifiable_paths` — the full pipeline used by the
  experiments: randomised candidate order (the paper's "random selection
  algorithm based on the minimum monitor placement rule"), rank-greedy
  core, plus *redundant* extra paths so the detector of Section IV-B has
  consistency rows to check (a square ``R`` would be blind — Theorem 3).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import IdentifiabilityError, NoPathError, ValidationError
from repro.routing.ksp import all_simple_paths, k_shortest_paths
from repro.routing.paths import MeasurementPath, PathSet
from repro.topology.graph import NodeId, Topology
from repro.utils.linalg import column_rank
from repro.utils.rng import ensure_rng

__all__ = [
    "enumerate_candidate_paths",
    "select_paths_rank_greedy",
    "select_identifiable_paths",
    "select_paths_min_presence",
]

#: Above this many links we switch from exhaustive enumeration to k-shortest.
_EXHAUSTIVE_LINK_LIMIT = 16


def enumerate_candidate_paths(
    topology: Topology,
    monitors: Sequence[NodeId],
    *,
    max_per_pair: int = 20,
    max_hops: int | None = None,
    exhaustive: bool | None = None,
    pair_budget: int | None = None,
    rng: object = None,
) -> list[MeasurementPath]:
    """Candidate measurement paths between every unordered monitor pair.

    On small topologies (or with ``exhaustive=True``) all simple paths up to
    ``max_hops`` are enumerated per pair, capped at ``max_per_pair`` in
    shortest-first order; otherwise Yen's k-shortest paths supply up to
    ``max_per_pair`` candidates per pair.  Monitor pairs in different
    components contribute nothing (no error), matching how an operator
    would simply not measure between them.

    ``pair_budget`` caps how many monitor pairs are searched at all: when
    the number of unordered pairs exceeds it, a seeded sample of pairs is
    drawn (without replacement) from ``rng``.  This is what keeps
    enumeration tractable on ISP-scale topologies, where the quadratic
    pair count — not per-pair path search — dominates; operators likewise
    measure a budgeted subset of monitor pairs rather than all of them.
    """
    if len(set(monitors)) < 2:
        raise ValidationError("need at least two distinct monitors")
    if max_per_pair < 1:
        raise ValidationError(f"max_per_pair must be >= 1, got {max_per_pair}")
    if pair_budget is not None and pair_budget < 1:
        raise ValidationError(f"pair_budget must be >= 1 or None, got {pair_budget}")
    use_exhaustive = (
        exhaustive if exhaustive is not None else topology.num_links <= _EXHAUSTIVE_LINK_LIMIT
    )
    monitor_list = list(dict.fromkeys(monitors))
    pairs = [
        (monitor_list[a], monitor_list[b])
        for a in range(len(monitor_list))
        for b in range(a + 1, len(monitor_list))
    ]
    if pair_budget is not None and len(pairs) > pair_budget:
        generator = ensure_rng(rng)
        picks = generator.choice(len(pairs), size=pair_budget, replace=False)
        # Keep canonical pair order so only membership — not sequencing —
        # depends on the draw.
        pairs = [pairs[i] for i in sorted(int(p) for p in picks)]
    candidates: list[MeasurementPath] = []
    for source, target in pairs:
        try:
            if use_exhaustive:
                sequences = sorted(
                    all_simple_paths(topology, source, target, max_hops=max_hops),
                    key=len,
                )[:max_per_pair]
            else:
                sequences = k_shortest_paths(topology, source, target, max_per_pair)
                if max_hops is not None:
                    sequences = [seq for seq in sequences if len(seq) - 1 <= max_hops]
        except NoPathError:
            continue
        candidates.extend(MeasurementPath(topology, seq) for seq in sequences)
    return candidates


def select_paths_rank_greedy(
    topology: Topology,
    candidates: Sequence[MeasurementPath],
    *,
    target_rank: int | None = None,
) -> PathSet:
    """Greedily keep candidates that increase the rank of ``R``.

    Scans ``candidates`` in order, appending a path iff it raises the rank
    of the running routing matrix, and stops early once ``target_rank``
    (default: the number of links) is reached.  Rank growth is tracked
    incrementally with Gram-Schmidt (O(rank x num_links) per candidate),
    which keeps selection fast on ISP-scale topologies with thousands of
    candidate paths.
    """
    goal = topology.num_links if target_rank is None else target_rank
    selected = PathSet(topology)
    if goal == 0:
        return selected
    # Orthonormal basis of the row space accumulated so far.
    basis = np.zeros((0, topology.num_links))
    for path in candidates:
        row = np.zeros(topology.num_links)
        row[list(path.link_indices)] = 1.0
        residual = row - basis.T @ (basis @ row) if basis.shape[0] else row.copy()
        norm = float(np.linalg.norm(residual))
        # Re-orthogonalise once for numerical robustness (classic
        # Gram-Schmidt can lose orthogonality on near-dependent rows).
        if norm > 1e-12 and basis.shape[0]:
            residual = residual - basis.T @ (basis @ residual)
            norm = float(np.linalg.norm(residual))
        if norm > 1e-8:
            basis = np.vstack([basis, residual / norm])
            selected.append(path)
            if basis.shape[0] >= goal:
                break
    return selected


def select_identifiable_paths(
    topology: Topology,
    monitors: Sequence[NodeId],
    *,
    redundancy: int = 3,
    max_per_pair: int = 20,
    max_hops: int | None = None,
    require_full_rank: bool = False,
    pair_budget: int | None = None,
    rng: object = None,
) -> PathSet:
    """Select a measurement path set for the given monitors.

    Pipeline: enumerate candidates per monitor pair (optionally over a
    seeded ``pair_budget``-sized sample of pairs — see
    :func:`enumerate_candidate_paths`), shuffle them (the randomised
    selection the paper's experiments use), keep a rank-greedy core, then
    append up to ``redundancy`` additional distinct paths that do *not*
    increase rank — these redundant rows are what give the scapegoating
    detector its consistency checks.

    Raises :class:`IdentifiabilityError` when ``require_full_rank`` is set
    and the candidates cannot span all links (too few monitors, or monitors
    badly placed).
    """
    if redundancy < 0:
        raise ValidationError(f"redundancy must be >= 0, got {redundancy}")
    generator = ensure_rng(rng)
    candidates = enumerate_candidate_paths(
        topology,
        monitors,
        max_per_pair=max_per_pair,
        max_hops=max_hops,
        pair_budget=pair_budget,
        rng=generator,
    )
    order = list(range(len(candidates)))
    generator.shuffle(order)
    shuffled = [candidates[i] for i in order]

    core = select_paths_rank_greedy(topology, shuffled)
    if require_full_rank:
        # Only pay for the rank check when the caller asked for the
        # guarantee — the greedy core already tracks rank incrementally.
        rank = column_rank(core.routing_matrix())
        if rank < topology.num_links:
            raise IdentifiabilityError(
                f"monitors {list(monitors)!r} can only identify rank {rank} of "
                f"{topology.num_links} links"
            )

    chosen = {path.key() for path in core}
    extras_added = 0
    for path in shuffled:
        if extras_added >= redundancy:
            break
        if path.key() in chosen:
            continue
        core.append(path)
        chosen.add(path.key())
        extras_added += 1
    return core


def select_paths_min_presence(
    topology: Topology,
    monitors: Sequence[NodeId],
    *,
    redundancy: int = 3,
    max_per_pair: int = 20,
    max_hops: int | None = None,
    rng: object = None,
) -> PathSet:
    """Rank-greedy selection that also minimises node presence ratios.

    The security-aware counterpart of :func:`select_identifiable_paths`
    (Section VI of the paper): among the candidates that would raise the
    rank of ``R``, each step picks the one keeping the *node load* (how
    many selected paths each node sits on) as flat as possible — first
    minimising the resulting maximum load, then the sum of squared loads.
    A compromised node's manipulation power grows with its presence ratio
    (Theorem 2), so flat loads bound the damage of any single future
    compromise at the path-selection level, complementing the
    placement-level defence in :mod:`repro.monitors.placement`.

    Redundant rows (needed by the consistency detector) are appended with
    the same load-aware preference.
    """
    if redundancy < 0:
        raise ValidationError(f"redundancy must be >= 0, got {redundancy}")
    generator = ensure_rng(rng)
    candidates = enumerate_candidate_paths(
        topology, monitors, max_per_pair=max_per_pair, max_hops=max_hops
    )
    order = list(range(len(candidates)))
    generator.shuffle(order)
    remaining = [candidates[i] for i in order]

    selected = PathSet(topology)
    basis = np.zeros((0, topology.num_links))
    load: dict[NodeId, int] = {node: 0 for node in topology.nodes()}

    def residual_norm(path: MeasurementPath) -> float:
        row = np.zeros(topology.num_links)
        row[list(path.link_indices)] = 1.0
        if basis.shape[0]:
            row = row - basis.T @ (basis @ row)
        return float(np.linalg.norm(row))

    def load_score(path: MeasurementPath) -> tuple[int, int]:
        peak = 0
        sum_sq = 0
        touched = set(path.nodes)
        for node, count in load.items():
            after = count + (1 if node in touched else 0)
            peak = max(peak, after)
            sum_sq += after * after
        return (peak, sum_sq)

    # Phase 1: identifiability with flat loads.
    while basis.shape[0] < topology.num_links and remaining:
        best = None
        best_key = None
        for path in remaining:
            if residual_norm(path) <= 1e-8:
                continue
            key = load_score(path)
            if best_key is None or key < best_key:
                best, best_key = path, key
        if best is None:
            break
        row = np.zeros(topology.num_links)
        row[list(best.link_indices)] = 1.0
        if basis.shape[0]:
            row = row - basis.T @ (basis @ row)
        row = row / np.linalg.norm(row)
        basis = np.vstack([basis, row])
        selected.append(best)
        for node in best.nodes:
            load[node] += 1
        remaining = [p for p in remaining if p is not best]

    # Phase 2: redundancy rows, still load-aware, no duplicates.
    chosen = {path.key() for path in selected}
    for _ in range(redundancy):
        best = None
        best_key = None
        for path in remaining:
            if path.key() in chosen:
                continue
            key = load_score(path)
            if best_key is None or key < best_key:
                best, best_key = path, key
        if best is None:
            break
        selected.append(best)
        chosen.add(best.key())
        for node in best.nodes:
            load[node] += 1
        remaining = [p for p in remaining if p is not best]
    return selected
