"""Routing-matrix construction and identifiability analysis.

The measurement model is ``y = R x`` (eq. 1).  A link metric ``x_j`` is
*identifiable* from the chosen paths exactly when the coordinate vector
``e_j`` lies in the row space of ``R`` — equivalently, when ``e_j`` is
orthogonal to the null space of ``R``.  Full column rank means every link
is identifiable and eq. (2)'s least-squares inverse is exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse

from repro.routing.paths import PathSet
from repro.utils.linalg import nullspace

__all__ = [
    "routing_matrix",
    "density",
    "identifiable_links",
    "identifiability_report",
    "IdentifiabilityReport",
]

#: Threshold on null-space row norms below which a link counts identifiable.
_IDENTIFIABLE_TOL = 1e-8


def routing_matrix(path_set: PathSet) -> np.ndarray:
    """The 0/1 measurement matrix ``R`` of the path set (|P| x |L|)."""
    return path_set.routing_matrix()


def density(matrix) -> float:
    """Fraction of nonzero entries of ``R`` (0.0 for empty matrices).

    Accepts dense arrays and ``scipy.sparse`` matrices alike; the backend
    dispatch in :mod:`repro.tomography.backends` keys its dense/sparse
    heuristic on this number.
    """
    if scipy.sparse.issparse(matrix):
        rows, cols = matrix.shape
        size = rows * cols
        return matrix.nnz / size if size else 0.0
    mat = np.asarray(matrix)
    if mat.size == 0:
        return 0.0
    return float(np.count_nonzero(mat)) / mat.size


def identifiable_links(matrix: np.ndarray, tol: float = _IDENTIFIABLE_TOL) -> list[int]:
    """Indices of links whose metric is uniquely determined by ``R``.

    Link ``j`` is identifiable iff row ``j`` of a null-space basis of ``R``
    is (numerically) zero: any two metric vectors consistent with the same
    measurements then agree in coordinate ``j``.
    """
    mat = np.asarray(matrix, dtype=float)
    return _identifiable_from_basis(nullspace(mat), mat.shape[1], tol)


def _identifiable_from_basis(
    basis: np.ndarray, num_links: int, tol: float
) -> list[int]:
    if basis.shape[1] == 0:
        return list(range(num_links))
    row_norms = np.linalg.norm(basis, axis=1)
    return [j for j in range(num_links) if row_norms[j] < tol]


@dataclass(frozen=True)
class IdentifiabilityReport:
    """Summary of how well a path set identifies the topology's links.

    Attributes
    ----------
    num_paths, num_links:
        Dimensions of ``R``.
    rank:
        Numerical rank of ``R``.
    full_column_rank:
        True when every link is identifiable (eq. 2 well posed).
    identifiable:
        Sorted link indices with uniquely determined metrics.
    unidentifiable:
        The complement.
    redundancy:
        ``num_paths - rank`` — the number of consistency checks available
        to the scapegoating detector; zero redundancy (square invertible
        ``R``) makes every attack undetectable (Theorem 3).
    """

    num_paths: int
    num_links: int
    rank: int
    full_column_rank: bool
    identifiable: tuple[int, ...]
    unidentifiable: tuple[int, ...]
    redundancy: int

    def coverage(self) -> float:
        """Fraction of links identifiable (1.0 when fully identifiable)."""
        if self.num_links == 0:
            return 1.0
        return len(self.identifiable) / self.num_links


def identifiability_report(path_set: PathSet) -> IdentifiabilityReport:
    """Build an :class:`IdentifiabilityReport` for ``path_set``.

    One shared :class:`~repro.tomography.linear_system.LinearSystem`
    supplies rank, full-rank flag, and the nullspace basis — previously
    three independent SVDs of the same matrix.
    """
    from repro.tomography.linear_system import LinearSystem

    matrix = path_set.routing_matrix()
    system = LinearSystem(matrix)
    ident = _identifiable_from_basis(
        system.nullspace, matrix.shape[1], _IDENTIFIABLE_TOL
    )
    ident_set = set(ident)
    unident = [j for j in range(matrix.shape[1]) if j not in ident_set]
    return IdentifiabilityReport(
        num_paths=matrix.shape[0],
        num_links=matrix.shape[1],
        rank=system.rank,
        full_column_rank=system.is_full_column_rank,
        identifiable=tuple(ident),
        unidentifiable=tuple(unident),
        redundancy=system.redundancy,
    )
