"""Residual localisation — which paths witness the manipulation.

Beyond the paper's binary verdict, the per-path residual carries location
information: under an imperfect cut, the attacker-free victim paths are
the rows whose observed measurement cannot be reconciled with any link
metric vector, so large-residual rows point at the neighbourhood of the
inconsistency.  ``witness_report`` cross-references those rows with the
links they traverse, giving the operator a starting set for out-of-band
verification (e.g. direct SNMP polls on exactly those links).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.detection.consistency import DetectionResult
from repro.routing.paths import PathSet

__all__ = ["suspicious_paths", "witness_report"]


def suspicious_paths(
    result: DetectionResult, *, per_path_threshold: float | None = None
) -> list[int]:
    """Rows whose absolute residual exceeds the per-path threshold.

    Default threshold: ``alpha / num_paths`` — the level at which a single
    path would, on its own, account for an equal share of a barely-alarming
    total residual.  Rows are returned most-suspicious first.
    """
    residual = np.abs(result.per_path_residual)
    if per_path_threshold is None:
        per_path_threshold = result.threshold / max(residual.size, 1)
    rows = [int(i) for i in np.argsort(-residual) if residual[i] > per_path_threshold]
    return rows


def witness_report(
    path_set: PathSet,
    result: DetectionResult,
    *,
    per_path_threshold: float | None = None,
    top_links: int = 10,
) -> dict:
    """Summarise where the inconsistency lives.

    Returns a dict with the suspicious rows, and the links ranked by how
    many suspicious paths traverse them (ties broken by link index).  The
    ranking is a heuristic lead, not an identification — the true attacker
    may or may not appear (their links *also* sit on suspicious rows in
    imperfect-cut attacks).
    """
    rows = suspicious_paths(result, per_path_threshold=per_path_threshold)
    counts: Counter[int] = Counter()
    for row in rows:
        counts.update(path_set.path(row).link_indices)
    ranked = sorted(counts.items(), key=lambda item: (-item[1], item[0]))[:top_links]
    return {
        "suspicious_paths": rows,
        "implicated_links": [link for link, _ in ranked],
        "link_hit_counts": dict(ranked),
        "num_suspicious": len(rows),
    }
