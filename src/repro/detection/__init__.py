"""Scapegoating detection (Section IV-B of the paper).

The detector re-checks the measurement model: estimate ``x_hat`` from the
observed ``y'`` and test whether ``R x_hat`` reproduces ``y'``.  Honest
(noiseless) measurements always lie in the column space of ``R``;
manipulations that are *not* expressible as a link-metric change leave an
``L_1`` residual that the detector thresholds (eq. 23 / Remark 4).
Theorem 3 fixes the blind spots: perfect cuts and square routing matrices.

- :class:`~repro.detection.consistency.ConsistencyDetector` — the paper's
  detector with threshold ``alpha`` (experiments: 200 ms);
- :mod:`~repro.detection.localization` — which paths witness the
  inconsistency (an extension beyond the paper: the witness rows are
  exactly the attacker-free victim paths, narrowing the search);
- :class:`~repro.detection.auditor.TomographyAuditor` — estimate +
  diagnose + detect in one operator-facing call;
- :class:`~repro.detection.online.OnlineConsistencyDetector` — the same
  residual test over an *evolving* system: per-epoch path churn patches
  the shared factorization instead of rebuilding detector state.
"""

from repro.detection.consistency import ConsistencyDetector, DetectionResult
from repro.detection.online import OnlineConsistencyDetector
from repro.detection.robust import RobustEstimate, TrimmedLeastSquares
from repro.detection.localization import suspicious_paths, witness_report
from repro.detection.auditor import AuditReport, TomographyAuditor

__all__ = [
    "ConsistencyDetector",
    "DetectionResult",
    "OnlineConsistencyDetector",
    "RobustEstimate",
    "TrimmedLeastSquares",
    "suspicious_paths",
    "witness_report",
    "AuditReport",
    "TomographyAuditor",
]
