"""Streaming consistency detection over an evolving measurement system.

The batch :class:`~repro.detection.consistency.ConsistencyDetector` is
built once over a fixed ``R`` and revalidates an injected system by full
matrix comparison (``O(m n)``) — the right contract for one-shot audits,
and exactly the wrong one for a measurement stream where paths fail and
recover every epoch.  :class:`OnlineConsistencyDetector` instead *owns*
an evolving :class:`~repro.tomography.linear_system.LinearSystem`:

- :meth:`advance` applies one epoch of path churn through
  :meth:`LinearSystem.evolve`, so the shared factorization is patched by
  rank-1 update/downdate instead of recomputed (with a certified cold
  fallback — correctness never rides on the fast path);
- :meth:`check` thresholds ``||R x_hat - y'||_1`` (eq. 23 / Remark 4)
  against the *current* system, matrix-free: one estimate plus one
  forward predict, never a dense residual projector.

Each check emits an ``online_check`` obs event tagged with the epoch, so
run logs reconstruct the detection trajectory of a whole campaign.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DetectionError
from repro.obs import core as obs
from repro.perf import instrumentation as perf
from repro.detection.consistency import DetectionResult
from repro.tomography.estimator_zoo import resolve_estimator
from repro.tomography.linear_system import LinearSystem

__all__ = ["OnlineConsistencyDetector"]


class OnlineConsistencyDetector:
    """Residual-thresholding detector that tracks an evolving ``R``.

    Parameters
    ----------
    system:
        The initial measurement system — a built
        :class:`~repro.tomography.linear_system.LinearSystem` or a raw
        routing matrix (dense or scipy-sparse) to wrap.
    alpha:
        Detection threshold on the ``L_1`` residual (paper experiments:
        200 ms); non-negative.
    estimator:
        Zoo *name* for the defender's inversion (``"ls"``, ``"bayes-map"``,
        ...) or None for the ``REPRO_ESTIMATOR`` knob.  Only names are
        accepted — the estimator must be re-resolved over every evolved
        system, so a pre-built instance (pinned to one system) cannot
        follow the stream.
    estimator_params:
        Keyword parameters forwarded to the zoo on every re-resolution.
    """

    def __init__(
        self,
        system,
        alpha: float = 200.0,
        *,
        estimator: str | None = None,
        estimator_params: dict | None = None,
    ) -> None:
        if alpha < 0:
            raise DetectionError(f"alpha must be non-negative, got {alpha}")
        if estimator is not None and not isinstance(estimator, str):
            raise DetectionError(
                "online detection re-resolves the estimator per epoch; "
                "pass a zoo name, not a built instance"
            )
        self._system = (
            system if isinstance(system, LinearSystem) else LinearSystem(system)
        )
        if self._system.num_paths == 0 or self._system.num_links == 0:
            raise DetectionError(
                f"degenerate routing matrix shape "
                f"({self._system.num_paths}, {self._system.num_links})"
            )
        self.alpha = float(alpha)
        self._estimator_name = estimator
        self._estimator_params = dict(estimator_params or {})
        self._estimator = resolve_estimator(
            estimator, system=self._system, **self._estimator_params
        )
        self.epoch = 0
        self.checks = 0

    # -- current state -----------------------------------------------------

    @property
    def system(self) -> LinearSystem:
        """The measurement system the next :meth:`check` runs against."""
        return self._system

    @property
    def estimator(self):
        """The defender's inversion over the current system."""
        return self._estimator

    @property
    def structurally_blind(self) -> bool:
        """True when the current ``R`` leaves no consistency residual.

        Identifiability shifts as the ensemble churns (rank == num_paths
        can come and go with path failures), so unlike the batch
        detector this is a live property, not a construction-time flag.
        """
        return bool(self._system.rank == self._system.num_paths)

    # -- evolution ---------------------------------------------------------

    def advance(
        self,
        *,
        add_rows: tuple | list = (),
        remove_indices: tuple | list = (),
    ) -> LinearSystem:
        """Apply one epoch of path churn; returns the evolved system.

        ``remove_indices`` refer to rows of the *current* system.  The
        evolved system keeps this detector's estimator family (re-resolved
        over the patched factors) and becomes the target of subsequent
        :meth:`check` calls.  A no-op epoch (no churn) still counts — the
        epoch index tracks stream time, not matrix versions.
        """
        if add_rows or remove_indices:
            self._system = self._system.evolve(
                add_rows=add_rows, remove_indices=remove_indices
            )
            if self._system.num_paths == 0:
                raise DetectionError("churn removed every measurement path")
            self._estimator = resolve_estimator(
                self._estimator_name, system=self._system, **self._estimator_params
            )
        self.epoch += 1
        return self._system

    # -- detection ---------------------------------------------------------

    def check(self, observed: np.ndarray) -> DetectionResult:
        """Threshold one epoch's measurement vector against the live system.

        Matrix-free on the sparse backend: one estimator solve plus one
        forward ``predict`` — the dense matrix and projectors are never
        touched.
        """
        y = np.asarray(observed, dtype=float)
        if y.shape != (self._system.num_paths,):
            raise DetectionError(
                f"observed vector must have shape ({self._system.num_paths},), "
                f"got {y.shape}"
            )
        if not np.all(np.isfinite(y)):
            raise DetectionError("observed measurements must be finite")
        perf.record_event("online_check")
        estimate = self._estimator.estimate(y)
        residual = self._system.predict(estimate) - y
        residual_l1 = float(np.abs(residual).sum())
        detected = bool(residual_l1 > self.alpha)
        self.checks += 1
        if obs.is_enabled():
            obs.event(
                "online_check",
                epoch=self.epoch,
                paths=self._system.num_paths,
                residual_l1=residual_l1,
                detected=detected,
                alpha=self.alpha,
            )
        return DetectionResult(
            detected=detected,
            residual_l1=residual_l1,
            threshold=self.alpha,
            per_path_residual=residual,
            estimate=estimate,
        )
