"""The consistency detector of eq. (23) / Remark 4.

Declare scapegoating when ``||R x_hat - y'||_1 > alpha``.  With noiseless
measurements any positive residual is suspicious; ``alpha`` absorbs real
measurement randomness (the paper sets 200 ms empirically; the detection
benches sweep it).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.contracts import check_routing_matrix, contract
from repro.exceptions import DetectionError
from repro.tomography.estimator_zoo import resolve_estimator
from repro.tomography.linear_system import LinearSystem, measurement_residual

__all__ = ["DetectionResult", "ConsistencyDetector"]


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one detector invocation.

    ``residual_l1`` is the statistic; ``detected`` the verdict;
    ``per_path_residual`` the vector whose support localises witnesses.
    """

    detected: bool
    residual_l1: float
    threshold: float
    per_path_residual: np.ndarray
    estimate: np.ndarray

    def max_path_residual(self) -> float:
        """Largest single-path inconsistency (localisation headline)."""
        if self.per_path_residual.size == 0:
            return 0.0
        return float(np.max(np.abs(self.per_path_residual)))


class ConsistencyDetector:
    """Residual-thresholding detector over a fixed routing matrix.

    Parameters
    ----------
    routing_matrix:
        The operator's ``R``.
    alpha:
        Detection threshold on the ``L_1`` residual (paper experiments:
        200 ms).  Must be non-negative; zero implements the idealised
        noiseless test of eq. (23).
    estimator:
        Which inversion the defender runs before thresholding: a zoo
        name (``"ls"`` / ``"bayes-map"`` / ...), an already-built
        :class:`~repro.tomography.estimator_zoo.Estimator` over the same
        system, or None to resolve the ``REPRO_ESTIMATOR`` knob.  The
        default (``ls``) reproduces eq. (23) bit-identically; biased
        families need :func:`~repro.tomography.estimator_zoo.calibrated_alpha`
        to keep ``alpha`` meaning "manipulation evidence".

    Note the structural blind spots (Theorem 3): if ``R`` is square and
    invertible the residual is *identically zero* whatever the attacker
    does — the detector warns about this at construction via
    :attr:`structurally_blind`.
    """

    @contract(routing_matrix=check_routing_matrix)
    def __init__(
        self,
        routing_matrix: np.ndarray,
        alpha: float = 200.0,
        *,
        system: LinearSystem | None = None,
        estimator=None,
    ) -> None:
        matrix = np.asarray(routing_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise DetectionError(f"degenerate routing matrix shape {matrix.shape}")
        if alpha < 0:
            raise DetectionError(f"alpha must be non-negative, got {alpha}")
        self._matrix = matrix
        # One shared factorisation serves both the estimator operator and
        # the rank query below (previously an independent matrix_rank).
        # Callers running many detectors over one topology (the sweep
        # engine) inject the already-factorised kernel instead.
        if system is not None:
            if not np.array_equal(system.matrix, matrix):
                raise DetectionError(
                    "injected LinearSystem does not match the routing matrix"
                )
            self._system = system
        else:
            self._system = LinearSystem(matrix)
        self.alpha = float(alpha)
        if estimator is None or isinstance(estimator, str):
            self.estimator = resolve_estimator(estimator, system=self._system)
        else:
            est_system = getattr(estimator, "system", None)
            if est_system is None or not np.array_equal(est_system.matrix, matrix):
                raise DetectionError(
                    "injected estimator is not built over this routing matrix"
                )
            self.estimator = estimator
        # Residuals vanish identically iff rows span no redundancy: every
        # y' is consistent with some x.  That is rank == num_paths (which
        # includes the square invertible case of Theorem 3).
        self.structurally_blind = bool(self._system.rank == matrix.shape[0])

    @property
    def routing_matrix(self) -> np.ndarray:
        """A copy of ``R``."""
        return self._matrix.copy()

    def check(self, observed: np.ndarray) -> DetectionResult:
        """Run the detector on one observed measurement vector.

        Estimate and residual both come from the shared kernel — under
        the sparse backend this is two sparse matvecs per check, never a
        dense operator.
        """
        y = np.asarray(observed, dtype=float)
        if y.shape != (self._matrix.shape[0],):
            raise DetectionError(
                f"observed vector must have shape ({self._matrix.shape[0]},), got {y.shape}"
            )
        if not np.all(np.isfinite(y)):
            raise DetectionError("observed measurements must be finite")
        estimate = self.estimator.estimate(y)
        residual = measurement_residual(self._matrix, estimate, y)
        residual_l1 = float(np.abs(residual).sum())
        return DetectionResult(
            detected=bool(residual_l1 > self.alpha),
            residual_l1=residual_l1,
            threshold=self.alpha,
            per_path_residual=residual,
            estimate=estimate,
        )

    def check_batch(self, observed_block: np.ndarray) -> list[DetectionResult]:
        """Run the detector on a block of measurement vectors (|P| x k).

        One multi-RHS kernel call covers the whole block — a single GEMM
        on the dense backend, one batched Gram solve on the sparse one —
        so Monte-Carlo chunks pay one solve instead of ``k``.  Verdicts
        are identical to ``k`` independent :meth:`check` calls.
        """
        block = np.asarray(observed_block, dtype=float)
        if block.ndim != 2 or block.shape[0] != self._matrix.shape[0]:
            raise DetectionError(
                f"observed block must have shape ({self._matrix.shape[0]}, k), "
                f"got {block.shape}"
            )
        if not np.all(np.isfinite(block)):
            raise DetectionError("observed measurements must be finite")
        estimates = self.estimator.estimate_batch(block)
        residuals = self._matrix @ estimates - block
        residual_l1 = np.abs(residuals).sum(axis=0)
        return [
            DetectionResult(
                detected=bool(residual_l1[j] > self.alpha),
                residual_l1=float(residual_l1[j]),
                threshold=self.alpha,
                per_path_residual=residuals[:, j],
                estimate=estimates[:, j],
            )
            for j in range(block.shape[1])
        ]
