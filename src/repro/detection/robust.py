"""Trimmed least squares: estimation that survives a few forged paths.

The paper's detector (eq. 23) answers *whether* measurements were
manipulated; an operator also wants a best-effort estimate of what the
network actually looks like.  When the attacker controls only a minority
of measurement paths, the redundant rows contain enough honest information
to recover: :class:`TrimmedLeastSquares` repeatedly drops one row and
re-estimates until the remaining system is consistent (all residuals
below tolerance).  Each step removes the row whose *leave-one-out refit*
shrinks the residual sum of squares the most — more reliable than
dropping the largest raw residual, which least squares can smear across
honest rows that share links with the forged one.

Hard limits keep the procedure honest:

- a row is only dropped while the remaining rows still have the original
  column rank — identifiability is never silently sacrificed;
- if the residuals cannot be brought below tolerance within those limits,
  the result is flagged ``converged=False`` rather than returning a
  confident wrong answer.

Against the paper's attacks this gives the expected split: single-path or
small-support manipulations are repaired exactly; a perfect-cut stealthy
attack is *not* (its forged measurements are consistent, nothing to trim —
Theorem 3's blind spot again); a broad imperfect-cut attack that touches
most rows exhausts the trimming budget and is reported as unrecoverable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DetectionError
from repro.tomography.linear_system import LinearSystem

__all__ = ["RobustEstimate", "TrimmedLeastSquares"]


@dataclass(frozen=True)
class RobustEstimate:
    """Result of one trimmed-least-squares pass.

    ``estimate`` is computed from the retained rows only;
    ``excluded_paths`` lists dropped rows in exclusion order;
    ``converged`` is False when residuals stayed above tolerance but no
    further row could be dropped (rank or budget limit).
    """

    estimate: np.ndarray
    excluded_paths: tuple[int, ...]
    converged: bool
    iterations: int
    final_max_residual: float

    @property
    def num_excluded(self) -> int:
        """How many measurement rows were rejected as inconsistent."""
        return len(self.excluded_paths)


class TrimmedLeastSquares:
    """Greedy residual-trimming estimator over a fixed routing matrix.

    Parameters
    ----------
    routing_matrix:
        The operator's ``R`` (needs redundancy: trimming a square system
        is impossible without losing identifiability).
    residual_tolerance:
        Per-path absolute residual below which a system counts consistent
        (same units as measurements; default 1.0 ms — far below any
        meaningful manipulation, far above solver round-off).
    max_exclusions:
        Optional cap on dropped rows (default: limited only by rank).
    """

    def __init__(
        self,
        routing_matrix: np.ndarray,
        *,
        residual_tolerance: float = 1.0,
        max_exclusions: int | None = None,
    ) -> None:
        matrix = np.asarray(routing_matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise DetectionError(f"degenerate routing matrix shape {matrix.shape}")
        if residual_tolerance <= 0:
            raise DetectionError(
                f"residual_tolerance must be positive, got {residual_tolerance}"
            )
        if max_exclusions is not None and max_exclusions < 0:
            raise DetectionError(f"max_exclusions must be >= 0, got {max_exclusions}")
        self._matrix = matrix
        self._rank = LinearSystem(matrix).rank
        self.residual_tolerance = float(residual_tolerance)
        self.max_exclusions = max_exclusions

    @property
    def routing_matrix(self) -> np.ndarray:
        """A copy of ``R``."""
        return self._matrix.copy()

    def estimate(self, observed: np.ndarray) -> RobustEstimate:
        """Run the trimming loop on one observed measurement vector."""
        y = np.asarray(observed, dtype=float)
        if y.shape != (self._matrix.shape[0],):
            raise DetectionError(
                f"observed vector must have shape ({self._matrix.shape[0]},), got {y.shape}"
            )
        if not np.all(np.isfinite(y)):
            raise DetectionError("observed measurements must be finite")

        keep = list(range(self._matrix.shape[0]))
        excluded: list[int] = []
        iterations = 0
        while True:
            iterations += 1
            sub = self._matrix[keep]
            x_hat = LinearSystem(sub).estimate(y[keep])
            residual = np.abs(sub @ x_hat - y[keep])
            worst = float(np.max(residual)) if residual.size else 0.0
            if worst <= self.residual_tolerance:
                return RobustEstimate(
                    estimate=x_hat,
                    excluded_paths=tuple(excluded),
                    converged=True,
                    iterations=iterations,
                    final_max_residual=worst,
                )
            if self.max_exclusions is not None and len(excluded) >= self.max_exclusions:
                return RobustEstimate(
                    estimate=x_hat,
                    excluded_paths=tuple(excluded),
                    converged=False,
                    iterations=iterations,
                    final_max_residual=worst,
                )
            # Leave-one-out: among rank-preserving removals, drop the row
            # whose refit leaves the smallest residual sum of squares.
            best_pos = None
            best_sse = None
            for pos in range(len(keep)):
                if residual[pos] <= self.residual_tolerance:
                    # Removing an already-consistent row cannot be what
                    # fixes the system; skip to keep the scan cheap.
                    continue
                candidate = keep[:pos] + keep[pos + 1 :]
                candidate_matrix = self._matrix[candidate]
                # One kernel per candidate: rank check and refit share a
                # single factorisation instead of two independent SVDs.
                candidate_system = LinearSystem(candidate_matrix)
                if candidate_system.rank < self._rank:
                    continue
                refit = candidate_system.estimate(y[candidate])
                sse = float(
                    np.sum((candidate_matrix @ refit - y[candidate]) ** 2)
                )
                if best_sse is None or sse < best_sse:
                    best_pos, best_sse = pos, sse
            if best_pos is None:
                return RobustEstimate(
                    estimate=x_hat,
                    excluded_paths=tuple(excluded),
                    converged=False,
                    iterations=iterations,
                    final_max_residual=worst,
                )
            excluded.append(keep[best_pos])
            keep = keep[:best_pos] + keep[best_pos + 1 :]
