"""Operator-facing audit: tomography + diagnosis + manipulation check.

The paper argues the consistency check "should follow immediately the
network tomography process" (Section VII-3).  :class:`TomographyAuditor`
packages that pipeline: given observed measurements it estimates link
metrics, classifies link states, runs the consistency detector, and — when
the detector fires — attaches the witness localisation, flagging the
diagnosis as untrustworthy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.detection.consistency import ConsistencyDetector, DetectionResult
from repro.detection.localization import witness_report
from repro.metrics.states import StateThresholds
from repro.routing.paths import PathSet
from repro.tomography.diagnosis import DiagnosisReport, diagnose

__all__ = ["AuditReport", "TomographyAuditor"]


@dataclass(frozen=True)
class AuditReport:
    """Joint result of one audited tomography round.

    ``trustworthy`` is the headline: when False, the diagnosis must not
    drive recovery actions (its abnormal set may be a scapegoat).
    """

    diagnosis: DiagnosisReport
    detection: DetectionResult
    witnesses: dict | None

    @property
    def trustworthy(self) -> bool:
        """True when the consistency check passed."""
        return not self.detection.detected

    def summary(self) -> dict:
        """Flat summary for experiment logs."""
        out = {
            "trustworthy": self.trustworthy,
            "residual_l1": self.detection.residual_l1,
            "abnormal_links": list(self.diagnosis.abnormal),
            "uncertain_links": list(self.diagnosis.uncertain),
        }
        if self.witnesses is not None:
            out["suspicious_paths"] = self.witnesses["suspicious_paths"]
            out["implicated_links"] = self.witnesses["implicated_links"]
        return out


class TomographyAuditor:
    """Estimate, classify, and verify one measurement round.

    Parameters
    ----------
    path_set:
        The measurement paths (fixes ``R``).
    thresholds:
        Link-state bounds for the diagnosis.
    alpha:
        Consistency-detector threshold (paper: 200 ms).
    system:
        Optional pre-factorised
        :class:`~repro.tomography.linear_system.LinearSystem` over the
        path set's routing matrix, forwarded to the detector so audits
        share the sweep engine's per-topology factorisation.
    estimator:
        Inversion family the audited operator runs — a zoo name, a
        built estimator, or None for the ``REPRO_ESTIMATOR`` knob
        (default ``ls``).  Forwarded to the detector; the diagnosis is
        computed from the same estimate the detector thresholds.
    """

    def __init__(
        self,
        path_set: PathSet,
        *,
        thresholds: StateThresholds | None = None,
        alpha: float = 200.0,
        system=None,
        estimator=None,
    ) -> None:
        self.path_set = path_set
        self.thresholds = thresholds if thresholds is not None else StateThresholds()
        self.detector = ConsistencyDetector(
            path_set.routing_matrix(), alpha=alpha, system=system, estimator=estimator
        )

    def audit(self, observed: np.ndarray) -> AuditReport:
        """Run the full pipeline on one observed measurement vector."""
        detection = self.detector.check(observed)
        diagnosis = diagnose(detection.estimate, self.thresholds)
        witnesses = (
            witness_report(self.path_set, detection) if detection.detected else None
        )
        return AuditReport(diagnosis=diagnosis, detection=detection, witnesses=witnesses)
