"""Central registry of the library's ``REPRO_*`` environment knobs.

Every environment variable the library reads is declared here — name,
type, default, allowed values, and a one-line doc string — and every
dispatch site reads it *through* this module (:func:`raw` for sites that
own their parsing and error text, :func:`get_bool` / :func:`get_str` /
:func:`get_float` for plain typed reads).  The whole-program analyzer
(rule RP007, :mod:`repro.analysis.configscan`) enforces the discipline
statically: an ``os.environ`` read of a ``REPRO_*`` name anywhere else,
a knob name passed to an accessor that the registry does not declare,
and a registry entry no dispatch site reads are all analysis failures.

The payoff is bit-reproducibility of configured pipelines: a knob can
never silently diverge between dispatch sites, because there is exactly
one declaration and every read goes through it.

This module is deliberately tiny and leaf-level (stdlib plus
:mod:`repro.exceptions` only) so that even the observability layer —
itself imported by nearly everything — can read its knobs here without
import cycles.

Values are read from ``os.environ`` at *call* time, never cached at
import, so tests can monkeypatch the environment per case.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.exceptions import ValidationError

__all__ = [
    "Knob",
    "REGISTRY",
    "declared",
    "get_bool",
    "get_float",
    "get_str",
    "knobs",
    "raw",
]

#: Values accepted as "on" for boolean knobs (anything else is off).
_TRUTHY = frozenset({"1", "true", "yes", "on"})


@dataclass(frozen=True)
class Knob:
    """Declaration of one environment knob.

    ``kind`` is ``"bool"`` / ``"str"`` / ``"float"`` / ``"choice"``;
    ``choices`` constrains ``"choice"`` knobs; ``default`` is the parsed
    value used when the variable is unset or empty.  ``doc`` is the
    operator-facing one-liner rendered into the analyzer's reports.
    """

    name: str
    kind: str
    default: object
    doc: str
    choices: tuple[str, ...] | None = None


#: Every environment variable the library reads, keyed by name.
REGISTRY: dict[str, Knob] = {
    knob.name: knob
    for knob in (
        Knob(
            name="REPRO_OBS",
            kind="bool",
            default=False,
            doc="write a structured JSONL event log + run manifest for every run",
        ),
        Knob(
            name="REPRO_OBS_PATH",
            kind="str",
            default="",
            doc="exact run-log file path (overrides REPRO_OBS_DIR)",
        ),
        Knob(
            name="REPRO_OBS_DIR",
            kind="str",
            default="obs_runs",
            doc="directory for timestamped run logs when REPRO_OBS_PATH is unset",
        ),
        Knob(
            name="REPRO_CONTRACTS",
            kind="bool",
            default=False,
            doc="validate the y = R x algebra contracts at public entry points",
        ),
        Knob(
            name="REPRO_BACKEND",
            kind="choice",
            default="auto",
            choices=("dense", "sparse", "auto"),
            doc="tomography kernel backend (auto = size/density heuristic)",
        ),
        Knob(
            name="REPRO_ESTIMATOR",
            kind="choice",
            default="ls",
            choices=("ls", "bayes-map", "l1", "ridge", "nnls"),
            doc=(
                "defender-side inversion estimator "
                "(ls = the paper's least squares, stays bit-identical)"
            ),
        ),
        Knob(
            name="REPRO_LP_ENGINE",
            kind="choice",
            default="scipy",
            choices=("scipy", "highs", "auto"),
            doc="manipulation-LP engine (auto = warm-started HiGHS when importable)",
        ),
        Knob(
            name="REPRO_LP_RESOLVE_CAP",
            kind="float",
            default=1e7,
            doc="finite variable cap used to re-solve an unbounded manipulation LP",
        ),
        Knob(
            name="REPRO_CACHE_DIR",
            kind="str",
            default="",
            doc=(
                "directory of the cross-process factorization store "
                "(empty = store disabled, caches stay process-local)"
            ),
        ),
    )
}


def knobs() -> dict[str, Knob]:
    """The declared knobs, keyed by name, in sorted order."""
    return dict(sorted(REGISTRY.items()))


def declared(name: str) -> Knob:
    """The declaration of ``name``; unknown knobs raise ``ValidationError``.

    The runtime counterpart of the RP007 static check: a typo'd knob name
    fails loudly at the dispatch site instead of silently reading an
    unset variable forever.
    """
    knob = REGISTRY.get(name)
    if knob is None:
        known = ", ".join(sorted(REGISTRY))
        raise ValidationError(f"undeclared environment knob {name!r} (known: {known})")
    return knob


def raw(name: str) -> str | None:
    """The raw environment value of a declared knob (None when unset).

    For dispatch sites that own their parsing, precedence rules, and
    error text (the backend/LP-engine resolvers); plain typed reads use
    :func:`get_bool` / :func:`get_str` / :func:`get_float` instead.
    """
    declared(name)
    return os.environ.get(name)


def get_bool(name: str) -> bool:
    """A boolean knob: true iff set to one of ``1/true/yes/on`` (any case)."""
    knob = declared(name)
    if knob.kind != "bool":
        raise ValidationError(f"knob {name} is {knob.kind}-typed, not bool")
    value = os.environ.get(name)
    if value is None or not value.strip():
        return bool(knob.default)
    return value.strip().lower() in _TRUTHY


def get_str(name: str) -> str:
    """A string knob: the stripped value, or the default when unset/empty."""
    knob = declared(name)
    if knob.kind not in ("str", "choice"):
        raise ValidationError(f"knob {name} is {knob.kind}-typed, not str")
    value = os.environ.get(name)
    if value is None or not value.strip():
        return str(knob.default)
    stripped = value.strip()
    if knob.choices is not None and stripped not in knob.choices:
        raise ValidationError(
            f"{name} must be one of {knob.choices}, got {stripped!r}"
        )
    return stripped


def get_float(name: str) -> float:
    """A float knob: parsed value, or the default when unset/empty."""
    knob = declared(name)
    if knob.kind != "float":
        raise ValidationError(f"knob {name} is {knob.kind}-typed, not float")
    value = os.environ.get(name)
    if value is None or not value.strip():
        return float(knob.default)  # type: ignore[arg-type]
    try:
        return float(value.strip())
    except ValueError as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
