"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subclasses are split
along the package's subsystem boundaries (topology, routing, tomography,
attacks, detection, measurement) so that tests and downstream users can
assert on precise failure modes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TopologyError",
    "NodeNotFoundError",
    "LinkNotFoundError",
    "DisconnectedTopologyError",
    "RoutingError",
    "InvalidPathError",
    "NoPathError",
    "IdentifiabilityError",
    "MonitorPlacementError",
    "MeasurementError",
    "TomographyError",
    "SingularSystemError",
    "AttackError",
    "InfeasibleAttackError",
    "AttackConstraintError",
    "DetectionError",
    "SerializationError",
    "ValidationError",
    "ContractViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong shape, range, or type)."""


class ContractViolation(ValidationError):
    """A runtime algebra contract failed at a public entry point.

    Raised by :mod:`repro.analysis.contracts` decorators (active under
    pytest / ``REPRO_CONTRACTS=1``) when structural invariants of the
    ``y = R x`` model are broken: a non-0/1 routing matrix, a manipulation
    vector violating Constraint 1, or out-of-order state bands.
    """


class TopologyError(ReproError):
    """Base class for topology-related errors."""


class NodeNotFoundError(TopologyError, KeyError):
    """A referenced node does not exist in the topology."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the topology")
        self.node = node


class LinkNotFoundError(TopologyError, KeyError):
    """A referenced link does not exist in the topology."""

    def __init__(self, link: object) -> None:
        super().__init__(f"link {link!r} is not in the topology")
        self.link = link


class DisconnectedTopologyError(TopologyError):
    """An operation required a connected topology but got a disconnected one."""


class RoutingError(ReproError):
    """Base class for routing/path errors."""


class InvalidPathError(RoutingError, ValueError):
    """A node sequence does not form a valid path in the topology."""


class NoPathError(RoutingError):
    """No path exists between the requested endpoints."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"no path between {source!r} and {target!r}")
        self.source = source
        self.target = target


class IdentifiabilityError(RoutingError):
    """The selected paths cannot identify the requested link metrics."""


class MonitorPlacementError(ReproError):
    """Monitor placement failed (e.g. not enough nodes, no identifiable set)."""


class MeasurementError(ReproError):
    """A measurement round could not be carried out."""


class TomographyError(ReproError):
    """Base class for estimation errors."""


class SingularSystemError(TomographyError):
    """The normal equations are singular and no fallback was permitted."""


class AttackError(ReproError):
    """Base class for attack-engine errors."""


class InfeasibleAttackError(AttackError):
    """The attack optimization problem admits no feasible solution.

    Carries the solver's status message so that experiment drivers can
    distinguish genuine infeasibility from numerical failure.
    """

    def __init__(self, message: str, *, solver_status: str | None = None) -> None:
        super().__init__(message)
        self.solver_status = solver_status


class AttackConstraintError(AttackError, ValueError):
    """An attack specification violates a structural constraint.

    Examples: a victim link overlapping the attacker-controlled set
    (violates eq. 7 of the paper), or an empty attacker set.
    """


class DetectionError(ReproError):
    """Base class for detection errors."""


class SerializationError(ReproError):
    """A topology or scenario could not be serialized or parsed."""


class StoreCorruptError(SerializationError):
    """A persistent-store entry exists but cannot be trusted.

    Raised by the sweep factorization store when a blob is truncated,
    unreadable, or inconsistent with its own metadata (wrong digest or
    shape).  A *version* mismatch is deliberately not corruption — old
    entries written by another format revision are treated as misses.
    """
