"""Structural analysis of topologies.

Connectivity checks, degree statistics, and link cuts.  The cut routines
back the *perfect cut* reasoning of the paper's Section IV (an attacker set
perfectly cuts a victim link when every measurement path through the victim
also crosses an attacker); the graph-level helpers here answer the related
structural questions independent of any particular path set.
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Iterable

from repro.exceptions import NodeNotFoundError
from repro.topology.graph import NodeId, Topology

__all__ = [
    "is_connected",
    "connected_components",
    "bfs_distances",
    "degree_histogram",
    "link_cut_between",
    "node_connectivity_summary",
    "articulation_points",
]


def connected_components(topology: Topology) -> list[set[NodeId]]:
    """Connected components as node sets, discovered in node order."""
    seen: set[NodeId] = set()
    components: list[set[NodeId]] = []
    for start in topology.nodes():
        if start in seen:
            continue
        component = {start}
        queue = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in topology.neighbors(node):
                if neighbor not in component:
                    component.add(neighbor)
                    queue.append(neighbor)
        seen |= component
        components.append(component)
    return components


def is_connected(topology: Topology) -> bool:
    """True when the topology has exactly one connected component.

    An empty topology is vacuously connected; a single node is connected.
    """
    if topology.num_nodes <= 1:
        return True
    return len(connected_components(topology)) == 1


def bfs_distances(topology: Topology, source: NodeId) -> dict[NodeId, int]:
    """Hop distance from ``source`` to every reachable node."""
    if not topology.has_node(source):
        raise NodeNotFoundError(source)
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors(node):
            if neighbor not in dist:
                dist[neighbor] = dist[node] + 1
                queue.append(neighbor)
    return dist


def degree_histogram(topology: Topology) -> dict[int, int]:
    """Mapping ``degree -> number of nodes with that degree``."""
    counts = Counter(topology.degree(node) for node in topology.nodes())
    return dict(sorted(counts.items()))


def articulation_points(topology: Topology) -> set[NodeId]:
    """Nodes whose removal disconnects their component (cut vertices).

    Iterative Hopcroft-Tarjan lowpoint computation (no recursion so large
    ISP-scale topologies do not hit Python's recursion limit).
    """
    disc: dict[NodeId, int] = {}
    low: dict[NodeId, int] = {}
    parent: dict[NodeId, NodeId | None] = {}
    points: set[NodeId] = set()
    counter = 0

    for root in topology.nodes():
        if root in disc:
            continue
        parent[root] = None
        root_children = 0
        stack: list[tuple[NodeId, iter]] = [(root, iter(topology.neighbors(root)))]
        disc[root] = low[root] = counter
        counter += 1
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in disc:
                    parent[neighbor] = node
                    if node == root:
                        root_children += 1
                    disc[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append((neighbor, iter(topology.neighbors(neighbor))))
                    advanced = True
                    break
                if neighbor != parent[node]:
                    low[node] = min(low[node], disc[neighbor])
            if not advanced:
                stack.pop()
                if stack:
                    parent_node = stack[-1][0]
                    low[parent_node] = min(low[parent_node], low[node])
                    if parent_node != root and low[node] >= disc[parent_node]:
                        points.add(parent_node)
        if root_children >= 2:
            points.add(root)
    return points


def link_cut_between(topology: Topology, sources: Iterable[NodeId], targets: Iterable[NodeId]) -> set[int]:
    """A (not necessarily minimum) link cut separating ``sources`` from ``targets``.

    Returns the indices of links crossing the BFS-reachable side of
    ``sources`` when all links incident to ``targets`` are kept intact; used
    by attack planning to reason about which links *must* be crossed.  For a
    minimum cut use :mod:`networkx` via :meth:`Topology.to_networkx`.
    """
    source_set = set(sources)
    target_set = set(targets)
    for node in source_set | target_set:
        if not topology.has_node(node):
            raise NodeNotFoundError(node)
    if source_set & target_set:
        raise ValueError("source and target sets must be disjoint")
    reachable = set(source_set)
    queue = deque(source_set)
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors(node):
            if neighbor in target_set or neighbor in reachable:
                continue
            reachable.add(neighbor)
            queue.append(neighbor)
    cut: set[int] = set()
    for link in topology.links():
        if (link.u in reachable) != (link.v in reachable):
            cut.add(link.index)
    return cut


def node_connectivity_summary(topology: Topology) -> dict[str, float]:
    """Summary statistics used by experiment logs and EXPERIMENTS.md.

    Returns node/link counts, min/mean/max degree, and whether the topology
    is connected — the quantities the paper's Section V setup paragraphs
    quote for each evaluated network.
    """
    degrees = [topology.degree(node) for node in topology.nodes()]
    if not degrees:
        return {
            "nodes": 0,
            "links": 0,
            "min_degree": 0.0,
            "mean_degree": 0.0,
            "max_degree": 0.0,
            "connected": 1.0,
        }
    return {
        "nodes": topology.num_nodes,
        "links": topology.num_links,
        "min_degree": float(min(degrees)),
        "mean_degree": float(sum(degrees)) / len(degrees),
        "max_degree": float(max(degrees)),
        "connected": 1.0 if is_connected(topology) else 0.0,
    }
