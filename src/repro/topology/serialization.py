"""Topology serialization: JSON documents and plain edge lists.

The JSON form preserves node order and link indices exactly, so a topology
round-trips bit-for-bit (important because link indices are the coordinate
system for metric vectors).  The edge-list form is for interchange with
external tools and the Rocketfuel parser.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.exceptions import SerializationError
from repro.topology.graph import Topology

__all__ = [
    "topology_to_json",
    "topology_from_json",
    "topology_to_edge_list",
    "topology_from_edge_list",
    "save_topology",
    "load_topology",
]

_FORMAT_VERSION = 1


def topology_to_json(topology: Topology) -> str:
    """Serialize ``topology`` to a JSON string.

    Node labels must be JSON-representable (strings, numbers, or lists /
    tuples thereof); tuples become lists and are restored as tuples on load.
    """
    try:
        doc = {
            "format": "repro-topology",
            "version": _FORMAT_VERSION,
            "name": topology.name,
            "nodes": [_encode_label(node) for node in topology.nodes()],
            "links": [
                [_encode_label(link.u), _encode_label(link.v)] for link in topology.links()
            ],
        }
        # allow_nan=False keeps the document strict JSON: a non-finite
        # numeric node label would otherwise serialize as a bare
        # Infinity/NaN token that standard parsers reject.
        return json.dumps(doc, indent=2, allow_nan=False)
    except (TypeError, ValueError) as exc:
        raise SerializationError(f"topology contains non-serializable node labels: {exc}") from exc


def topology_from_json(text: str) -> Topology:
    """Parse a topology from the JSON produced by :func:`topology_to_json`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid topology JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-topology":
        raise SerializationError("not a repro-topology JSON document")
    if doc.get("version") != _FORMAT_VERSION:
        raise SerializationError(f"unsupported topology format version {doc.get('version')!r}")
    topo = Topology(name=doc.get("name", ""))
    topo.add_nodes(_decode_label(node) for node in doc.get("nodes", []))
    for pair in doc.get("links", []):
        if not isinstance(pair, list) or len(pair) != 2:
            raise SerializationError(f"malformed link entry {pair!r}")
        topo.add_link(_decode_label(pair[0]), _decode_label(pair[1]))
    return topo


def _encode_label(label: object) -> object:
    """Tuples are tagged so they round-trip distinct from lists."""
    if isinstance(label, tuple):
        return {"__tuple__": [_encode_label(item) for item in label]}
    return label


def _decode_label(encoded: object) -> object:
    if isinstance(encoded, dict) and "__tuple__" in encoded:
        return tuple(_decode_label(item) for item in encoded["__tuple__"])
    return encoded


def topology_to_edge_list(topology: Topology) -> str:
    """Render ``topology`` as a ``u v`` edge list, one link per line.

    Node labels are rendered via ``str``; labels containing whitespace are
    rejected because they cannot be parsed back.
    """
    lines = [f"# topology: {topology.name}" if topology.name else "# topology"]
    for link in topology.links():
        u, v = str(link.u), str(link.v)
        if any(ch.isspace() for ch in u + v):
            raise SerializationError(
                f"node labels {link.u!r}, {link.v!r} contain whitespace; use JSON serialization"
            )
        lines.append(f"{u} {v}")
    return "\n".join(lines) + "\n"


def topology_from_edge_list(text: str, *, name: str = "") -> Topology:
    """Parse a plain ``u v`` edge list (labels become strings)."""
    topo = Topology(name=name)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise SerializationError(f"line {line_number}: expected 'u v', got {line!r}")
        topo.add_link(parts[0], parts[1])
    return topo


def save_topology(topology: Topology, path: str | Path) -> None:
    """Write ``topology`` to ``path`` (JSON when suffix is ``.json``, else edge list)."""
    file_path = Path(path)
    if file_path.suffix == ".json":
        file_path.write_text(topology_to_json(topology))
    else:
        file_path.write_text(topology_to_edge_list(topology))


def load_topology(path: str | Path) -> Topology:
    """Read a topology written by :func:`save_topology`."""
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise SerializationError(f"cannot read topology file {file_path}: {exc}") from exc
    if file_path.suffix == ".json":
        return topology_from_json(text)
    return topology_from_edge_list(text, name=file_path.stem)
