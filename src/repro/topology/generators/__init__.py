"""Topology generators.

- :mod:`repro.topology.generators.simple` — the paper's Fig. 1 example
  network and canonical families (path/ring/star/grid/tree/clique/ladder).
- :mod:`repro.topology.generators.isp` — synthetic Rocketfuel-style ISP
  topologies (the wireline substrate standing in for the AS1221 dataset) and
  a parser for real Rocketfuel edge lists.
- :mod:`repro.topology.generators.geometric` — random geometric graphs in
  the extended-network mode used by the paper's wireless experiments.
"""

from repro.topology.generators.simple import (
    clique_topology,
    grid_topology,
    ladder_topology,
    paper_example_network,
    path_topology,
    ring_topology,
    star_topology,
    tree_topology,
)
from repro.topology.generators.isp import (
    barabasi_albert_topology,
    large_isp_topology,
    load_rocketfuel_edges,
    synthetic_rocketfuel,
)
from repro.topology.generators.geometric import random_geometric_topology
from repro.topology.generators.extra import fat_tree_topology, waxman_topology

__all__ = [
    "clique_topology",
    "grid_topology",
    "ladder_topology",
    "paper_example_network",
    "path_topology",
    "ring_topology",
    "star_topology",
    "tree_topology",
    "barabasi_albert_topology",
    "large_isp_topology",
    "load_rocketfuel_edges",
    "synthetic_rocketfuel",
    "random_geometric_topology",
    "fat_tree_topology",
    "waxman_topology",
]
