"""Deterministic small topologies.

Includes :func:`paper_example_network`, a reconstruction of the example
network in Fig. 1 of the paper (7 nodes, 10 links, monitors M1/M2/M3,
malicious nodes B and C), plus the canonical graph families used by tests
and property-based checks.
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.topology.graph import Topology

__all__ = [
    "paper_example_network",
    "PAPER_EXAMPLE_MONITORS",
    "PAPER_EXAMPLE_ATTACKERS",
    "path_topology",
    "ring_topology",
    "star_topology",
    "grid_topology",
    "tree_topology",
    "clique_topology",
    "ladder_topology",
]

#: Monitor nodes of the Fig. 1 example network.
PAPER_EXAMPLE_MONITORS = ("M1", "M2", "M3")

#: Malicious nodes of the Fig. 1 example network.
PAPER_EXAMPLE_ATTACKERS = ("B", "C")


def paper_example_network() -> Topology:
    """The Fig. 1 example network of the paper.

    7 nodes (monitors ``M1``, ``M2``, ``M3`` and internal nodes ``A``,
    ``B``, ``C``, ``D``), 10 links.  Link indices here are 0-based; the
    paper numbers them 1-10, so paper link *k* is index *k-1*:

    ========  ============  =============================================
    index     paper number  endpoints
    ========  ============  =============================================
    0         1             M1 - A
    1         2             A - B
    2         3             B - M3
    3         4             A - C
    4         5             B - D
    5         6             B - C
    6         7             C - D
    7         8             C - M2
    8         9             M3 - D
    9         10            D - M2
    ========  ============  =============================================

    The reconstruction preserves the structural facts the paper uses:
    node ``A`` reaches the rest of the network only through the malicious
    nodes ``B`` and ``C`` (so they perfectly cut link 1 = M1-A), the path
    ``M2 -> C -> D -> B -> M3`` uses paper links 8, 7, 5, 3 in turn, and
    the path ``M3 -> D -> M2`` (paper links 9, 10) avoids both attackers.
    The exact figure is not fully specified in the paper text; the
    reconstruction procedure is recorded in DESIGN.md.
    """
    topo = Topology(name="paper-fig1")
    topo.add_nodes(["M1", "M2", "M3", "A", "B", "C", "D"])
    topo.add_links(
        [
            ("M1", "A"),  # 1
            ("A", "B"),  # 2
            ("B", "M3"),  # 3
            ("A", "C"),  # 4
            ("B", "D"),  # 5
            ("B", "C"),  # 6
            ("C", "D"),  # 7
            ("C", "M2"),  # 8
            ("M3", "D"),  # 9
            ("D", "M2"),  # 10
        ]
    )
    return topo


def _check_count(value: int, name: str, minimum: int) -> int:
    count = int(value)
    if count < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {count}")
    return count


def path_topology(num_nodes: int) -> Topology:
    """A simple path ``0 - 1 - ... - (n-1)``."""
    n = _check_count(num_nodes, "num_nodes", 2)
    topo = Topology(name=f"path-{n}")
    topo.add_links((i, i + 1) for i in range(n - 1))
    return topo


def ring_topology(num_nodes: int) -> Topology:
    """A cycle on ``num_nodes`` nodes (needs at least 3)."""
    n = _check_count(num_nodes, "num_nodes", 3)
    topo = Topology(name=f"ring-{n}")
    topo.add_links((i, (i + 1) % n) for i in range(n))
    return topo


def star_topology(num_leaves: int) -> Topology:
    """A hub node ``0`` connected to ``num_leaves`` leaves."""
    n = _check_count(num_leaves, "num_leaves", 1)
    topo = Topology(name=f"star-{n}")
    topo.add_links((0, leaf) for leaf in range(1, n + 1))
    return topo


def grid_topology(rows: int, cols: int) -> Topology:
    """A ``rows x cols`` 4-neighbour grid; nodes are ``(r, c)`` tuples."""
    num_rows = _check_count(rows, "rows", 1)
    num_cols = _check_count(cols, "cols", 1)
    if num_rows * num_cols < 2:
        raise ValidationError("grid must contain at least 2 nodes")
    topo = Topology(name=f"grid-{num_rows}x{num_cols}")
    for r in range(num_rows):
        for c in range(num_cols):
            if c + 1 < num_cols:
                topo.add_link((r, c), (r, c + 1))
            if r + 1 < num_rows:
                topo.add_link((r, c), (r + 1, c))
    return topo


def tree_topology(depth: int, branching: int) -> Topology:
    """A complete ``branching``-ary tree of the given ``depth``.

    Node labels are integers in breadth-first order, root = 0.  ``depth`` is
    the number of link levels (depth 0 is a single root node, invalid here).
    """
    levels = _check_count(depth, "depth", 1)
    arity = _check_count(branching, "branching", 1)
    topo = Topology(name=f"tree-d{levels}-b{arity}")
    next_label = 1
    frontier = [0]
    topo.add_node(0)
    for _ in range(levels):
        new_frontier = []
        for parent in frontier:
            for _ in range(arity):
                topo.add_link(parent, next_label)
                new_frontier.append(next_label)
                next_label += 1
        frontier = new_frontier
    return topo


def clique_topology(num_nodes: int) -> Topology:
    """The complete graph on ``num_nodes`` nodes."""
    n = _check_count(num_nodes, "num_nodes", 2)
    topo = Topology(name=f"clique-{n}")
    topo.add_links((i, j) for i in range(n) for j in range(i + 1, n))
    return topo


def ladder_topology(rungs: int) -> Topology:
    """Two parallel paths of length ``rungs`` joined by rung links.

    Nodes are ``("top", i)`` and ``("bot", i)``.  Ladders are the smallest
    family with many link-disjoint monitor-to-monitor paths, which makes
    them useful in identifiability and cut tests.
    """
    n = _check_count(rungs, "rungs", 2)
    topo = Topology(name=f"ladder-{n}")
    for i in range(n):
        topo.add_link(("top", i), ("bot", i))
        if i + 1 < n:
            topo.add_link(("top", i), ("top", i + 1))
            topo.add_link(("bot", i), ("bot", i + 1))
    return topo
