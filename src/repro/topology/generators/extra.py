"""Additional topology families: Waxman random graphs and fat trees.

Two further substrates round out the evaluation surface:

- :func:`waxman_topology` — the classic Waxman (1988) random-graph model
  widely used for synthetic internetworks: nodes scattered in the unit
  square, each pair connected with probability
  ``alpha * exp(-d / (beta * L))`` where ``d`` is their distance and ``L``
  the maximum distance.  Locality-biased like a real WAN, heavier-tailed
  than an RGG.
- :func:`fat_tree_topology` — the k-ary fat tree of Al-Fares et al.
  (SIGCOMM 2008), the canonical data-centre fabric.  Scapegoating in a
  data-centre context (compromised ToR or aggregation switch framing a
  core link) exercises highly regular, high-redundancy routing matrices.
"""

from __future__ import annotations

import math

from repro.exceptions import DisconnectedTopologyError, ValidationError
from repro.topology.analysis import connected_components
from repro.topology.graph import Topology
from repro.utils.rng import ensure_rng

__all__ = ["waxman_topology", "fat_tree_topology"]


def waxman_topology(
    num_nodes: int,
    alpha: float = 0.4,
    beta: float = 0.4,
    *,
    connect: str = "giant",
    max_retries: int = 50,
    seed: object = None,
) -> Topology:
    """Generate a Waxman random topology on the unit square.

    ``alpha`` scales overall edge density; ``beta`` controls the locality
    bias (small beta = only short links).  ``connect`` handles
    disconnected samples like the RGG generator: ``"giant"`` keeps the
    largest component, ``"retry"`` redraws, ``"none"`` returns raw.
    Node positions are retained as the ``positions`` attribute.
    """
    if num_nodes < 2:
        raise ValidationError(f"num_nodes must be >= 2, got {num_nodes}")
    if not 0.0 < alpha <= 1.0:
        raise ValidationError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0.0:
        raise ValidationError(f"beta must be positive, got {beta}")
    if connect not in ("giant", "retry", "none"):
        raise ValidationError(f"connect must be 'giant', 'retry' or 'none', got {connect!r}")

    rng = ensure_rng(seed)
    attempts = max_retries if connect == "retry" else 1
    max_distance = math.sqrt(2.0)
    for _ in range(max(attempts, 1)):
        positions = rng.uniform(0.0, 1.0, size=(num_nodes, 2))
        topo = Topology(name=f"waxman-{num_nodes}")
        topo.add_nodes(range(num_nodes))
        for i in range(num_nodes):
            for j in range(i + 1, num_nodes):
                dx = positions[i, 0] - positions[j, 0]
                dy = positions[i, 1] - positions[j, 1]
                distance = math.hypot(dx, dy)
                probability = alpha * math.exp(-distance / (beta * max_distance))
                if rng.random() < probability:
                    topo.add_link(i, j)
        topo.positions = {  # type: ignore[attr-defined]
            i: (float(positions[i, 0]), float(positions[i, 1]))
            for i in range(num_nodes)
        }
        components = connected_components(topo)
        if len(components) == 1:
            return topo
        if connect == "giant":
            giant = max(components, key=len)
            sub = topo.subgraph(giant)
            sub.name = topo.name
            sub.positions = {  # type: ignore[attr-defined]
                node: topo.positions[node] for node in sub.nodes()
            }
            return sub
        if connect == "none":
            return topo
    raise DisconnectedTopologyError(
        f"failed to draw a connected Waxman graph in {max_retries} retries "
        f"(n={num_nodes}, alpha={alpha}, beta={beta})"
    )


def fat_tree_topology(k: int = 4) -> Topology:
    """The k-ary fat tree (k even): (k/2)^2 core switches, k pods.

    Each pod has k/2 aggregation and k/2 edge switches; every edge switch
    connects to every aggregation switch in its pod; aggregation switch
    ``a`` of each pod connects to core switches ``a*(k/2) .. a*(k/2)+k/2-1``.
    Hosts are omitted (tomography monitors sit on switches).  Node labels:
    ``("core", i)``, ``("agg", pod, i)``, ``("edge", pod, i)``.
    """
    if k < 2 or k % 2 != 0:
        raise ValidationError(f"k must be an even integer >= 2, got {k}")
    half = k // 2
    topo = Topology(name=f"fat-tree-{k}")
    cores = [("core", i) for i in range(half * half)]
    topo.add_nodes(cores)
    for pod in range(k):
        aggs = [("agg", pod, i) for i in range(half)]
        edges = [("edge", pod, i) for i in range(half)]
        for agg_index, agg in enumerate(aggs):
            for core_index in range(agg_index * half, (agg_index + 1) * half):
                topo.add_link(agg, cores[core_index])
            for edge in edges:
                topo.add_link(agg, edge)
    return topo
