"""Wireline (ISP) topology substrate.

The paper's wireline experiments run on the Rocketfuel AS1221 (Telstra)
router-level map.  The Rocketfuel dataset cannot be fetched in this offline
environment, so :func:`synthetic_rocketfuel` generates a *Rocketfuel-style*
topology: a small, densely meshed backbone, per-backbone points of presence
(PoPs) with aggregation routers multi-homed into the backbone, and access
routers hanging off the aggregation layer.  The result has the heavy-tailed
degree distribution and hierarchical path structure that drive the paper's
success-probability experiments; DESIGN.md records this substitution.

:func:`load_rocketfuel_edges` parses real Rocketfuel-format edge lists for
users who have the dataset, so the same experiments can run on the original
topology.
"""

from __future__ import annotations

from pathlib import Path

from repro.exceptions import SerializationError, ValidationError
from repro.topology.graph import Topology
from repro.utils.rng import ensure_rng

__all__ = [
    "synthetic_rocketfuel",
    "large_isp_topology",
    "barabasi_albert_topology",
    "load_rocketfuel_edges",
]


def synthetic_rocketfuel(
    name: str = "AS1221",
    *,
    backbone_nodes: int = 12,
    pops_per_backbone: int = 2,
    access_per_pop: tuple[int, int] = (2, 5),
    extra_backbone_chords: int = 6,
    seed: object = 0,
) -> Topology:
    """Generate a hierarchical Rocketfuel-style ISP topology.

    Structure:

    - **Backbone**: ``backbone_nodes`` core routers on a ring (guaranteeing
      2-connectivity) plus ``extra_backbone_chords`` random chords, giving
      the dense national core seen in Rocketfuel maps.
    - **Aggregation**: each backbone router hosts ``pops_per_backbone``
      PoPs; each PoP's aggregation router is dual-homed to its own backbone
      router and one other random backbone router (path diversity).
    - **Access**: each PoP serves a uniform-random number of access routers
      in ``access_per_pop`` (inclusive), each single- or dual-homed to the
      aggregation layer.

    Node labels are strings ``"bb<i>"``, ``"agg<i>"``, ``"acc<i>"`` so that
    the hierarchy remains visible in experiment logs.  With the defaults
    this yields roughly 100-120 routers, comparable to the AS1221
    router-level map used in the paper.

    The generator is deterministic for a fixed ``seed``.
    """
    if backbone_nodes < 3:
        raise ValidationError(f"backbone_nodes must be >= 3, got {backbone_nodes}")
    if pops_per_backbone < 0:
        raise ValidationError(f"pops_per_backbone must be >= 0, got {pops_per_backbone}")
    lo, hi = access_per_pop
    if lo < 0 or hi < lo:
        raise ValidationError(f"access_per_pop must be a (lo, hi) range with 0 <= lo <= hi, got {access_per_pop}")

    rng = ensure_rng(seed)
    topo = Topology(name=f"synthetic-rocketfuel-{name}")

    backbone = [f"bb{i}" for i in range(backbone_nodes)]
    topo.add_nodes(backbone)
    for i in range(backbone_nodes):
        topo.add_link(backbone[i], backbone[(i + 1) % backbone_nodes])

    # Random chords thicken the core without creating duplicates.
    chords_added = 0
    attempts = 0
    max_attempts = 50 * max(extra_backbone_chords, 1)
    while chords_added < extra_backbone_chords and attempts < max_attempts:
        attempts += 1
        i, j = rng.choice(backbone_nodes, size=2, replace=False)
        u, v = backbone[int(i)], backbone[int(j)]
        if not topo.has_link(u, v):
            topo.add_link(u, v)
            chords_added += 1

    agg_count = 0
    acc_count = 0
    for bb_index, bb in enumerate(backbone):
        for _ in range(pops_per_backbone):
            agg = f"agg{agg_count}"
            agg_count += 1
            topo.add_link(bb, agg)
            # Dual-home the aggregation router to a second backbone node.
            others = [k for k in range(backbone_nodes) if k != bb_index]
            second = backbone[int(rng.choice(others))]
            if not topo.has_link(agg, second):
                topo.add_link(agg, second)
            num_access = int(rng.integers(lo, hi + 1))
            pop_aggs = [agg]
            for _ in range(num_access):
                acc = f"acc{acc_count}"
                acc_count += 1
                topo.add_link(acc, pop_aggs[int(rng.integers(len(pop_aggs)))])
                # Occasionally dual-home access routers for path diversity.
                if rng.random() < 0.3 and not topo.has_link(acc, bb):
                    topo.add_link(acc, bb)
    return topo


def large_isp_topology(
    name: str = "isp-large",
    *,
    backbone_nodes: int = 60,
    pops_per_backbone: int = 6,
    access_per_pop: tuple[int, int] = (4, 8),
    extra_backbone_chords: int = 150,
    seed: object = 0,
) -> Topology:
    """An ISP-scale topology with thousands of links.

    Same hierarchical Rocketfuel-style structure as
    :func:`synthetic_rocketfuel`, scaled from the ~100-router AS1221 regime
    up to a national-carrier regime: with the defaults, roughly 2,500
    routers and 3,500+ links.  This is the substrate for the sparse-backend
    experiments — dense SVD factorisation is quadratic-to-cubic in these
    dimensions while the routing matrix stays well under 1% dense, so the
    dense/sparse crossover sits far below this scale.  Pair it with the
    ``pair_budget`` scenario knob so path enumeration samples monitor pairs
    instead of visiting all of them.

    Deterministic for a fixed ``seed``.
    """
    topo = synthetic_rocketfuel(
        name,
        backbone_nodes=backbone_nodes,
        pops_per_backbone=pops_per_backbone,
        access_per_pop=access_per_pop,
        extra_backbone_chords=extra_backbone_chords,
        seed=seed,
    )
    topo.name = name
    return topo


def barabasi_albert_topology(num_nodes: int, attach: int = 2, *, seed: object = 0) -> Topology:
    """Preferential-attachment (Barabasi-Albert) topology.

    A standard heavy-tailed random graph, useful as a second wireline
    substrate for robustness checks of the experiments.  Starts from a
    clique on ``attach + 1`` nodes; every new node attaches to ``attach``
    distinct existing nodes chosen proportionally to degree.
    """
    if attach < 1:
        raise ValidationError(f"attach must be >= 1, got {attach}")
    if num_nodes <= attach:
        raise ValidationError(f"num_nodes must exceed attach={attach}, got {num_nodes}")
    rng = ensure_rng(seed)
    topo = Topology(name=f"ba-{num_nodes}-{attach}")
    seed_size = attach + 1
    topo.add_links((i, j) for i in range(seed_size) for j in range(i + 1, seed_size))
    # repeated-nodes trick: sampling uniformly from link endpoints is
    # sampling proportional to degree.
    endpoint_pool: list[int] = []
    for link in topo.links():
        endpoint_pool.extend((link.u, link.v))
    for new_node in range(seed_size, num_nodes):
        targets: set[int] = set()
        while len(targets) < attach:
            targets.add(endpoint_pool[int(rng.integers(len(endpoint_pool)))])
        for target in targets:
            topo.add_link(new_node, target)
            endpoint_pool.extend((new_node, target))
    return topo


def load_rocketfuel_edges(path: str | Path, *, name: str | None = None) -> Topology:
    """Parse a Rocketfuel-style edge list into a topology.

    Accepts the simple whitespace-separated ``u v [weight]`` format used by
    the published ``weights.intra`` files.  Lines starting with ``#`` and
    blank lines are ignored; duplicate edges (either direction) and
    self-loops are skipped, matching the paper's simple-graph model.
    """
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise SerializationError(f"cannot read Rocketfuel file {file_path}: {exc}") from exc
    topo = Topology(name=name if name is not None else file_path.stem)
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise SerializationError(
                f"{file_path}:{line_number}: expected 'u v [weight]', got {line!r}"
            )
        u, v = parts[0], parts[1]
        if u == v or topo.has_link(u, v):
            continue
        topo.add_link(u, v)
    return topo
