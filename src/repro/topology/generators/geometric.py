"""Random geometric graphs — the paper's wireless substrate.

Section V-C of the paper generates wireless topologies as random geometric
graphs in the *extended network* mode: ``n = 100`` nodes dropped uniformly
on the square ``[0, sqrt(n / lambda)]^2`` with node density ``lambda = 5``,
tuned so each node has about 5 neighbours on average.

For density ``lambda`` and connection radius ``r`` the expected degree of a
node (away from the boundary) is ``lambda * pi * r^2``.  At the paper's
scale the region side is only a few radii, so boundary truncation is
significant (a node near an edge sees a clipped disk); the expected
neighbourhood area with the first-order edge correction is

    A(r) = pi r^2 - (8/3) r^3 / s        (s = region side)

and the default radius is solved from ``lambda * A(r) = mean_degree`` so
the *realised* average neighbour count matches the paper's "5 neighbours
on average" construction.  Pass ``boundary_correction=False`` for the
uncorrected infinite-plane radius.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import DisconnectedTopologyError, ValidationError
from repro.topology.analysis import connected_components
from repro.topology.graph import Topology
from repro.utils.rng import ensure_rng

__all__ = ["random_geometric_topology"]


def random_geometric_topology(
    num_nodes: int = 100,
    density: float = 5.0,
    mean_degree: float = 5.0,
    *,
    connect: str = "giant",
    boundary_correction: bool = True,
    max_retries: int = 50,
    seed: object = None,
) -> Topology:
    """Generate an extended-mode random geometric graph.

    Parameters
    ----------
    num_nodes:
        Number of nodes dropped on the region (paper: 100).
    density:
        Node density ``lambda`` (paper: 5); the region is the square of side
        ``sqrt(num_nodes / density)``.
    mean_degree:
        Target average neighbour count (paper: 5); sets the connection
        radius ``r = sqrt(mean_degree / (density * pi))``.
    connect:
        How to deal with disconnected samples, which are common in sparse
        geometric graphs: ``"giant"`` keeps the largest connected component
        (the default, mirroring common practice), ``"retry"`` redraws node
        positions up to ``max_retries`` times until the sample is connected,
        and ``"none"`` returns the raw sample.
    seed:
        RNG seed or generator.

    Node labels are consecutive integers; node positions are retained on the
    returned topology as the ``positions`` attribute (a dict ``node ->
    (x, y)``) for plotting and distance-based analysis.
    """
    if num_nodes < 2:
        raise ValidationError(f"num_nodes must be >= 2, got {num_nodes}")
    if density <= 0:
        raise ValidationError(f"density must be positive, got {density}")
    if mean_degree <= 0:
        raise ValidationError(f"mean_degree must be positive, got {mean_degree}")
    if connect not in ("giant", "retry", "none"):
        raise ValidationError(f"connect must be 'giant', 'retry' or 'none', got {connect!r}")

    rng = ensure_rng(seed)
    side = math.sqrt(num_nodes / density)
    radius = _radius_for_mean_degree(
        mean_degree, density, side, boundary_correction=boundary_correction
    )

    attempts = max_retries if connect == "retry" else 1
    last_topo: Topology | None = None
    for _ in range(max(attempts, 1)):
        positions = rng.uniform(0.0, side, size=(num_nodes, 2))
        topo = _build_from_positions(positions, radius)
        last_topo = topo
        components = connected_components(topo)
        if len(components) == 1:
            return topo
        if connect == "giant":
            giant = max(components, key=len)
            sub = topo.subgraph(giant)
            sub.name = topo.name
            sub.positions = {node: topo.positions[node] for node in sub.nodes()}  # type: ignore[attr-defined]
            return sub
        if connect == "none":
            return topo
    raise DisconnectedTopologyError(
        f"failed to draw a connected geometric graph in {max_retries} retries "
        f"(n={num_nodes}, density={density}, mean_degree={mean_degree})"
    )


def _radius_for_mean_degree(
    mean_degree: float, density: float, side: float, *, boundary_correction: bool
) -> float:
    """Connection radius whose expected realised degree is ``mean_degree``.

    Without correction: ``sqrt(mean_degree / (density * pi))``.  With the
    first-order edge correction the expected neighbourhood area is
    ``pi r^2 - (8/3) r^3 / side``; solved by bisection (the area is
    monotone in ``r`` on the relevant range).
    """
    naive = math.sqrt(mean_degree / (density * math.pi))
    if not boundary_correction:
        return naive

    def realised_degree(r: float) -> float:
        return density * (math.pi * r * r - (8.0 / 3.0) * r**3 / side)

    lo, hi = naive, min(2.5 * naive, side / 2.0)
    if realised_degree(hi) < mean_degree:
        return hi
    for _ in range(80):
        mid = (lo + hi) / 2.0
        if realised_degree(mid) < mean_degree:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _build_from_positions(positions: np.ndarray, radius: float) -> Topology:
    """Connect every pair of points within ``radius`` (unit-disk model)."""
    num_nodes = positions.shape[0]
    topo = Topology(name=f"rgg-{num_nodes}")
    topo.add_nodes(range(num_nodes))
    # Dense pairwise distances are fine at the experiment scale (n ~ 100).
    deltas = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt(np.sum(deltas**2, axis=-1))
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            if dist[i, j] <= radius:
                topo.add_link(i, j)
    topo.positions = {i: (float(positions[i, 0]), float(positions[i, 1])) for i in range(num_nodes)}  # type: ignore[attr-defined]
    return topo
