"""The :class:`Topology` graph type.

Network tomography operates on an undirected simple graph
``G = (V, L)`` (Section II-A of the paper): at most one link between any two
distinct nodes and no self-loops.  Each link carries a stable integer index,
``0 .. |L|-1`` in insertion order, which is the column index of that link in
every routing matrix built from the topology.  Keeping the indexing inside
the graph type (instead of recomputing it ad hoc) is what makes link-metric
vectors, estimates, and attack victim sets unambiguous across the library.

Nodes may be any hashable labels; the paper's examples use strings such as
``"M1"``, ``"A"``, ``"B"``.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass

from repro.exceptions import (
    LinkNotFoundError,
    NodeNotFoundError,
    TopologyError,
)

__all__ = ["Link", "Topology", "NodeId"]

NodeId = Hashable


@dataclass(frozen=True)
class Link:
    """An undirected link with a stable index.

    ``endpoints`` is stored as the pair in the order the link was added; the
    link itself is undirected, and :meth:`key` gives an order-independent
    identity.  The ``index`` is the link's column in routing matrices and its
    position in link-metric vectors.
    """

    index: int
    u: NodeId
    v: NodeId

    @property
    def endpoints(self) -> tuple[NodeId, NodeId]:
        """The two endpoint node labels, in insertion order."""
        return (self.u, self.v)

    def key(self) -> frozenset:
        """Order-independent identity of the link's endpoints."""
        return frozenset((self.u, self.v))

    def other(self, node: NodeId) -> NodeId:
        """Return the endpoint opposite ``node``.

        Raises :class:`ValueError` when ``node`` is not an endpoint.
        """
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise ValueError(f"node {node!r} is not an endpoint of link {self.index}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"l{self.index}({self.u}-{self.v})"


class Topology:
    """An undirected simple graph with indexed links.

    The class supports incremental construction (:meth:`add_node`,
    :meth:`add_link`) and read access used by routing, tomography and attack
    code.  It intentionally does *not* support link removal: removing links
    would invalidate the stable link indexing that metric vectors depend on.
    Build a new topology (or use :meth:`subgraph`) instead.

    >>> topo = Topology()
    >>> topo.add_link("a", "b")
    Link(index=0, u='a', v='b')
    >>> topo.add_link("b", "c")
    Link(index=1, u='b', v='c')
    >>> topo.num_nodes, topo.num_links
    (3, 2)
    >>> topo.link_between("c", "b").index
    1
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._nodes: dict[NodeId, int] = {}
        self._links: list[Link] = []
        self._link_by_key: dict[frozenset, Link] = {}
        self._incident: dict[NodeId, list[Link]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node is None:
            raise TopologyError("None is not a valid node label")
        if node not in self._nodes:
            self._nodes[node] = len(self._nodes)
            self._incident[node] = []

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add every node in ``nodes`` (idempotent per node)."""
        for node in nodes:
            self.add_node(node)

    def add_link(self, u: NodeId, v: NodeId) -> Link:
        """Add an undirected link between ``u`` and ``v`` and return it.

        Endpoints are added as nodes if missing.  Raises
        :class:`TopologyError` on self-loops or duplicate links, preserving
        the paper's simple-graph assumption.
        """
        if u == v:
            raise TopologyError(f"self-loop at node {u!r} is not allowed")
        key = frozenset((u, v))
        if key in self._link_by_key:
            raise TopologyError(f"duplicate link between {u!r} and {v!r}")
        self.add_node(u)
        self.add_node(v)
        link = Link(index=len(self._links), u=u, v=v)
        self._links.append(link)
        self._link_by_key[key] = link
        self._incident[u].append(link)
        self._incident[v].append(link)
        return link

    def add_links(self, pairs: Iterable[tuple[NodeId, NodeId]]) -> list[Link]:
        """Add a link per ``(u, v)`` pair; returns the created links."""
        return [self.add_link(u, v) for u, v in pairs]

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes ``|V|``."""
        return len(self._nodes)

    @property
    def num_links(self) -> int:
        """Number of links ``|L|``."""
        return len(self._links)

    def nodes(self) -> list[NodeId]:
        """All node labels in insertion order."""
        return list(self._nodes)

    def links(self) -> list[Link]:
        """All links in index order."""
        return list(self._links)

    def has_node(self, node: NodeId) -> bool:
        """True when ``node`` is in the topology."""
        return node in self._nodes

    def has_link(self, u: NodeId, v: NodeId) -> bool:
        """True when an undirected link joins ``u`` and ``v``."""
        return frozenset((u, v)) in self._link_by_key

    def node_index(self, node: NodeId) -> int:
        """Insertion index of ``node`` (useful for dense node arrays)."""
        try:
            return self._nodes[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def link(self, index: int) -> Link:
        """The link with the given stable ``index``."""
        if not 0 <= index < len(self._links):
            raise LinkNotFoundError(index)
        return self._links[index]

    def link_between(self, u: NodeId, v: NodeId) -> Link:
        """The link joining ``u`` and ``v`` (order-independent)."""
        try:
            return self._link_by_key[frozenset((u, v))]
        except KeyError:
            raise LinkNotFoundError((u, v)) from None

    def neighbors(self, node: NodeId) -> list[NodeId]:
        """Nodes adjacent to ``node``, in link-insertion order."""
        return [link.other(node) for link in self.incident_links(node)]

    def incident_links(self, node: NodeId) -> list[Link]:
        """Links having ``node`` as an endpoint."""
        try:
            return list(self._incident[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: NodeId) -> int:
        """Number of links incident to ``node``."""
        return len(self.incident_links(node))

    def links_incident_to_nodes(self, nodes: Iterable[NodeId]) -> set[int]:
        """Indices of every link with at least one endpoint in ``nodes``.

        This is the attacker-controlled link set ``L_m`` for an attacker node
        set ``V_m`` in the paper's threat model: a malicious node can degrade
        any link it terminates.
        """
        out: set[int] = set()
        for node in nodes:
            for link in self.incident_links(node):
                out.add(link.index)
        return out

    def __contains__(self, node: NodeId) -> bool:
        return node in self._nodes

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<Topology{label}: {self.num_nodes} nodes, {self.num_links} links>"

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Topology":
        """Structural copy preserving node order and link indices."""
        out = Topology(name=self.name if name is None else name)
        out.add_nodes(self._nodes)
        for link in self._links:
            out.add_link(link.u, link.v)
        return out

    def subgraph(self, nodes: Iterable[NodeId]) -> "Topology":
        """Induced subgraph on ``nodes``.

        Link indices are re-assigned densely in the subgraph; the result is a
        fresh topology, not a view.
        """
        keep = set(nodes)
        missing = [n for n in keep if n not in self._nodes]
        if missing:
            raise NodeNotFoundError(missing[0])
        out = Topology(name=f"{self.name}/subgraph" if self.name else "subgraph")
        out.add_nodes(n for n in self._nodes if n in keep)
        for link in self._links:
            if link.u in keep and link.v in keep:
                out.add_link(link.u, link.v)
        return out

    def adjacency(self) -> dict[NodeId, list[NodeId]]:
        """Adjacency mapping ``node -> neighbor list`` (fresh lists)."""
        return {node: self.neighbors(node) for node in self._nodes}

    def to_networkx(self):
        """Export to a :class:`networkx.Graph`.

        Link indices are stored on edges under the ``index`` attribute so the
        round trip through :meth:`from_networkx` preserves them.
        """
        import networkx as nx

        graph = nx.Graph(name=self.name)
        graph.add_nodes_from(self._nodes)
        for link in self._links:
            graph.add_edge(link.u, link.v, index=link.index)
        return graph

    @classmethod
    def from_networkx(cls, graph, name: str | None = None) -> "Topology":
        """Build a topology from a networkx graph.

        Edges with an ``index`` attribute are inserted in index order so that
        the stable indexing survives a round trip; otherwise edges are added
        in the graph's iteration order.
        """
        topo = cls(name=name if name is not None else (graph.name or ""))
        topo.add_nodes(graph.nodes)
        edges = list(graph.edges(data=True))
        if edges and all("index" in data for _, _, data in edges):
            edges.sort(key=lambda item: item[2]["index"])
        for u, v, _ in edges:
            topo.add_link(u, v)
        return topo
