"""Network topology substrate.

This package provides the graph type used throughout the library
(:class:`~repro.topology.graph.Topology`), topology generators (the paper's
Fig. 1 example, canonical families, synthetic Rocketfuel-style ISP maps and
random geometric graphs), structural analysis helpers, and serialization.

The topology type is deliberately small and explicit: undirected simple
graphs with a *stable link indexing*, because network tomography identifies
links by their column index in the routing matrix.
"""

from repro.topology.graph import Link, Topology
from repro.topology.analysis import (
    degree_histogram,
    is_connected,
    link_cut_between,
    node_connectivity_summary,
)
from repro.topology.serialization import (
    topology_from_edge_list,
    topology_from_json,
    topology_to_edge_list,
    topology_to_json,
)
from repro.topology.generators import (
    clique_topology,
    fat_tree_topology,
    waxman_topology,
    grid_topology,
    ladder_topology,
    paper_example_network,
    path_topology,
    random_geometric_topology,
    ring_topology,
    star_topology,
    synthetic_rocketfuel,
    tree_topology,
)

__all__ = [
    "Link",
    "Topology",
    "degree_histogram",
    "is_connected",
    "link_cut_between",
    "node_connectivity_summary",
    "topology_from_edge_list",
    "topology_from_json",
    "topology_to_edge_list",
    "topology_to_json",
    "clique_topology",
    "fat_tree_topology",
    "waxman_topology",
    "grid_topology",
    "ladder_topology",
    "paper_example_network",
    "path_topology",
    "random_geometric_topology",
    "ring_topology",
    "star_topology",
    "synthetic_rocketfuel",
    "tree_topology",
]
