"""Runtime contracts for the ``y = R x`` algebra at public entry points.

The paper's pipeline rests on a handful of structural facts that, when
violated, fail only as quietly wrong Monte-Carlo numbers: the routing
matrix ``R`` is 0/1 of shape ``(n_paths, n_links)``, manipulation vectors
obey Constraint 1 (``m >= 0``, supported only on attacker paths), and the
state bands are ordered (``b_l <= b_u``).  The :func:`contract` decorator
checks these at module boundaries — but only when contracts are switched
on, so production hot paths pay a single boolean test per call.

Enablement: the test suite switches contracts on globally via an autouse
conftest fixture; ``REPRO_CONTRACTS=1`` in the environment does the same
for ad-hoc runs.  Violations raise :class:`ContractViolation`
(a :class:`~repro.exceptions.ValidationError`), naming the entry point and
the offending argument.
"""

from __future__ import annotations

import functools
import inspect
from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any

import numpy as np

from repro import config
from repro.exceptions import ContractViolation

__all__ = [
    "ContractViolation",
    "check_band_bounds",
    "check_constraint1",
    "check_routing_matrix",
    "contract",
    "contracts_active",
    "contracts_enabled",
    "disable_contracts",
    "enable_contracts",
]

_enabled: bool = config.get_bool("REPRO_CONTRACTS")


def contracts_enabled() -> bool:
    """True when contract decorators actively validate (default: off)."""
    return _enabled


def enable_contracts() -> None:
    """Switch every :func:`contract`-decorated entry point to validating."""
    global _enabled
    _enabled = True


def disable_contracts() -> None:
    """Return contract decorators to their production no-op mode."""
    global _enabled
    _enabled = False


@contextmanager
def contracts_active(enabled: bool = True) -> Iterator[None]:
    """Temporarily force contracts on (or off) within a ``with`` block."""
    global _enabled
    previous = _enabled
    _enabled = bool(enabled)
    try:
        yield
    finally:
        _enabled = previous


# -- checkers -------------------------------------------------------------


def check_routing_matrix(value: object, name: str = "routing_matrix") -> None:
    """``R`` must be a 2-D 0/1 matrix — the measurement model of eq. (1).

    A non-binary ``R`` means some path counts a link fractionally or
    multiply, which silently corrupts every derived operator (estimator,
    projectors, nullspace) while staying numerically plausible.
    """
    matrix = np.asarray(value, dtype=float)
    if matrix.ndim != 2:
        raise ContractViolation(
            f"{name} must be 2-D (n_paths x n_links), got ndim={matrix.ndim}"
        )
    if matrix.size and not np.all((matrix == 0.0) | (matrix == 1.0)):
        bad = np.argwhere((matrix != 0.0) & (matrix != 1.0))
        row, col = (int(v) for v in bad[0])
        raise ContractViolation(
            f"{name} must be a 0/1 incidence matrix; entry "
            f"[{row}, {col}] = {matrix[row, col]!r}"
        )


def check_constraint1(
    manipulation: object,
    support: Sequence[int],
    num_paths: int,
    *,
    name: str = "manipulation",
    atol: float = 1e-6,
) -> None:
    """Constraint 1: ``m >= 0`` and supported only on attacker paths.

    ``atol`` absorbs LP-solver round-off; anything beyond it is a planner
    bug leaking manipulation onto honest paths (which the paper's threat
    model forbids — the attacker cannot touch traffic it does not carry).
    """
    m = np.asarray(manipulation, dtype=float)
    if m.shape != (num_paths,):
        raise ContractViolation(
            f"{name} must have shape ({num_paths},), got {m.shape}"
        )
    if not np.all(np.isfinite(m)):
        raise ContractViolation(f"{name} must be finite")
    if m.size and float(m.min()) < -atol:
        raise ContractViolation(
            f"{name} violates Constraint 1: negative entry {float(m.min()):.6g} "
            "(attackers can only add delay/loss)"
        )
    mask = np.zeros(num_paths, dtype=bool)
    support_idx = list(support)
    if support_idx:
        mask[np.asarray(support_idx, dtype=int)] = True
    off = np.abs(m[~mask])
    if off.size and float(off.max()) > atol:
        bad = int(np.flatnonzero(~mask & (np.abs(m) > atol))[0])
        raise ContractViolation(
            f"{name} violates Constraint 1: path {bad} carries "
            f"{float(m[bad]):.6g} but contains no attacker node"
        )


def check_band_bounds(thresholds: object, name: str = "thresholds") -> None:
    """State bands must satisfy ``b_l <= b_u`` with finite, ordered bounds."""
    lower = getattr(thresholds, "lower", None)
    upper = getattr(thresholds, "upper", None)
    if lower is None or upper is None:
        try:
            lower, upper = thresholds  # type: ignore[misc]
        except (TypeError, ValueError):
            raise ContractViolation(
                f"{name} must expose (lower, upper) band bounds, "
                f"got {type(thresholds).__name__}"
            ) from None
    lower, upper = float(lower), float(upper)
    if not (np.isfinite(lower) and np.isfinite(upper)):
        raise ContractViolation(f"{name} band bounds must be finite")
    if lower > upper:
        raise ContractViolation(
            f"{name} band bounds out of order: b_l={lower} > b_u={upper}"
        )


# -- the decorator --------------------------------------------------------


def contract(
    *call_checks: Callable[[dict[str, Any]], None],
    **param_checks: Callable[[object, str], None],
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Attach contract checks to a function or method.

    ``param_checks`` maps parameter names to ``checker(value, name)``
    callables run on the bound argument; ``call_checks`` are
    ``checker(arguments)`` callables receiving the full bound-argument
    mapping (for cross-parameter invariants such as Constraint 1, which
    needs the manipulation vector *and* the context's support rows).

    When contracts are disabled (production default) the wrapper costs one
    boolean test; checks never run.  Checker failures raise
    :class:`ContractViolation` annotated with the entry-point name.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        signature = inspect.signature(fn)

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if _enabled:
                bound = signature.bind(*args, **kwargs)
                bound.apply_defaults()
                arguments = bound.arguments
                try:
                    for param, checker in param_checks.items():
                        if param in arguments:
                            checker(arguments[param], param)
                    for checker in call_checks:
                        checker(arguments)
                except ContractViolation as exc:
                    raise ContractViolation(
                        f"{fn.__qualname__}: {exc}"
                    ) from exc
            return fn(*args, **kwargs)

        wrapper.__repro_contract__ = {  # type: ignore[attr-defined]
            "params": tuple(param_checks),
            "call_checks": len(call_checks),
        }
        return wrapper

    return decorate
