"""RP009 — the obs event schema and its consumers must agree.

The run-log producer (``<root>.obs.core``) and the summariser
(``<root>.obs.summary``) evolve independently; nothing at runtime checks
that a field the summariser reads is actually written, because
``dict.get`` swallows the drift.  This rule closes the loop statically:

- **Emit side** — every dict literal in the core module carrying a
  ``"kind"`` key is an emission site; its literal keys are the fields of
  that record kind (a ``**fields`` splat marks the kind open-ended).
  ``_emit`` stamps the ``t``/``span`` envelope onto every record.
- **Consume side** — inside ``summarize_events``, each
  ``kind == "..."`` comparison opens a branch whose ``record.get("f")``
  reads consume fields of that kind; ``header.get`` / ``footer.get``
  reads bind to those kinds by variable name.

Checks: a consumed kind nobody emits, a consumed field absent from any
emission site of its kind, and an emitted kind the summariser ignores
entirely (advisory drift in the other direction).

The same extraction renders ``docs/OBS_EVENTS.md`` — the record-kind
catalog plus every instrumentation call site in the package — via
:func:`render_obs_catalog`.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.registry import ProjectRule, Violation, register_rule
from repro.analysis.project import ModuleFacts, ProjectModel

__all__ = ["ObsSchemaRule", "extract_consumed", "extract_emitted", "render_obs_catalog"]

#: Fields stamped by the ``_emit`` envelope onto every record.
_ENVELOPE_FIELDS = frozenset({"t", "span"})


@dataclass
class EmittedKind:
    """One record kind as produced by the core module."""

    kind: str
    fields: set[str] = field(default_factory=set)
    open_ended: bool = False
    linenos: list[int] = field(default_factory=list)
    #: Per-site field sets, for the every-site presence check.
    sites: list[tuple[int, frozenset[str], bool]] = field(default_factory=list)


def extract_emitted(core_path: Path) -> dict[str, EmittedKind]:
    """Emission sites of the core module: kind -> fields/open/sites."""
    tree = ast.parse(core_path.read_text(encoding="utf-8"))
    emitted: dict[str, EmittedKind] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Dict):
            continue
        keys: list[str] = []
        kind: str | None = None
        open_ended = False
        for key, value in zip(node.keys, node.values):
            if key is None:
                open_ended = True  # a **splat merges caller fields
                continue
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
                if key.value == "kind" and isinstance(value, ast.Constant):
                    if isinstance(value.value, str):
                        kind = value.value
        if kind is None:
            continue
        entry = emitted.setdefault(kind, EmittedKind(kind=kind))
        site_fields = frozenset(keys)
        entry.fields.update(keys)
        entry.open_ended = entry.open_ended or open_ended
        entry.linenos.append(node.lineno)
        entry.sites.append((node.lineno, site_fields, open_ended))
    return emitted


@dataclass
class ConsumedField:
    """One field read by the summariser, attributed to a record kind."""

    kind: str
    field_name: str
    lineno: int


def _branch_kind(test: ast.expr) -> str | None:
    """The literal of a ``kind == "..."`` comparison, if that's the test."""
    if not isinstance(test, ast.Compare) or len(test.comparators) != 1:
        return None
    if not any(isinstance(op, ast.Eq) for op in test.ops):
        return None
    left, right = test.left, test.comparators[0]
    for a, b in ((left, right), (right, left)):
        if isinstance(a, ast.Name) and a.id == "kind":
            if isinstance(b, ast.Constant) and isinstance(b.value, str):
                return b.value
    return None


def _get_reads(node: ast.AST) -> Iterator[tuple[str, str, int]]:
    """``owner.get("field")`` reads under ``node`` as (owner, field, line)."""
    for child in ast.walk(node):
        if not isinstance(child, ast.Call):
            continue
        func = child.func
        if not (isinstance(func, ast.Attribute) and func.attr == "get"):
            continue
        if not child.args:
            continue
        first = child.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            continue
        owner = func.value
        owner_name: str | None = None
        if isinstance(owner, ast.Name):
            owner_name = owner.id
        elif isinstance(owner, ast.BoolOp) and owner.values:
            head = owner.values[0]
            if isinstance(head, ast.Name):
                owner_name = head.id  # the ``(footer or {}).get`` idiom
        elif isinstance(owner, ast.Subscript):
            base = owner.value
            if isinstance(base, ast.Name):
                owner_name = base.id
        if owner_name is not None:
            yield owner_name, first.value, child.lineno


def extract_consumed(summary_path: Path) -> tuple[list[ConsumedField], set[str]]:
    """Field reads of ``summarize_events``, attributed to record kinds.

    Returns the consumed fields and the set of kinds the summariser
    dispatches on at all (via branch tests or header/footer binding).
    """
    tree = ast.parse(summary_path.read_text(encoding="utf-8"))
    consumed: list[ConsumedField] = []
    dispatched: set[str] = set()
    target: ast.FunctionDef | None = None
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "summarize_events":
            target = node
    if target is None:
        return consumed, dispatched

    #: Variables bound to records of a fixed kind by convention.
    named_owners = {"header": "header", "footer": "footer"}

    def walk(body: list[ast.stmt], branch_kind: str | None) -> None:
        for statement in body:
            if isinstance(statement, ast.If):
                this_kind = _branch_kind(statement.test)
                if this_kind is not None:
                    dispatched.add(this_kind)
                walk(statement.body, this_kind if this_kind is not None else branch_kind)
                walk(statement.orelse, branch_kind)
                continue
            if isinstance(statement, (ast.For, ast.While, ast.With)):
                walk(statement.body, branch_kind)
                walk(getattr(statement, "orelse", []), branch_kind)
                continue
            if isinstance(statement, ast.Try):
                for block in (statement.body, statement.orelse, statement.finalbody):
                    walk(block, branch_kind)
                for handler in statement.handlers:
                    walk(handler.body, branch_kind)
                continue
            for owner, field_name, lineno in _get_reads(statement):
                kind: str | None = None
                if owner == "record":
                    kind = branch_kind
                elif owner in named_owners:
                    kind = named_owners[owner]
                    dispatched.add(kind)
                if kind is not None:
                    consumed.append(ConsumedField(kind, field_name, lineno))

    walk(target.body, None)
    return consumed, dispatched


@register_rule
class ObsSchemaRule(ProjectRule):
    """RP009 — summariser field reads must exist at every emission site."""

    rule_id = "RP009"
    summary = (
        "obs record kinds/fields read by the summariser must be emitted by "
        "the event log (and every emitted kind should be summarised)"
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        root = project.root_package
        core = project.by_module.get(f"{root}.obs.core")
        summary = project.by_module.get(f"{root}.obs.summary")
        if core is None or summary is None:
            return
        try:
            emitted = extract_emitted(Path(core.path))
            consumed, dispatched = extract_consumed(Path(summary.path))
        except (OSError, SyntaxError):
            return
        if not emitted:
            return
        for read in consumed:
            entry = emitted.get(read.kind)
            if entry is None:
                yield self.project_violation(
                    summary.path,
                    read.lineno,
                    f"summariser consumes record kind {read.kind!r} that "
                    f"{root}.obs.core never emits",
                )
                continue
            if read.field_name in _ENVELOPE_FIELDS:
                continue
            for lineno, site_fields, open_ended in entry.sites:
                if read.field_name in site_fields or open_ended:
                    continue
                yield self.project_violation(
                    core.path,
                    lineno,
                    f"{read.kind!r} emission site lacks field "
                    f"{read.field_name!r} read by the summariser "
                    f"({summary.rel_path}:{read.lineno})",
                )
        for kind in dispatched:
            if kind not in emitted:
                # Already reported per consuming read above; keep one-liner
                # coverage for dispatch-only branches with no field reads.
                if not any(read.kind == kind for read in consumed):
                    yield self.project_violation(
                        summary.path,
                        1,
                        f"summariser dispatches on record kind {kind!r} that "
                        f"{root}.obs.core never emits",
                    )
        for kind, entry in sorted(emitted.items()):
            if kind not in dispatched:
                yield self.project_violation(
                    core.path,
                    entry.linenos[0],
                    f"record kind {kind!r} is emitted but the summariser "
                    "never reads it — schema drift (extend summarize_events "
                    "or drop the kind)",
                )


def render_obs_catalog(project: ProjectModel) -> str:
    """The ``docs/OBS_EVENTS.md`` markdown: record kinds + call sites."""
    root = project.root_package
    core = project.by_module.get(f"{root}.obs.core")
    summary = project.by_module.get(f"{root}.obs.summary")
    lines = [
        "# Observability event catalog",
        "",
        "Generated by `repro analyze --obs-catalog` (rule RP009's extraction",
        "pass); regenerate after changing the event log or the summariser.",
        "",
    ]
    if core is not None:
        emitted = extract_emitted(Path(core.path))
        consumed: list[ConsumedField] = []
        if summary is not None:
            consumed, _ = extract_consumed(Path(summary.path))
        by_kind: dict[str, set[str]] = {}
        for read in consumed:
            by_kind.setdefault(read.kind, set()).add(read.field_name)
        lines += [
            "## Record kinds",
            "",
            f"Schema as emitted by `{root}.obs.core` (every record also",
            "carries the `t` timestamp and, inside a span, `span`).",
            "",
            "| kind | fields | open | summariser reads |",
            "|------|--------|------|------------------|",
        ]
        for kind, entry in sorted(emitted.items()):
            fields = ", ".join(
                f"`{name}`" for name in sorted(entry.fields - {"kind"})
            )
            reads = ", ".join(f"`{name}`" for name in sorted(by_kind.get(kind, set())))
            open_mark = "yes" if entry.open_ended else ""
            lines.append(f"| `{kind}` | {fields} | {open_mark} | {reads or '—'} |")
        lines.append("")
    emits: list[tuple[str, str, str, int]] = []
    for facts in project.package_files():
        for emit in facts.obs_emits:
            if emit["name"] is None:
                continue
            emits.append((emit["api"], emit["name"], facts.rel_path, emit["lineno"]))
    if emits:
        lines += [
            "## Instrumentation sites",
            "",
            "Every named `obs`/`perf` emission call in the package.",
            "",
            "| api | name | site |",
            "|-----|------|------|",
        ]
        for api, name, rel, lineno in sorted(emits, key=lambda e: (e[0], e[1], e[2])):
            lines.append(f"| `{api}` | `{name}` | `{rel}:{lineno}` |")
        lines.append("")
    return "\n".join(lines)
