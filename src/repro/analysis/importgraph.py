"""Import-graph rules: architecture layering (RP006) and dead code (RP010).

The layer contract lives in ``analysis/layers.toml`` next to this module:
an ordered list of layers, each naming dotted module prefixes under the
root package.  RP006 checks every **module-scope** import edge against
the contract — an import from a higher layer is a violation, as is a
package module assigned to no layer.  Function-local (lazy) imports are
exempt by design: they carry no import-time coupling, and the CLI and
routing diagnostics use them precisely to break would-be cycles.

RP010 flags public top-level definitions in the package that no other
analyzed file references — by name load, attribute access, from-import,
or ``__all__`` export.  It is opt-in (``repro analyze --select RP010``)
because reference analysis is necessarily name-based: a symbol kept for
external consumers looks identical to a dead one, so findings are review
prompts rather than hard failures.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.lint.registry import ProjectRule, Violation, register_rule
from repro.analysis.project import ModuleFacts, ProjectModel
from repro.exceptions import ValidationError

__all__ = [
    "DEFAULT_LAYERS_PATH",
    "DeadCodeRule",
    "LayerContract",
    "LayerContractRule",
    "load_layer_contract",
]

#: The contract shipped with the repository.
DEFAULT_LAYERS_PATH = Path(__file__).resolve().parent / "layers.toml"


@dataclass(frozen=True)
class Layer:
    """One layer: its position, name, and dotted module prefixes."""

    index: int
    name: str
    prefixes: tuple[str, ...]


@dataclass(frozen=True)
class LayerContract:
    """The ordered layer stack for one root package."""

    root: str
    layers: tuple[Layer, ...]

    def layer_of(self, sub_module: str) -> Layer | None:
        """The layer owning ``sub_module`` (longest prefix wins)."""
        best: Layer | None = None
        best_length = -1
        for layer in self.layers:
            for prefix in layer.prefixes:
                if prefix == ".":
                    if sub_module == "" and best_length < 0:
                        best, best_length = layer, 0
                    continue
                if sub_module == prefix or sub_module.startswith(prefix + "."):
                    if len(prefix) > best_length:
                        best, best_length = layer, len(prefix)
        return best


def _parse_minimal_toml(text: str) -> dict[str, object]:
    """Parse the layers.toml subset on interpreters without ``tomllib``.

    Handles exactly what the contract file uses: top-level string keys,
    ``[[layers]]`` array-of-tables headers, and single-line string
    arrays.  Anything else raises so a malformed contract fails loudly.
    """
    data: dict[str, object] = {}
    tables: list[dict[str, object]] = []
    current: dict[str, object] | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line == "[[layers]]":
            current = {}
            tables.append(current)
            data["layers"] = tables
            continue
        if "=" not in line:
            raise ValidationError(f"unparseable layers.toml line: {raw!r}")
        key, _, value = line.partition("=")
        key = key.strip()
        value = value.strip()
        parsed: object
        if value.startswith("[") and value.endswith("]"):
            items = [item.strip() for item in value[1:-1].split(",") if item.strip()]
            parsed = [item.strip("\"'") for item in items]
        elif value.startswith('"') and value.endswith('"'):
            parsed = value[1:-1]
        else:
            raise ValidationError(f"unparseable layers.toml value: {raw!r}")
        (current if current is not None else data)[key] = parsed
    return data


def load_layer_contract(path: str | Path | None = None) -> LayerContract:
    """Load and validate a layer contract (default: the shipped one)."""
    contract_path = Path(path) if path is not None else DEFAULT_LAYERS_PATH
    try:
        text = contract_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ValidationError(f"cannot read layer contract {contract_path}: {exc}") from exc
    try:
        import tomllib

        data = tomllib.loads(text)
    except ModuleNotFoundError:  # Python 3.10
        data = _parse_minimal_toml(text)
    except Exception as exc:
        raise ValidationError(f"invalid layer contract {contract_path}: {exc}") from exc
    root = data.get("root")
    raw_layers = data.get("layers")
    if not isinstance(root, str) or not isinstance(raw_layers, list) or not raw_layers:
        raise ValidationError(
            f"layer contract {contract_path} needs a root string and [[layers]]"
        )
    layers: list[Layer] = []
    seen_prefixes: set[str] = set()
    for index, entry in enumerate(raw_layers):
        name = entry.get("name")
        prefixes = entry.get("modules")
        if not isinstance(name, str) or not isinstance(prefixes, list) or not prefixes:
            raise ValidationError(
                f"layer contract {contract_path}: layer {index} needs name and modules"
            )
        for prefix in prefixes:
            if prefix in seen_prefixes:
                raise ValidationError(
                    f"layer contract {contract_path}: prefix {prefix!r} assigned twice"
                )
            seen_prefixes.add(prefix)
        layers.append(Layer(index=index, name=name, prefixes=tuple(prefixes)))
    return LayerContract(root=root, layers=tuple(layers))


def _module_scope_targets(facts: ModuleFacts, root: str) -> Iterator[tuple[str, int]]:
    """Dotted in-package import targets bound at module scope."""
    prefix = root + "."
    for imp in facts.imports:
        if imp["scope"] != "module":
            continue
        module = imp["module"]
        if not (module == root or module.startswith(prefix)):
            continue
        # ``from pkg import name`` may target the submodule pkg.name.
        if imp["kind"] == "from":
            yield f"{module}.{imp['name']}", imp["lineno"]
        else:
            yield module, imp["lineno"]


@register_rule
class LayerContractRule(ProjectRule):
    """RP006 — module-scope imports must respect the layer contract."""

    rule_id = "RP006"
    summary = (
        "module-scope imports must flow downward through the layer contract "
        "(analysis/layers.toml); unassigned package modules are violations"
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        contract = load_layer_contract(project.layers_path)
        root = contract.root
        for facts in project.package_files():
            sub = facts.sub_module(root)
            if sub is None:
                continue
            importer_layer = contract.layer_of(sub)
            if importer_layer is None:
                yield self.project_violation(
                    facts.path,
                    1,
                    f"module {facts.module} is not assigned to any layer in "
                    "layers.toml — add it to the contract",
                )
                continue
            for target, lineno in _module_scope_targets(facts, root):
                target_sub = self._target_sub_module(project, root, target)
                if target_sub is None:
                    continue
                target_layer = contract.layer_of(target_sub)
                if target_layer is None:
                    # Reported once at the defining module, not per import.
                    continue
                if target_layer.index > importer_layer.index:
                    yield self.project_violation(
                        facts.path,
                        lineno,
                        f"layer {importer_layer.name!r} module {facts.module} "
                        f"imports {root}.{target_sub} from higher layer "
                        f"{target_layer.name!r} at module scope "
                        "(use a function-local import or invert the dependency)",
                    )

    @staticmethod
    def _target_sub_module(
        project: ProjectModel, root: str, target: str
    ) -> str | None:
        """Resolve a dotted import target to a known module's sub-path.

        ``from repro.attacks import lp`` targets ``repro.attacks.lp`` when
        that module exists, otherwise the name is an attribute of
        ``repro.attacks`` and the edge binds the shorter module.
        """
        candidate = target
        while candidate and candidate != root:
            if candidate in project.by_module:
                facts = project.by_module[candidate]
                return facts.sub_module(root)
            candidate = candidate.rpartition(".")[0]
        if candidate == root and candidate in project.by_module:
            return project.by_module[candidate].sub_module(root)
        return None


@register_rule
class DeadCodeRule(ProjectRule):
    """RP010 — public top-level symbols nothing else references."""

    rule_id = "RP010"
    summary = (
        "public module-level function/class referenced by no other analyzed "
        "file (opt-in: repro analyze --select RP010)"
    )

    #: Opt-in rules are skipped unless explicitly selected.
    default_enabled = False

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        root = project.root_package
        refs_elsewhere: dict[str, set[str]] = {}
        for facts in project.files:
            key = facts.rel_path
            names = set(facts.name_refs)
            names.update(facts.all_exports)
            for name in names:
                refs_elsewhere.setdefault(name, set()).add(key)
        for facts in project.package_files():
            if facts.rel_path.endswith("__init__.py"):
                # Facade modules re-export; their symbols are the API.
                continue
            exported = set(facts.all_exports)
            for definition in facts.public_defs:
                name = definition["name"]
                if definition.get("decorated"):
                    # Decorators consume the object (registration patterns,
                    # fixtures, dispatch tables) — not dead by name analysis.
                    continue
                users = refs_elsewhere.get(name, set()) - {facts.rel_path}
                if users:
                    continue
                if name in exported:
                    hint = "exported in __all__ but never referenced elsewhere"
                else:
                    hint = "referenced by no other analyzed file"
                yield self.project_violation(
                    facts.path,
                    definition["lineno"],
                    f"public {definition['kind']} {name!r} looks dead: {hint} "
                    "(delete it, underscore it, or keep it via noqa with a reason)",
                )
