"""Lint engine: file walking, parsing, suppression, and report shaping.

The engine is deliberately dependency-free (stdlib ``ast`` only): it walks
the given files/directories, parses each module once, hands the tree to
every selected rule, and filters findings through per-line
``# repro: noqa`` / ``# repro: noqa RP001,RP002`` suppressions.  Parse
failures surface as ``RP000`` findings so a syntactically broken file
fails the lint run instead of being skipped silently.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.analysis.lint.registry import (
    LintRule,
    ModuleSource,
    Violation,
    all_rules,
    resolve_selection,
)
from repro.exceptions import ValidationError

__all__ = [
    "collect_python_files",
    "format_violations",
    "lint_file",
    "lint_paths",
    "noqa_rules_for_line",
]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s+(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
    re.IGNORECASE,
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})


def noqa_rules_for_line(line: str) -> frozenset[str] | None:
    """Suppression spec of one physical line.

    Returns ``None`` when the line has no ``repro: noqa`` comment, an empty
    frozenset for a blanket ``# repro: noqa`` (suppress every rule), or the
    set of rule ids for a targeted ``# repro: noqa RP001,RP002``.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(code.strip().upper() for code in codes.split(","))


def _suppressed(violation: Violation, lines: Sequence[str]) -> bool:
    if not 1 <= violation.line <= len(lines):
        return False
    spec = noqa_rules_for_line(lines[violation.line - 1])
    if spec is None:
        return False
    return not spec or violation.rule in spec


def collect_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises :class:`~repro.exceptions.ValidationError` for paths that do not
    exist — a typo'd path must not pass as "nothing to lint".
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        elif path.is_file():
            files.add(path)
        else:
            raise ValidationError(f"lint path {raw!s} does not exist")
    return sorted(files)


def _relative_to_root(path: Path, roots: Sequence[Path]) -> str:
    for root in roots:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def lint_file(
    path: Path, rules: Sequence[LintRule], *, rel_path: str | None = None
) -> list[Violation]:
    """Lint one file with the given rule instances."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule="RP000",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    module = ModuleSource(
        path=path,
        rel_path=rel_path if rel_path is not None else path.as_posix(),
        source=source,
        tree=tree,
        lines=lines,
    )
    found: list[Violation] = []
    for rule in rules:
        found.extend(v for v in rule.check(module) if not _suppressed(v, lines))
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return found


def lint_paths(
    paths: Iterable[str | Path], *, select: Iterable[str] | None = None
) -> list[Violation]:
    """Lint files/directories; returns all violations sorted by location.

    ``select`` limits the run to the given rule ids (``None`` = all
    registered rules); unknown ids raise
    :class:`~repro.exceptions.ValidationError`.
    """
    path_list = [Path(p) for p in paths]
    rules = resolve_selection(select)
    roots = [p if p.is_dir() else p.parent for p in path_list]
    violations: list[Violation] = []
    for file_path in collect_python_files(path_list):
        rel = _relative_to_root(file_path, roots)
        violations.extend(lint_file(file_path, rules, rel_path=rel))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def format_violations(
    violations: Sequence[Violation], *, fmt: str = "text", select: Iterable[str] | None = None
) -> str:
    """Render violations as ``text`` or ``json`` (machine-readable report)."""
    if fmt == "text":
        if not violations:
            return "repro lint: clean"
        lines = [v.render() for v in violations]
        lines.append(f"repro lint: {len(violations)} violation(s)")
        return "\n".join(lines)
    if fmt == "json":
        selected = sorted(
            {code.strip().upper() for code in select} if select else all_rules()
        )
        payload = {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
            "rules": selected,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    raise ValidationError(f"unknown lint output format {fmt!r}")
