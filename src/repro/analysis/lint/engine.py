"""Lint engine: file walking, parsing, suppression, and report shaping.

The engine is deliberately dependency-free (stdlib ``ast`` only): it walks
the given files/directories, parses each module once, hands the tree to
every selected rule, and filters findings through per-line
``# repro: noqa`` / ``# repro: noqa RP001,RP002`` suppressions.  Parse
failures surface as ``RP000`` findings so a syntactically broken file
fails the lint run instead of being skipped silently.

Two entry points share this machinery:

- :func:`lint_paths` — the per-file rules only, one module at a time.
- :func:`analyze_paths` — the whole-program analyzer: per-file facts are
  extracted once (through the SHA-256 content cache), the per-file rules
  run on cache misses, and the project rules (RP006+) run over the
  assembled :class:`~repro.analysis.project.ProjectModel`.  Results fold
  into an :class:`AnalysisReport` carrying severities, baseline
  suppression, and cache statistics.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import json
import re
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.analysis.lint.registry import (
    LintRule,
    ModuleSource,
    ProjectRule,
    Violation,
    all_rules,
    resolve_selection,
)
from repro.exceptions import ValidationError

if TYPE_CHECKING:  # resolved lazily at runtime to keep lint importable alone
    from repro.analysis.project import ModuleFacts

__all__ = [
    "AnalysisReport",
    "DEFAULT_CACHE_DIR",
    "PROFILES",
    "analyze_paths",
    "collect_python_files",
    "format_analysis",
    "format_violations",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "noqa_rules_for_line",
    "write_baseline",
]

#: Default location of the content-hash facts cache.
DEFAULT_CACHE_DIR = ".repro-analysis-cache"

#: Severity profiles: rules demoted to advisory per audience.  Library
#: code answers for every rule; test/benchmark/example code may multiply
#: bare literals and seed ad-hoc RNGs without failing the run.
PROFILES: dict[str, frozenset[str]] = {
    "src": frozenset(),
    "tests": frozenset({"RP002", "RP003"}),
}

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\s+(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
    re.IGNORECASE,
)

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "venv", "build", "dist"})


def noqa_rules_for_line(line: str) -> frozenset[str] | None:
    """Suppression spec of one physical line.

    Returns ``None`` when the line has no ``repro: noqa`` comment, an empty
    frozenset for a blanket ``# repro: noqa`` (suppress every rule), or the
    set of rule ids for a targeted ``# repro: noqa RP001,RP002``.
    """
    match = _NOQA_RE.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return frozenset()
    return frozenset(code.strip().upper() for code in codes.split(","))


def _suppressed(violation: Violation, lines: Sequence[str]) -> bool:
    if not 1 <= violation.line <= len(lines):
        return False
    spec = noqa_rules_for_line(lines[violation.line - 1])
    if spec is None:
        return False
    return not spec or violation.rule in spec


def collect_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Raises :class:`~repro.exceptions.ValidationError` for paths that do not
    exist — a typo'd path must not pass as "nothing to lint".
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(candidate.parts)
            )
        elif path.is_file():
            files.add(path)
        else:
            raise ValidationError(f"lint path {raw!s} does not exist")
    return sorted(files)


def _relative_to_root(path: Path, roots: Sequence[Path]) -> str:
    for root in roots:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def lint_file(
    path: Path, rules: Sequence[LintRule], *, rel_path: str | None = None
) -> list[Violation]:
    """Lint one file with the given rule instances."""
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule="RP000",
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    module = ModuleSource(
        path=path,
        rel_path=rel_path if rel_path is not None else path.as_posix(),
        source=source,
        tree=tree,
        lines=lines,
    )
    found: list[Violation] = []
    for rule in rules:
        found.extend(v for v in rule.check(module) if not _suppressed(v, lines))
    found.sort(key=lambda v: (v.line, v.col, v.rule))
    return found


def _apply_profile(violations: list[Violation], profile: str) -> list[Violation]:
    """Demote the profile's advisory rules; unknown profiles are errors."""
    if profile not in PROFILES:
        known = ", ".join(sorted(PROFILES))
        raise ValidationError(f"unknown lint profile {profile!r} (known: {known})")
    advisory = PROFILES[profile]
    if not advisory:
        return violations
    return [
        dataclasses.replace(v, severity="advisory") if v.rule in advisory else v
        for v in violations
    ]


def lint_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    profile: str = "src",
) -> list[Violation]:
    """Lint files/directories; returns all violations sorted by location.

    ``select`` limits the run to the given rule ids (``None`` = all
    registered rules); unknown ids raise
    :class:`~repro.exceptions.ValidationError`.  ``profile`` picks the
    severity profile (``tests`` demotes RP002/RP003 to advisory).
    """
    path_list = [Path(p) for p in paths]
    resolved = resolve_selection(select)
    if select is not None:
        project_ids = [r.rule_id for r in resolved if isinstance(r, ProjectRule)]
        if project_ids:
            raise ValidationError(
                f"rule(s) {', '.join(project_ids)} need the whole-program "
                "analyzer: use `repro analyze`, not `repro lint`"
            )
    rules = [r for r in resolved if not isinstance(r, ProjectRule)]
    roots = [p if p.is_dir() else p.parent for p in path_list]
    violations: list[Violation] = []
    for file_path in collect_python_files(path_list):
        rel = _relative_to_root(file_path, roots)
        violations.extend(lint_file(file_path, rules, rel_path=rel))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return _apply_profile(violations, profile)


def format_violations(
    violations: Sequence[Violation], *, fmt: str = "text", select: Iterable[str] | None = None
) -> str:
    """Render violations as ``text`` or ``json`` (machine-readable report)."""
    if fmt == "text":
        if not violations:
            return "repro lint: clean"
        lines = [v.render() for v in violations]
        lines.append(f"repro lint: {len(violations)} violation(s)")
        return "\n".join(lines)
    if fmt == "json":
        selected = sorted(
            {code.strip().upper() for code in select} if select else all_rules()
        )
        payload = {
            "violations": [v.as_dict() for v in violations],
            "count": len(violations),
            "rules": selected,
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    raise ValidationError(f"unknown lint output format {fmt!r}")


# ---------------------------------------------------------------------------
# The whole-program analyzer
# ---------------------------------------------------------------------------


@dataclass
class AnalysisReport:
    """Outcome of one :func:`analyze_paths` run.

    ``violations`` holds the *active* findings (baseline-suppressed ones
    are counted, not listed); ``expired`` lists baseline entries that no
    current finding matches — stale acceptances to prune, reported but
    never fatal.
    """

    violations: list[Violation] = field(default_factory=list)
    suppressed: int = 0
    expired: list[dict[str, Any]] = field(default_factory=list)
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    root_package: str = "repro"
    rules: list[str] = field(default_factory=list)

    @property
    def error_count(self) -> int:
        return sum(1 for v in self.violations if v.severity == "error")

    @property
    def advisory_count(self) -> int:
        return sum(1 for v in self.violations if v.severity != "error")

    @property
    def exit_code(self) -> int:
        """0 clean (advisories allowed), 1 when any error-severity finding."""
        return 1 if self.error_count else 0


def load_baseline(path: str | Path) -> dict[str, dict[str, Any]]:
    """Accepted findings keyed by fingerprint.

    The file is JSON: ``{"version": 1, "findings": [{"fingerprint": ...,
    "rule": ..., "path": ..., "message": ...}]}``.  A missing or
    malformed baseline is a usage error — silently analyzing without the
    acceptances would flip the run's meaning.
    """
    baseline_path = Path(path)
    try:
        payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValidationError(f"cannot read baseline {baseline_path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValidationError(f"baseline {baseline_path} is not JSON: {exc}") from exc
    findings = payload.get("findings") if isinstance(payload, dict) else None
    if not isinstance(findings, list):
        raise ValidationError(
            f"baseline {baseline_path} must be an object with a findings list"
        )
    accepted: dict[str, dict[str, Any]] = {}
    for entry in findings:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValidationError(
                f"baseline {baseline_path}: every finding needs a fingerprint"
            )
        accepted[str(entry["fingerprint"])] = entry
    return accepted


def write_baseline(report: AnalysisReport, path: str | Path) -> None:
    """Accept the report's current findings as the new baseline."""
    entries = [
        {
            "fingerprint": v.fingerprint(),
            "rule": v.rule,
            "path": v.path,
            "message": v.message,
        }
        for v in sorted(report.violations, key=lambda v: (v.rule, v.path, v.message))
    ]
    payload = {"version": 1, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def _detect_root_package(facts_list: list[ModuleFacts]) -> str:
    """The dominant top-level package among the analyzed modules."""
    counts: dict[str, int] = {}
    for facts in facts_list:
        if facts.module:
            top = facts.module.split(".")[0]
            counts[top] = counts.get(top, 0) + 1
    if not counts:
        return "repro"
    return max(sorted(counts), key=lambda name: counts[name])


def _violations_from_facts(facts: ModuleFacts, rule_ids: set[str]) -> list[Violation]:
    """Reconstruct the cached per-file findings, noqa-filtered."""
    found: list[Violation] = []
    if facts.parse_error is not None:
        found.append(
            Violation(
                rule="RP000",
                path=facts.path,
                line=facts.parse_error["lineno"],
                col=facts.parse_error["col"],
                message=f"syntax error: {facts.parse_error['message']}",
            )
        )
        return found
    for rule_id, entries in facts.violations.items():
        if rule_id not in rule_ids:
            continue
        for entry in entries:
            violation = Violation(
                rule=entry["rule"],
                path=entry["path"],
                line=entry["line"],
                col=entry["col"],
                message=entry["message"],
            )
            if not _suppressed_by_noqa(violation, facts.noqa):
                found.append(violation)
    return found


def _suppressed_by_noqa(
    violation: Violation, noqa: dict[int, list[str] | None]
) -> bool:
    spec = noqa.get(violation.line)
    if spec is None and violation.line not in noqa:
        return False
    return not spec or violation.rule in spec


def analyze_paths(
    paths: Iterable[str | Path],
    *,
    select: Iterable[str] | None = None,
    profile: str = "src",
    use_cache: bool = True,
    cache_dir: str | Path = DEFAULT_CACHE_DIR,
    layers_path: str | Path | None = None,
    root_package: str | None = None,
    baseline: str | Path | None = None,
) -> AnalysisReport:
    """Run the whole-program analyzer over ``paths``.

    Per-file facts (and per-file rule findings) round-trip through the
    content-hash cache; the project rules re-run every time over the
    assembled model — they are cheap once extraction is amortised.
    """
    from repro.analysis.project import AnalysisCache, ProjectModel, extract_facts

    path_list = [Path(p) for p in paths]
    rules = resolve_selection(select)
    file_rule_instances = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rule_instances = [r for r in rules if isinstance(r, ProjectRule)]
    file_rule_ids = {r.rule_id for r in file_rule_instances}
    signature = ",".join(sorted(file_rule_ids))
    cache = (
        AnalysisCache(cache_dir, rules_signature=signature) if use_cache else None
    )
    roots = [p if p.is_dir() else p.parent for p in path_list]

    facts_list: list[ModuleFacts] = []
    for file_path in collect_python_files(path_list):
        rel = _relative_to_root(file_path, roots)
        source = file_path.read_text(encoding="utf-8")
        facts = None
        if cache is not None:
            sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
            facts = cache.load(rel, sha)
        if facts is None:
            tree = None
            try:
                tree = ast.parse(source, filename=str(file_path))
            except SyntaxError:
                pass  # extract_facts records the parse error itself
            facts = extract_facts(file_path, rel_path=rel, source=source, tree=tree)
            if tree is not None and file_rule_instances:
                module = ModuleSource(
                    path=file_path,
                    rel_path=rel,
                    source=source,
                    tree=tree,
                    lines=source.splitlines(),
                )
                for rule in file_rule_instances:
                    found = list(rule.check(module))
                    if found:
                        facts.violations[rule.rule_id] = [
                            v.as_dict() for v in found
                        ]
            if cache is not None:
                cache.store(facts)
        facts_list.append(facts)

    violations: list[Violation] = []
    facts_by_path: dict[str, ModuleFacts] = {}
    for facts in facts_list:
        facts_by_path[facts.path] = facts
        violations.extend(_violations_from_facts(facts, file_rule_ids))

    detected_root = root_package or _detect_root_package(facts_list)
    project = ProjectModel(
        files=facts_list,
        root_package=detected_root,
        layers_path=Path(layers_path) if layers_path is not None else None,
    )
    for rule in project_rule_instances:
        for violation in rule.check_project(project):
            owner = facts_by_path.get(violation.path)
            if owner is not None and _suppressed_by_noqa(violation, owner.noqa):
                continue
            violations.append(violation)

    violations = _apply_profile(violations, profile)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    report = AnalysisReport(
        files=len(facts_list),
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        root_package=detected_root,
        rules=sorted(r.rule_id for r in rules),
    )
    if baseline is not None:
        accepted = load_baseline(baseline)
        matched: set[str] = set()
        active: list[Violation] = []
        for violation in violations:
            fingerprint = violation.fingerprint()
            if fingerprint in accepted:
                matched.add(fingerprint)
            else:
                active.append(violation)
        report.suppressed = len(violations) - len(active)
        report.violations = active
        report.expired = [
            accepted[fp] for fp in sorted(set(accepted) - matched)
        ]
    else:
        report.violations = violations
    return report


def format_analysis(report: AnalysisReport, *, fmt: str = "text") -> str:
    """Render an analysis report as ``text`` or deterministic ``json``.

    The JSON payload deliberately excludes cache statistics so that a
    cold and a warm run of the same tree produce byte-identical output.
    """
    if fmt == "json":
        payload = {
            "root_package": report.root_package,
            "files": report.files,
            "rules": report.rules,
            "violations": [v.as_dict() for v in report.violations],
            "errors": report.error_count,
            "advisories": report.advisory_count,
            "baseline_suppressed": report.suppressed,
            "baseline_expired": sorted(
                str(entry.get("fingerprint")) for entry in report.expired
            ),
        }
        return json.dumps(payload, indent=2, sort_keys=True)
    if fmt != "text":
        raise ValidationError(f"unknown analyze output format {fmt!r}")
    lines = [v.render() for v in report.violations]
    for entry in report.expired:
        lines.append(
            "baseline entry no longer matches any finding "
            f"(prune it): {entry.get('rule')} {entry.get('path')} "
            f"[{entry.get('fingerprint')}]"
        )
    summary = (
        f"repro analyze: {report.files} file(s), "
        f"{report.error_count} error(s), {report.advisory_count} advisory"
    )
    if report.suppressed:
        summary += f", {report.suppressed} baseline-suppressed"
    if report.cache_hits or report.cache_misses:
        summary += f" [cache {report.cache_hits} hit / {report.cache_misses} miss]"
    lines.append(summary)
    return "\n".join(lines)
