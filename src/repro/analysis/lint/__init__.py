"""AST-based lint engine with repo-specific rules (RP001–RP005).

Public surface:

- :func:`lint_paths` / :func:`lint_file` — run the rules over files,
- :func:`format_violations` — text/JSON report shaping,
- :func:`all_rules` — the registry (feeds ``--select`` and the docs table),
- :class:`Violation` — one finding.

See :mod:`repro.analysis.lint.rules` for what each rule enforces and why.
"""

from __future__ import annotations

from repro.analysis.lint.engine import (
    collect_python_files,
    format_violations,
    lint_file,
    lint_paths,
    noqa_rules_for_line,
)
from repro.analysis.lint.registry import (
    LintRule,
    ModuleSource,
    Violation,
    all_rules,
    register_rule,
    resolve_selection,
)

__all__ = [
    "LintRule",
    "ModuleSource",
    "Violation",
    "all_rules",
    "collect_python_files",
    "format_violations",
    "lint_file",
    "lint_paths",
    "noqa_rules_for_line",
    "register_rule",
    "resolve_selection",
]
