"""The repo-specific lint rules RP001–RP005.

Each rule enforces an invariant that the PR-1 performance work (shared-SVD
kernel, deterministic worker pools) and the paper's algebra rely on but
that nothing checked statically before:

- **RP001** — all dense factorisations flow through the shared kernel
  (:mod:`repro.utils.linalg` / :class:`repro.tomography.linear_system.LinearSystem`);
  no direct ``np.linalg.{svd,pinv,lstsq,qr}`` elsewhere.
- **RP002** — no legacy global-state RNG in ``src/repro``; randomness is
  threaded as explicit :class:`numpy.random.Generator` parameters
  (coerced only by :mod:`repro.utils.rng`).
- **RP003** — no wall-clock or stdlib-``random`` nondeterminism outside
  ``perf/`` and ``obs/`` (protects ``run_trials(workers=N)`` bit-identity).
- **RP004** — no ``assert`` for validation in library code (stripped under
  ``python -O``); raise :mod:`repro.exceptions` types instead.
- **RP005** — no silent broad ``except`` handler: catching ``Exception``
  (or bare ``except``) requires a re-raise or a structured log call.

Suppress a finding on one line with ``# repro: noqa`` (all rules) or
``# repro: noqa RP001,RP003`` (specific rules).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.lint.registry import (
    LintRule,
    ModuleSource,
    Violation,
    register_rule,
)

__all__ = [
    "SharedKernelRule",
    "GeneratorDisciplineRule",
    "NondeterminismRule",
    "NoAssertRule",
    "BroadExceptRule",
]

#: The only modules allowed to call numpy's factorisation routines.
_KERNEL_MODULES = (
    "tomography/linear_system.py",
    "utils/linalg.py",
    "utils/updates.py",
)
_FACTORIZATIONS = frozenset({"svd", "pinv", "lstsq", "qr", "matrix_rank"})

#: Legacy ``numpy.random`` module-level functions (global RandomState).
_LEGACY_NP_RANDOM = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "random",
        "random_sample",
        "randint",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "exponential",
        "poisson",
        "get_state",
        "set_state",
    }
)

_WALL_CLOCK_TIME = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_WALL_CLOCK_DATETIME = frozenset({"now", "utcnow", "today"})


def _attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@register_rule
class SharedKernelRule(LintRule):
    """RP001: factorisations must flow through the shared-SVD kernel.

    A stray ``np.linalg.pinv`` silently reintroduces the redundant dense
    factorisations PR 1 removed *and* can disagree with the library-wide
    rank cutoff (``DEFAULT_RANK_TOL``), producing estimators and residual
    projectors that are mutually inconsistent.
    """

    rule_id = "RP001"
    summary = (
        "direct np.linalg.{svd,pinv,lstsq,qr,matrix_rank} outside the "
        "shared LinearSystem/linalg kernel"
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        if module.matches(*_KERNEL_MODULES):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in _FACTORIZATIONS:
                chain = _attribute_chain(node)
                if chain and len(chain) >= 2 and chain[-2] == "linalg":
                    yield self.violation(
                        module,
                        node,
                        f"direct {'.'.join(chain)} call; route factorisations "
                        "through repro.tomography.linear_system.LinearSystem "
                        "or repro.utils.linalg",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module.endswith(".linalg") or node.module == "linalg":
                    banned = [a.name for a in node.names if a.name in _FACTORIZATIONS]
                    if banned:
                        yield self.violation(
                            module,
                            node,
                            f"importing {', '.join(banned)} from {node.module}; "
                            "use the shared LinearSystem/linalg kernel",
                        )


@register_rule
class GeneratorDisciplineRule(LintRule):
    """RP002: RNG state must be an explicit ``np.random.Generator`` parameter.

    The legacy global-state API (``np.random.seed`` / ``np.random.rand`` /
    friends) and module-level ``default_rng()`` singletons make results
    depend on import order and call history — exactly what breaks the
    bit-identical serial/parallel guarantee of ``run_trials(workers=N)``.
    Only :mod:`repro.utils.rng` may construct generators from seeds.
    """

    rule_id = "RP002"
    summary = "legacy global numpy RNG or module-level default_rng()"

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        if module.matches("utils/rng.py"):
            return
        in_function = _FunctionScopeIndex(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = _attribute_chain(node)
                if (
                    chain
                    and len(chain) == 3
                    and chain[0] in ("np", "numpy")
                    and chain[1] == "random"
                    and chain[2] in _LEGACY_NP_RANDOM
                ):
                    yield self.violation(
                        module,
                        node,
                        f"legacy global RNG {'.'.join(chain)}; thread an "
                        "explicit np.random.Generator (repro.utils.rng.ensure_rng)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module in ("numpy.random", "np.random"):
                    banned = [a.name for a in node.names if a.name in _LEGACY_NP_RANDOM]
                    if banned:
                        yield self.violation(
                            module,
                            node,
                            f"importing legacy RNG {', '.join(banned)} from "
                            "numpy.random; thread an explicit Generator",
                        )
            elif isinstance(node, ast.Call):
                chain = _attribute_chain(node.func)
                if chain and chain[-1] == "default_rng" and not in_function(node):
                    yield self.violation(
                        module,
                        node,
                        "module-level default_rng() creates a hidden shared "
                        "stream; accept a Generator parameter instead",
                    )


class _FunctionScopeIndex:
    """Answers "is this node inside a function/lambda body?" for one tree."""

    def __init__(self, tree: ast.Module) -> None:
        self._inside: set[int] = set()
        for outer in ast.walk(tree):
            if isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                for inner in ast.walk(outer):
                    if inner is not outer:
                        self._inside.add(id(inner))

    def __call__(self, node: ast.AST) -> bool:
        return id(node) in self._inside


@register_rule
class NondeterminismRule(LintRule):
    """RP003: no wall-clock or stdlib-``random`` reads outside ``perf/``/``obs/``.

    Worker-pool trials are reassembled in trial order and must be
    bit-identical to serial runs; any wall-clock read or hidden stdlib RNG
    in library code makes outputs depend on scheduling.  Timing belongs in
    :mod:`repro.perf` and :mod:`repro.obs` (the observability layer stamps
    its own monotonic ``t``; instrumented modules read its clock, never
    their own), randomness in threaded Generators.
    """

    rule_id = "RP003"
    summary = "wall-clock (time.*/datetime.now) or stdlib random outside perf//obs/"

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        if module.in_directory("perf") or module.in_directory("obs"):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = _attribute_chain(node)
                if not chain or len(chain) < 2:
                    continue
                if chain[-2] == "time" and chain[-1] in _WALL_CLOCK_TIME:
                    yield self.violation(
                        module,
                        node,
                        f"wall-clock read {'.'.join(chain)}; timing belongs "
                        "in repro.perf",
                    )
                elif "datetime" in chain[:-1] and chain[-1] in _WALL_CLOCK_DATETIME:
                    yield self.violation(
                        module,
                        node,
                        f"wall-clock read {'.'.join(chain)}; pass timestamps "
                        "explicitly",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        yield self.violation(
                            module,
                            node,
                            "stdlib random module is hidden global state; use "
                            "np.random.Generator parameters",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                yield self.violation(
                    module,
                    node,
                    "stdlib random module is hidden global state; use "
                    "np.random.Generator parameters",
                )


@register_rule
class NoAssertRule(LintRule):
    """RP004: library code must not rely on ``assert`` for invariants.

    ``python -O`` strips asserts, so an assert-guarded invariant silently
    stops being checked in optimised deployments.  Library code raises
    :mod:`repro.exceptions` types instead; tests (not linted here) keep
    using asserts as usual.
    """

    rule_id = "RP004"
    summary = "assert statement in library code (stripped under python -O)"

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        name = module.rel_path.rsplit("/", 1)[-1]
        if name.startswith("test_") or name == "conftest.py":
            return
        if "tests" in module.rel_path.split("/")[:-1]:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    module,
                    node,
                    "assert is stripped under python -O; raise a "
                    "repro.exceptions type (e.g. ValidationError) instead",
                )


@register_rule
class BroadExceptRule(LintRule):
    """RP005: broad handlers must re-raise or log with structure.

    ``except Exception: pass`` converts attack-planner and solver failures
    into silent wrong numbers — the exact failure mode the detector
    experiments cannot distinguish from a finding.  Catch specific types,
    or keep the broad net but re-raise / log the exception.
    """

    rule_id = "RP005"
    summary = "broad except without re-raise or structured logging"

    _LOG_METHODS = frozenset(
        {"debug", "info", "warning", "warn", "error", "exception", "critical", "log"}
    )

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if self._handles_responsibly(node):
                continue
            caught = "bare except" if node.type is None else "except Exception"
            yield self.violation(
                module,
                node,
                f"{caught} swallows errors silently; catch specific types, "
                "re-raise (`raise ... from exc`), or log the exception",
            )

    @staticmethod
    def _is_broad(type_node: ast.expr | None) -> bool:
        if type_node is None:
            return True
        candidates: list[ast.expr] = (
            list(type_node.elts) if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            chain = _attribute_chain(candidate)
            if chain and chain[-1] in ("Exception", "BaseException"):
                return True
        return False

    def _handles_responsibly(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                chain = _attribute_chain(node.func)
                if chain and chain[-1] in self._LOG_METHODS:
                    return True
        return False
