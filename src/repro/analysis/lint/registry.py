"""Rule registry for the repo lint engine.

Rules are small classes registered by decorator so the engine, the CLI's
``--select`` handling, and the documentation table all draw from one
source of truth.  Each rule inspects one parsed module at a time and
yields :class:`~repro.analysis.lint.engine.Violation` records; the engine
owns file walking, ``# repro: noqa`` suppression, and output formatting.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

from repro.exceptions import ValidationError

__all__ = [
    "LintRule",
    "ModuleSource",
    "Violation",
    "all_rules",
    "register_rule",
    "resolve_selection",
]


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location.

    ``rule`` is the ``RPxxx`` identifier, ``line``/``col`` are 1-based /
    0-based respectively (the ``path:line:col:`` convention used by every
    mainstream linter, so editors can jump to the site).
    """

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        """The canonical one-line text form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        """JSON-friendly record (the ``--format json`` row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class ModuleSource:
    """One parsed module handed to every rule.

    ``rel_path`` uses forward slashes relative to the lint root so rules
    can express path-based exemptions (``perf/``, the linalg kernel)
    portably.
    """

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def matches(self, *suffixes: str) -> bool:
        """True when the module path ends with any of ``suffixes``."""
        return any(self.rel_path.endswith(suffix) for suffix in suffixes)

    def in_directory(self, name: str) -> bool:
        """True when any path component equals ``name`` (e.g. ``perf``).

        Checks both the root-relative path and the filesystem path: when a
        package directory is linted directly (``repro lint src/repro/obs``)
        the lint root *is* that directory, so its name never appears in
        ``rel_path`` — the real path still carries it.
        """
        if name in self.rel_path.split("/")[:-1]:
            return True
        return name in self.path.parts[:-1]


class LintRule:
    """Base class for repo lint rules.

    Subclasses set ``rule_id`` / ``summary`` and implement :meth:`check`.
    """

    rule_id: ClassVar[str] = "RP000"
    summary: ClassVar[str] = ""

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Yield violations found in ``module``."""
        raise NotImplementedError

    def violation(self, module: ModuleSource, node: ast.AST, message: str) -> Violation:
        """Build a violation anchored at ``node``."""
        return Violation(
            rule=self.rule_id,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if cls.rule_id in _REGISTRY:
        raise ValidationError(f"duplicate lint rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, type[LintRule]]:
    """The registered rules, keyed by id (import triggers registration)."""
    import repro.analysis.lint.rules  # noqa: F401  (registration side effect)

    return dict(sorted(_REGISTRY.items()))


def resolve_selection(select: Iterable[str] | None = None) -> list[LintRule]:
    """Instantiate the selected rules (all when ``select`` is ``None``).

    Raises :class:`~repro.exceptions.ValidationError` on unknown ids so the
    CLI can exit with a usage error rather than silently linting nothing.
    """
    registry = all_rules()
    if select is None:
        return [cls() for cls in registry.values()]
    chosen: list[LintRule] = []
    for rule_id in select:
        normalized = rule_id.strip().upper()
        if not normalized:
            continue
        if normalized not in registry:
            known = ", ".join(registry)
            raise ValidationError(f"unknown lint rule {rule_id!r} (known: {known})")
        chosen.append(registry[normalized]())
    if not chosen:
        raise ValidationError("rule selection is empty")
    return chosen
