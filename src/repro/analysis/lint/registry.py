"""Rule registry for the repo lint engine.

Rules are small classes registered by decorator so the engine, the CLI's
``--select`` handling, and the documentation table all draw from one
source of truth.  Each rule inspects one parsed module at a time and
yields :class:`~repro.analysis.lint.engine.Violation` records; the engine
owns file walking, ``# repro: noqa`` suppression, and output formatting.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar

from repro.exceptions import ValidationError

if TYPE_CHECKING:  # runtime import would cycle through the facts extractor
    from repro.analysis.project import ProjectModel

__all__ = [
    "LintRule",
    "ModuleSource",
    "ProjectRule",
    "Violation",
    "all_rules",
    "file_rules",
    "project_rules",
    "register_rule",
    "resolve_selection",
]


@dataclass(frozen=True)
class Violation:
    """One lint finding, pointing at a source location.

    ``rule`` is the ``RPxxx`` identifier, ``line``/``col`` are 1-based /
    0-based respectively (the ``path:line:col:`` convention used by every
    mainstream linter, so editors can jump to the site).  ``severity`` is
    ``"error"`` (fails the run) or ``"advisory"`` (reported, exit 0) —
    relaxed rule profiles demote selected rules to advisory.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def render(self) -> str:
        """The canonical one-line text form."""
        tag = "" if self.severity == "error" else f" [{self.severity}]"
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{tag} {self.message}"

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly record (the ``--format json`` row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def fingerprint(self) -> str:
        """Location-independent identity used by baseline files.

        Deliberately excludes ``line``/``col`` so reformatting a file does
        not expire its accepted findings; rule + path + message is stable
        until the finding itself changes.
        """
        import hashlib

        key = f"{self.rule}|{self.path}|{self.message}"
        return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


@dataclass
class ModuleSource:
    """One parsed module handed to every rule.

    ``rel_path`` uses forward slashes relative to the lint root so rules
    can express path-based exemptions (``perf/``, the linalg kernel)
    portably.
    """

    path: Path
    rel_path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def matches(self, *suffixes: str) -> bool:
        """True when the module path ends with any of ``suffixes``."""
        return any(self.rel_path.endswith(suffix) for suffix in suffixes)

    def in_directory(self, name: str) -> bool:
        """True when any path component equals ``name`` (e.g. ``perf``).

        Checks both the root-relative path and the filesystem path: when a
        package directory is linted directly (``repro lint src/repro/obs``)
        the lint root *is* that directory, so its name never appears in
        ``rel_path`` — the real path still carries it.
        """
        if name in self.rel_path.split("/")[:-1]:
            return True
        return name in self.path.parts[:-1]


class LintRule:
    """Base class for repo lint rules.

    Subclasses set ``rule_id`` / ``summary`` and implement :meth:`check`.
    """

    rule_id: ClassVar[str] = "RP000"
    summary: ClassVar[str] = ""
    #: Opt-in rules set this False: they run only under explicit --select.
    default_enabled: ClassVar[bool] = True

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Yield violations found in ``module``."""
        raise NotImplementedError

    def violation(self, module: ModuleSource, node: ast.AST, message: str) -> Violation:
        """Build a violation anchored at ``node``."""
        return Violation(
            rule=self.rule_id,
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(LintRule):
    """Base class for whole-program analysis rules (RP006+).

    Project rules see the entire parsed tree at once — the
    :class:`~repro.analysis.project.ProjectModel` of extracted per-module
    facts — instead of one module, so they can check cross-module
    invariants (import layering, config-registry coverage, worker
    reachability, obs schema agreement).  They implement
    :meth:`check_project`; the per-module :meth:`check` is a no-op.
    """

    def check(self, module: ModuleSource) -> Iterator[Violation]:
        """Project rules have no per-module findings."""
        return iter(())

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        """Yield violations found across ``project``."""
        raise NotImplementedError

    def project_violation(
        self, path: str, line: int, message: str, *, col: int = 0
    ) -> Violation:
        """Build a violation anchored at an explicit location."""
        return Violation(
            rule=self.rule_id, path=path, line=line, col=col, message=message
        )


_REGISTRY: dict[str, type[LintRule]] = {}


def register_rule(cls: type[LintRule]) -> type[LintRule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if cls.rule_id in _REGISTRY:
        raise ValidationError(f"duplicate lint rule id {cls.rule_id!r}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> dict[str, type[LintRule]]:
    """The registered rules, keyed by id (import triggers registration)."""
    import repro.analysis.concurrency  # noqa: F401  (registration side effect)
    import repro.analysis.configscan  # noqa: F401  (registration side effect)
    import repro.analysis.importgraph  # noqa: F401  (registration side effect)
    import repro.analysis.lint.rules  # noqa: F401  (registration side effect)
    import repro.analysis.obschema  # noqa: F401  (registration side effect)

    return dict(sorted(_REGISTRY.items()))


def file_rules() -> dict[str, type[LintRule]]:
    """The registered per-file rules only."""
    return {
        rule_id: cls
        for rule_id, cls in all_rules().items()
        if not issubclass(cls, ProjectRule)
    }


def project_rules() -> dict[str, type[ProjectRule]]:
    """The registered whole-program rules only."""
    return {
        rule_id: cls
        for rule_id, cls in all_rules().items()
        if issubclass(cls, ProjectRule)
    }


def resolve_selection(select: Iterable[str] | None = None) -> list[LintRule]:
    """Instantiate the selected rules (all when ``select`` is ``None``).

    Raises :class:`~repro.exceptions.ValidationError` on unknown ids so the
    CLI can exit with a usage error rather than silently linting nothing.
    """
    registry = all_rules()
    if select is None:
        return [cls() for cls in registry.values() if cls.default_enabled]
    chosen: list[LintRule] = []
    for rule_id in select:
        normalized = rule_id.strip().upper()
        if not normalized:
            continue
        if normalized not in registry:
            known = ", ".join(registry)
            raise ValidationError(f"unknown lint rule {rule_id!r} (known: {known})")
        chosen.append(registry[normalized]())
    if not chosen:
        raise ValidationError("rule selection is empty")
    return chosen
