"""RP007 — every ``REPRO_*`` environment read goes through the registry.

The registry is the analyzed tree's own ``<root>.config`` module: its
``Knob(name=...)`` declarations are extracted statically (never
imported), so test fixtures can ship a miniature tree with their own
registry and exercise the rule hermetically.

Three disciplines are enforced across the package:

1. **No bypass.**  ``os.environ`` / ``os.getenv`` reads of a ``REPRO_*``
   name anywhere outside the config module must go through an accessor.
2. **No undeclared knob.**  Every name handed to ``config.raw`` /
   ``get_bool`` / ``get_str`` / ``get_float`` / ``declared`` must be a
   registry entry; names the analyzer cannot resolve to a string
   constant are flagged as dynamic.
3. **No dead entry.**  A registry declaration with no accessor site in
   the package is itself a finding — stale knobs rot into folklore.

Reads outside the root package (tests monkeypatching their own
variables, examples) are deliberately out of scope.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import Path

from repro.analysis.lint.registry import ProjectRule, Violation, register_rule
from repro.analysis.project import ModuleFacts, ProjectModel

__all__ = ["ConfigRegistryRule", "declared_knobs"]

#: Environment names the registry governs.
_KNOB_PREFIX = "REPRO_"

#: Accessor functions of the config module taking a knob name.
_ACCESSORS = frozenset({"raw", "get_bool", "get_str", "get_float", "declared"})


def declared_knobs(config_facts: ModuleFacts) -> dict[str, int]:
    """``Knob(name=..., ...)`` declarations in the registry module.

    Parses the file rather than importing it so the rule works on any
    analyzed tree (fixtures included).  Returns name -> declaration line.
    """
    try:
        tree = ast.parse(Path(config_facts.path).read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return {}
    declarations: dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else None
        if name != "Knob":
            continue
        knob_name: str | None = None
        for keyword in node.keywords:
            if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
                if isinstance(keyword.value.value, str):
                    knob_name = keyword.value.value
        if knob_name is None and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                knob_name = first.value
        if knob_name is not None:
            declarations[knob_name] = node.lineno
    return declarations


@register_rule
class ConfigRegistryRule(ProjectRule):
    """RP007 — REPRO_* reads must go through the declared-knob registry."""

    rule_id = "RP007"
    summary = (
        "REPRO_* environment reads must use the repro.config registry: "
        "no os.environ bypass, no undeclared knob, no dead registry entry"
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        root = project.root_package
        config_module = f"{root}.config"
        config_facts = project.by_module.get(config_module)
        if config_facts is None:
            # A tree without a registry has nothing to check against.
            return
        registry = declared_knobs(config_facts)
        used: set[str] = set()
        for facts in project.package_files():
            is_registry = facts.module == config_module
            for read in facts.env_reads:
                var = read["var"]
                if var is None and read.get("unresolved"):
                    var = project.resolve_constant(facts, read["unresolved"])
                if var is None or not var.startswith(_KNOB_PREFIX):
                    continue
                used.add(var)
                if is_registry:
                    continue
                yield self.project_violation(
                    facts.path,
                    read["lineno"],
                    f"direct environment read of {var!r} bypasses the "
                    f"{config_module} registry (use config.raw or a typed getter)",
                )
            for read in facts.config_reads:
                if read["accessor"] not in _ACCESSORS:
                    continue
                knob = read["knob"]
                if knob is None and read.get("unresolved"):
                    knob = project.resolve_constant(facts, read["unresolved"])
                if knob is None:
                    yield self.project_violation(
                        facts.path,
                        read["lineno"],
                        f"config.{read['accessor']} called with a dynamic knob "
                        "name the analyzer cannot resolve to a string constant",
                    )
                    continue
                used.add(knob)
                if knob not in registry:
                    known = ", ".join(sorted(registry)) or "none declared"
                    yield self.project_violation(
                        facts.path,
                        read["lineno"],
                        f"config.{read['accessor']}({knob!r}) reads a knob the "
                        f"registry does not declare (known: {known})",
                    )
        for knob_name, lineno in sorted(registry.items()):
            if knob_name not in used:
                yield self.project_violation(
                    config_facts.path,
                    lineno,
                    f"registry entry {knob_name!r} has no accessor site in the "
                    "package — delete the knob or wire it up",
                )
