"""RP008 — state discipline for code reachable from pool workers.

The library parallelises with ``fork``-based process pools behind three
dispatch entry points (``run_trials``, ``run_batched_trials``,
``iter_map_chunks``).  Forked workers inherit every module global, so a
worker-side write to module state is (at best) silently lost on join and
(at worst) a cross-run contamination bug that no unit test catches.

The rule builds a name-based call graph from the extracted facts, seeds
it with every callable handed to a dispatch site, and walks the
worker-reachable closure flagging:

- ``global`` declarations (module-global rebinding) in reachable code,
- in-place mutation of module-level names (``STATE[...] =``,
  ``STATE.append(...)``) in reachable code,
- mutation of caller-supplied arguments inside root worker callables
  (the results are marshalled back by value — mutations don't propagate),
- lambdas and closure-local ``def``s handed to a dispatch site that was
  given ``workers=`` (they do not survive pickling).

Deliberate exceptions are annotated in source with
``# repro: worker-state-ok <reason>`` on the offending line (or the
function's ``def`` line), which this rule treats as an allowlist —
``detach_inherited_log`` *must* rebind the inherited global to ``None``,
that being the whole point.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.analysis.lint.registry import ProjectRule, Violation, register_rule
from repro.analysis.project import FunctionFacts, ModuleFacts, ProjectModel

__all__ = ["WorkerStateRule"]

_ALLOW_MARKER = "worker-state-ok"


def _from_import_map(facts: ModuleFacts) -> dict[str, tuple[str, str]]:
    """alias -> (source module, original name) for from-imports."""
    mapping: dict[str, tuple[str, str]] = {}
    for imp in facts.imports:
        if imp["kind"] == "from":
            mapping[imp["alias"]] = (imp["module"], imp["name"])
    return mapping


def _module_alias_map(facts: ModuleFacts) -> dict[str, str]:
    """alias -> module for plain ``import x.y as z`` bindings."""
    mapping: dict[str, str] = {}
    for imp in facts.imports:
        if imp["kind"] == "import":
            mapping[imp["alias"]] = imp["module"]
    return mapping


class _Resolver:
    """Resolve call names to (file, function) pairs across the project."""

    def __init__(self, project: ProjectModel) -> None:
        self.project = project
        self.by_rel: dict[str, ModuleFacts] = {f.rel_path: f for f in project.files}

    def functions_named(
        self, facts: ModuleFacts, name: str
    ) -> list[tuple[ModuleFacts, FunctionFacts]]:
        """Resolve a bare name used inside ``facts`` to callables."""
        index = facts.function_index()
        if name in index and "." not in name:
            fn = index[name]
            if "." not in fn.qualname:
                return [(facts, fn)]
        for cls in facts.classes:
            if cls["name"] == name:
                return self.class_methods(facts, name)
        imported = _from_import_map(facts).get(name)
        if imported is not None:
            module, original = imported
            target = self.project.by_module.get(module)
            if target is not None and target is not facts:
                return self.functions_named(target, original)
        return []

    def class_methods(
        self, facts: ModuleFacts, class_name: str, *, _seen: frozenset[str] = frozenset()
    ) -> list[tuple[ModuleFacts, FunctionFacts]]:
        """All methods of a class and its resolvable base classes."""
        key = f"{facts.rel_path}::{class_name}"
        if key in _seen:
            return []
        found: list[tuple[ModuleFacts, FunctionFacts]] = []
        for cls in facts.classes:
            if cls["name"] != class_name:
                continue
            for method in cls["methods"]:
                found.append((facts, method))
            for base in cls["bases"]:
                base_name = base.split(".")[-1]
                owner = facts
                imported = _from_import_map(facts).get(base.split(".")[0])
                if imported is not None:
                    module, original = imported
                    target = self.project.by_module.get(module)
                    if target is not None:
                        owner = target
                        base_name = original if "." not in base else base_name
                found.extend(
                    self.class_methods(owner, base_name, _seen=_seen | {key})
                )
        return found

    def method_in_class(
        self, facts: ModuleFacts, class_name: str, method_name: str
    ) -> list[tuple[ModuleFacts, FunctionFacts]]:
        """``self.method()`` resolution within a class hierarchy."""
        return [
            (owner, fn)
            for owner, fn in self.class_methods(facts, class_name)
            if fn.name == method_name
        ]

    def resolve_call(
        self, facts: ModuleFacts, caller: FunctionFacts, call: str
    ) -> list[tuple[ModuleFacts, FunctionFacts]]:
        parts = call.split(".")
        if len(parts) == 1:
            name = caller.partial_binds.get(parts[0], parts[0])
            return self.functions_named(facts, name)
        if len(parts) == 2:
            owner, method = parts
            if owner in ("self", "cls") and "." in caller.qualname:
                class_name = caller.qualname.split(".")[0]
                return self.method_in_class(facts, class_name, method)
            imported = _from_import_map(facts).get(owner)
            if imported is not None:
                module, original = imported
                submodule = self.project.by_module.get(f"{module}.{original}")
                if submodule is not None:
                    return self.functions_named(submodule, method)
                target = self.project.by_module.get(module)
                if target is not None:
                    resolved = self.method_in_class(target, original, method)
                    if resolved:
                        return resolved
            module_target = _module_alias_map(facts).get(owner)
            if module_target is not None:
                target = self.project.by_module.get(module_target)
                if target is not None:
                    return self.functions_named(target, method)
            for cls in facts.classes:
                if cls["name"] == owner:
                    return self.method_in_class(facts, owner, method)
        return []


def _allowlisted(facts: ModuleFacts, fn: FunctionFacts, lineno: int) -> bool:
    """True when the line (or the function's def line) carries the marker."""
    for candidate in (lineno, fn.lineno):
        if _ALLOW_MARKER in facts.markers.get(candidate, ()):
            return True
    return False


@register_rule
class WorkerStateRule(ProjectRule):
    """RP008 — no unannotated module-state writes in worker-reachable code."""

    rule_id = "RP008"
    summary = (
        "code reachable from pool-worker callables must not write module "
        "state or mutate caller arguments (allowlist: # repro: worker-state-ok)"
    )

    def check_project(self, project: ProjectModel) -> Iterator[Violation]:
        resolver = _Resolver(project)
        roots: list[tuple[ModuleFacts, FunctionFacts]] = []
        for facts in project.files:
            index = facts.function_index()
            for site in facts.dispatch_sites:
                enclosing = (
                    index.get(site["in_function"]) if site["in_function"] else None
                )
                target = site["target"]
                if site["target_kind"] == "lambda" and site["workers"]:
                    yield self.project_violation(
                        facts.path,
                        site["lineno"],
                        f"lambda passed to {site['callee']} with workers= — "
                        "lambdas cannot be pickled into pool workers; use a "
                        "module-level function",
                    )
                    continue
                if target is None:
                    continue
                if enclosing is not None:
                    target = enclosing.partial_binds.get(target, target)
                    if target in enclosing.nested_defs:
                        if site["workers"]:
                            yield self.project_violation(
                                facts.path,
                                site["lineno"],
                                f"closure-local function {target!r} passed to "
                                f"{site['callee']} with workers= — nested defs "
                                "cannot be pickled into pool workers",
                            )
                        continue
                roots.extend(resolver.functions_named(facts, target))

        seen: set[tuple[str, str]] = set()
        queue = list(roots)
        root_keys = {(facts.rel_path, fn.qualname) for facts, fn in roots}
        while queue:
            facts, fn = queue.pop()
            key = (facts.rel_path, fn.qualname)
            if key in seen:
                continue
            seen.add(key)
            yield from self._check_function(facts, fn, is_root=key in root_keys)
            for call in fn.calls:
                queue.extend(resolver.resolve_call(facts, fn, call))

    def _check_function(
        self, facts: ModuleFacts, fn: FunctionFacts, *, is_root: bool
    ) -> Iterator[Violation]:
        module_names = set(facts.module_level_names)
        for write in fn.global_writes:
            if _allowlisted(facts, fn, write["lineno"]):
                continue
            yield self.project_violation(
                facts.path,
                write["lineno"],
                f"worker-reachable {fn.qualname} declares global "
                f"{write['name']!r} — forked workers silently drop the write "
                "on join (annotate # repro: worker-state-ok if deliberate)",
            )
        for mutation in fn.module_mutations:
            if mutation["name"] not in module_names:
                continue
            if _allowlisted(facts, fn, mutation["lineno"]):
                continue
            yield self.project_violation(
                facts.path,
                mutation["lineno"],
                f"worker-reachable {fn.qualname} mutates module-level "
                f"{mutation['name']!r} ({mutation['kind']}) — per-process "
                "copies diverge under fork (annotate # repro: worker-state-ok "
                "if deliberate)",
            )
        if not is_root:
            return
        for mutation in fn.param_mutations:
            if _allowlisted(facts, fn, mutation["lineno"]):
                continue
            yield self.project_violation(
                facts.path,
                mutation["lineno"],
                f"worker callable {fn.qualname} mutates argument "
                f"{mutation['name']!r} ({mutation['kind']}) — worker-side "
                "argument mutations never reach the parent process "
                "(annotate # repro: worker-state-ok if deliberate)",
            )
