"""Static analysis and runtime contracts for the ``repro`` codebase.

Two complementary layers keep the library's invariants *enforced* rather
than merely documented:

- :mod:`repro.analysis.lint` — an AST-based lint engine with repo-specific
  rules (RP001–RP005).  They encode the disciplines introduced by the
  shared-SVD kernel and the deterministic Monte-Carlo plumbing: every
  factorisation flows through :class:`repro.tomography.linear_system.LinearSystem`
  / :mod:`repro.utils.linalg`, RNG state is threaded as explicit
  :class:`numpy.random.Generator` parameters, no wall-clock reads outside
  ``perf/``, no ``assert`` for validation, no silent broad exception
  handlers.  Exposed on the CLI as ``repro lint``.
- :mod:`repro.analysis.contracts` — lightweight runtime decorators that
  validate the ``y = R x`` algebra at public entry points (0/1 routing
  matrices, Constraint-1 manipulation support, ordered state bands).
  No-ops in production; enabled under pytest via a conftest fixture or
  ``REPRO_CONTRACTS=1``.

Import cost matters for CLI startup, so the lint engine is imported
lazily; the contracts module is tiny and imported by the core packages.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from collections.abc import Iterable
    from pathlib import Path

    from repro.analysis.lint import Violation

from repro.analysis.contracts import (
    ContractViolation,
    contract,
    contracts_enabled,
    disable_contracts,
    enable_contracts,
)

__all__ = [
    "ContractViolation",
    "contract",
    "contracts_enabled",
    "disable_contracts",
    "enable_contracts",
    "run_lint",
]


def run_lint(
    paths: Iterable[str | Path], *, select: Iterable[str] | None = None
) -> list[Violation]:
    """Lint ``paths`` and return the list of violations (lazy import)."""
    from repro.analysis.lint import lint_paths

    return lint_paths(paths, select=select)
