"""Shared project model for the whole-program analyzer.

One pass over the tree parses every module once and distils it into
JSON-serialisable :class:`ModuleFacts` — imports (with scope), function
and class bodies (calls, global writes, mutations), ``REPRO_*``
environment reads, obs-event emissions, pool dispatch sites, noqa and
allowlist markers, and the per-file lint findings themselves.  The
whole-program rules (RP006–RP010) consume only these facts, never raw
ASTs, which buys two things:

- **One parse per file.**  Nine rules share a single ``ast.parse``.
- **A content-hash result cache.**  Facts are pure functions of the file
  bytes (plus the extractor/rule version), so they round-trip through
  ``.repro-analysis-cache/`` keyed by SHA-256 — a warm ``repro analyze``
  never parses an unchanged file again.

Module identity is filesystem-derived: a file belongs to the dotted
module spelled by its chain of ``__init__.py``-bearing parent
directories, so ``src/repro/obs/core.py`` is ``repro.obs.core`` no
matter which root the analyzer was pointed at.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = [
    "FACTS_VERSION",
    "AnalysisCache",
    "FunctionFacts",
    "ModuleFacts",
    "ProjectModel",
    "extract_facts",
    "module_name_of",
]

#: Bump when the extracted-facts schema changes (invalidates the cache).
FACTS_VERSION = 2

#: Methods whose call on a name counts as mutating that object in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "clear",
        "remove",
        "discard",
        "sort",
        "reverse",
    }
)

#: The pool dispatch entry points whose callable arguments run in workers.
_DISPATCH_CALLEES = frozenset({"run_trials", "run_batched_trials", "iter_map_chunks"})

#: obs emission APIs catalogued by the schema pass (literal first argument).
_OBS_APIS = frozenset({"event", "counter", "gauge", "span", "stage"})


def _attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


@dataclass
class FunctionFacts:
    """Distilled body of one function or method."""

    qualname: str
    name: str
    lineno: int
    params: list[str] = field(default_factory=list)
    calls: list[str] = field(default_factory=list)
    global_writes: list[dict[str, Any]] = field(default_factory=list)
    module_mutations: list[dict[str, Any]] = field(default_factory=list)
    param_mutations: list[dict[str, Any]] = field(default_factory=list)
    partial_binds: dict[str, str] = field(default_factory=dict)
    nested_defs: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "lineno": self.lineno,
            "params": list(self.params),
            "calls": list(self.calls),
            "global_writes": list(self.global_writes),
            "module_mutations": list(self.module_mutations),
            "param_mutations": list(self.param_mutations),
            "partial_binds": dict(self.partial_binds),
            "nested_defs": list(self.nested_defs),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> FunctionFacts:
        return cls(**data)


@dataclass
class ModuleFacts:
    """Everything the whole-program passes need to know about one file."""

    path: str
    rel_path: str
    module: str | None
    sha256: str
    imports: list[dict[str, Any]] = field(default_factory=list)
    functions: list[FunctionFacts] = field(default_factory=list)
    classes: list[dict[str, Any]] = field(default_factory=list)
    module_level_names: list[str] = field(default_factory=list)
    str_constants: dict[str, str] = field(default_factory=dict)
    all_exports: list[str] = field(default_factory=list)
    public_defs: list[dict[str, Any]] = field(default_factory=list)
    name_refs: list[str] = field(default_factory=list)
    env_reads: list[dict[str, Any]] = field(default_factory=list)
    config_reads: list[dict[str, Any]] = field(default_factory=list)
    obs_emits: list[dict[str, Any]] = field(default_factory=list)
    dispatch_sites: list[dict[str, Any]] = field(default_factory=list)
    noqa: dict[int, list[str] | None] = field(default_factory=dict)
    markers: dict[int, list[str]] = field(default_factory=dict)
    violations: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    parse_error: dict[str, Any] | None = None

    def sub_module(self, root: str) -> str | None:
        """The dotted path under ``root`` ('' for the root package itself)."""
        if self.module is None:
            return None
        if self.module == root:
            return ""
        prefix = root + "."
        if self.module.startswith(prefix):
            return self.module[len(prefix) :]
        return None

    def function_index(self) -> dict[str, FunctionFacts]:
        """All functions and methods keyed by qualname."""
        index = {fn.qualname: fn for fn in self.functions}
        for cls in self.classes:
            for method in cls["methods"]:
                index[method.qualname] = method
        return index

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "rel_path": self.rel_path,
            "module": self.module,
            "sha256": self.sha256,
            "imports": list(self.imports),
            "functions": [fn.to_dict() for fn in self.functions],
            "classes": [
                {
                    "name": cls["name"],
                    "bases": list(cls["bases"]),
                    "lineno": cls["lineno"],
                    "methods": [m.to_dict() for m in cls["methods"]],
                }
                for cls in self.classes
            ],
            "module_level_names": list(self.module_level_names),
            "str_constants": dict(self.str_constants),
            "all_exports": list(self.all_exports),
            "public_defs": list(self.public_defs),
            "name_refs": list(self.name_refs),
            "env_reads": list(self.env_reads),
            "config_reads": list(self.config_reads),
            "obs_emits": list(self.obs_emits),
            "dispatch_sites": list(self.dispatch_sites),
            "noqa": [[line, codes] for line, codes in sorted(self.noqa.items())],
            "markers": [[line, names] for line, names in sorted(self.markers.items())],
            "violations": {k: list(v) for k, v in self.violations.items()},
            "parse_error": self.parse_error,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> ModuleFacts:
        return cls(
            path=data["path"],
            rel_path=data["rel_path"],
            module=data["module"],
            sha256=data["sha256"],
            imports=list(data["imports"]),
            functions=[FunctionFacts.from_dict(f) for f in data["functions"]],
            classes=[
                {
                    "name": c["name"],
                    "bases": list(c["bases"]),
                    "lineno": c["lineno"],
                    "methods": [FunctionFacts.from_dict(m) for m in c["methods"]],
                }
                for c in data["classes"]
            ],
            module_level_names=list(data["module_level_names"]),
            str_constants=dict(data["str_constants"]),
            all_exports=list(data["all_exports"]),
            public_defs=list(data["public_defs"]),
            name_refs=list(data["name_refs"]),
            env_reads=list(data["env_reads"]),
            config_reads=list(data["config_reads"]),
            obs_emits=list(data["obs_emits"]),
            dispatch_sites=list(data["dispatch_sites"]),
            noqa={int(line): codes for line, codes in data["noqa"]},
            markers={int(line): list(names) for line, names in data["markers"]},
            violations={k: list(v) for k, v in data["violations"].items()},
            parse_error=data.get("parse_error"),
        )


def module_name_of(path: Path) -> str | None:
    """The dotted module name implied by ``__init__.py`` package chains."""
    resolved = path.resolve()
    parts: list[str] = []
    if resolved.name == "__init__.py":
        current = resolved.parent
    else:
        parts.append(resolved.stem)
        current = resolved.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        current = current.parent
    if not parts:
        return None
    parts.reverse()
    return ".".join(parts) if len(parts) > 1 or resolved.name == "__init__.py" else parts[0]


class _Extractor(ast.NodeVisitor):
    """One-walk facts extractor (function stack tracked explicitly)."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self._function_stack: list[FunctionFacts] = []
        self._class_stack: list[dict[str, Any]] = []
        self._local_names: set[str] = set()

    # -- helpers ----------------------------------------------------------

    def _scope(self) -> str:
        return "function" if self._function_stack else "module"

    def _current(self) -> FunctionFacts | None:
        return self._function_stack[-1] if self._function_stack else None

    def _literal_str(self, node: ast.expr | None) -> str | None:
        """A string literal, or a module-level str constant's value."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value
        if isinstance(node, ast.Name):
            return self.facts.str_constants.get(node.id)
        chain = _attribute_chain(node) if node is not None else None
        if chain and len(chain) == 2:
            # A constant imported/attributed from another module: resolve
            # at project-assembly time; record the reference for now.
            return None
        return None

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports.append(
                {
                    "kind": "import",
                    "module": alias.name,
                    "alias": alias.asname or alias.name.split(".")[0],
                    "lineno": node.lineno,
                    "scope": self._scope(),
                }
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level and self.facts.module:
            parts = self.facts.module.split(".")
            base = parts[: len(parts) - node.level] if len(parts) >= node.level else []
            module = ".".join(base + ([module] if module else []))
        for alias in node.names:
            self.facts.imports.append(
                {
                    "kind": "from",
                    "module": module,
                    "name": alias.name,
                    "alias": alias.asname or alias.name,
                    "lineno": node.lineno,
                    "scope": self._scope(),
                }
            )
            self.facts.name_refs.append(alias.name)
        self.generic_visit(node)

    # -- definitions -------------------------------------------------------

    def _enter_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        prefix = ".".join(c["name"] for c in self._class_stack)
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            params.append(args.vararg.arg)
        if args.kwarg:
            params.append(args.kwarg.arg)
        fn = FunctionFacts(
            qualname=qualname, name=node.name, lineno=node.lineno, params=params
        )
        if self._function_stack:
            self._function_stack[-1].nested_defs.append(node.name)
        if self._class_stack and not self._function_stack:
            self._class_stack[-1]["methods"].append(fn)
        elif not self._function_stack:
            self.facts.functions.append(fn)
            if not node.name.startswith("_"):
                self.facts.public_defs.append(
                    {
                        "name": node.name,
                        "kind": "function",
                        "lineno": node.lineno,
                        "decorated": bool(node.decorator_list),
                    }
                )
        self._function_stack.append(fn)
        for child in node.body:
            self.visit(child)
        for decorator in node.decorator_list:
            self.visit(decorator)
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            chain = _attribute_chain(base)
            if chain:
                bases.append(".".join(chain))
        entry: dict[str, Any] = {
            "name": node.name,
            "bases": bases,
            "lineno": node.lineno,
            "methods": [],
        }
        # Base classes, keyword bases, and decorators are uses of names.
        for expression in list(node.bases) + [kw.value for kw in node.keywords]:
            self.visit(expression)
        for decorator in node.decorator_list:
            self.visit(decorator)
        if not self._class_stack and not self._function_stack:
            self.facts.classes.append(entry)
            if not node.name.startswith("_"):
                self.facts.public_defs.append(
                    {
                        "name": node.name,
                        "kind": "class",
                        "lineno": node.lineno,
                        "decorated": bool(node.decorator_list),
                    }
                )
            self._class_stack.append(entry)
            for child in node.body:
                self.visit(child)
            self._class_stack.pop()
        else:
            self.generic_visit(node)

    # -- statements --------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        fn = self._current()
        if fn is not None:
            for name in node.names:
                fn.global_writes.append(
                    {"name": name, "lineno": node.lineno, "kind": "global-decl"}
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._function_stack and not self._class_stack:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.facts.module_level_names.append(target.id)
                    if isinstance(node.value, ast.Constant) and isinstance(
                        node.value.value, str
                    ):
                        self.facts.str_constants[target.id] = node.value.value
                    if target.id == "__all__" and isinstance(
                        node.value, (ast.List, ast.Tuple)
                    ):
                        for element in node.value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                self.facts.all_exports.append(element.value)
        fn = self._current()
        if fn is not None and isinstance(node.value, ast.Call):
            inner = _attribute_chain(node.value.func)
            if inner and inner[-1] == "partial" and node.value.args:
                first = node.value.args[0]
                if isinstance(first, ast.Name):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            fn.partial_binds[target.id] = first.id
        self._record_write_targets(node.targets, node.lineno)
        self.visit(node.value)
        for target in node.targets:
            self.visit(target)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            not self._function_stack
            and not self._class_stack
            and isinstance(node.target, ast.Name)
        ):
            self.facts.module_level_names.append(node.target.id)
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                self.facts.str_constants[node.target.id] = node.value.value
        self._record_write_targets([node.target], node.lineno)
        if node.value is not None:
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_write_targets([node.target], node.lineno, aug=True)
        self.visit(node.value)
        self.visit(node.target)

    def _record_write_targets(
        self, targets: list[ast.expr], lineno: int, *, aug: bool = False
    ) -> None:
        fn = self._current()
        if fn is None:
            return
        for target in targets:
            if isinstance(target, ast.Name) and aug:
                # ``x += 1`` on a global-declared name is a write; plain
                # assignment to a bare name creates a local otherwise.
                continue
            base: ast.expr = target
            kind = "assign"
            if isinstance(target, ast.Subscript):
                base, kind = target.value, "subscript-assign"
            elif isinstance(target, ast.Attribute):
                base, kind = target.value, "attribute-assign"
            else:
                continue
            if not isinstance(base, ast.Name):
                continue
            name = base.id
            if name in fn.params:
                if name not in ("self", "cls"):
                    fn.param_mutations.append(
                        {"name": name, "lineno": lineno, "kind": kind}
                    )
            else:
                fn.module_mutations.append(
                    {"name": name, "lineno": lineno, "kind": kind}
                )

    # -- expressions -------------------------------------------------------

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.facts.name_refs.append(node.id)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            self.facts.name_refs.append(node.attr)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attribute_chain(node.func)
        dotted = ".".join(chain) if chain else None
        fn = self._current()
        if fn is not None and dotted is not None:
            fn.calls.append(dotted)
            # A mutating method on a bare name: record as mutation.
            if len(chain or []) == 2 and chain is not None:
                owner, method = chain
                if method in _MUTATING_METHODS:
                    if owner in fn.params and owner not in ("self", "cls"):
                        fn.param_mutations.append(
                            {
                                "name": owner,
                                "lineno": node.lineno,
                                "kind": f"call:{method}",
                            }
                        )
                    else:
                        fn.module_mutations.append(
                            {
                                "name": owner,
                                "lineno": node.lineno,
                                "kind": f"call:{method}",
                            }
                        )
            # Names passed as arguments may be called later (callbacks).
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Name):
                    fn.calls.append(arg.id)
        self._record_env_read(node, chain)
        self._record_config_read(node, chain)
        self._record_obs_emit(node, chain)
        self._record_dispatch(node, chain)
        self.generic_visit(node)

    def _record_env_read(self, node: ast.Call, chain: list[str] | None) -> None:
        if not chain:
            return
        dotted = ".".join(chain)
        is_environ_get = dotted.endswith("os.environ.get") or dotted == "environ.get"
        is_getenv = dotted.endswith("os.getenv") or dotted == "getenv"
        if not (is_environ_get or is_getenv):
            return
        var = self._literal_str(node.args[0]) if node.args else None
        unresolved = None
        if var is None and node.args and isinstance(node.args[0], ast.Name):
            unresolved = node.args[0].id
        self.facts.env_reads.append(
            {
                "var": var,
                "unresolved": unresolved,
                "lineno": node.lineno,
                "via": "os.getenv" if is_getenv else "os.environ",
            }
        )

    def _record_config_read(self, node: ast.Call, chain: list[str] | None) -> None:
        if not chain or len(chain) != 2:
            return
        owner, accessor = chain
        if owner != "config" or accessor not in (
            "raw",
            "get_bool",
            "get_str",
            "get_float",
            "declared",
        ):
            return
        knob = self._literal_str(node.args[0]) if node.args else None
        unresolved = None
        if knob is None and node.args and isinstance(node.args[0], ast.Name):
            unresolved = node.args[0].id
        self.facts.config_reads.append(
            {
                "knob": knob,
                "unresolved": unresolved,
                "accessor": accessor,
                "lineno": node.lineno,
            }
        )

    def _record_obs_emit(self, node: ast.Call, chain: list[str] | None) -> None:
        if not chain or len(chain) < 2:
            return
        owner, api = chain[-2], chain[-1]
        if api not in _OBS_APIS or owner not in ("obs", "log", "perf", "obs_core"):
            return
        name = None
        if node.args and isinstance(node.args[0], ast.Constant):
            if isinstance(node.args[0].value, str):
                name = node.args[0].value
        fields = [kw.arg for kw in node.keywords if kw.arg is not None]
        self.facts.obs_emits.append(
            {
                "api": api,
                "owner": owner,
                "name": name,
                "fields": fields,
                "lineno": node.lineno,
            }
        )

    def _record_dispatch(self, node: ast.Call, chain: list[str] | None) -> None:
        callee = chain[-1] if chain else None
        if callee not in _DISPATCH_CALLEES:
            return
        # The worker callable is the first Callable positional argument:
        # run_trials(n, trial), run_batched_trials(n, draw, batch),
        # iter_map_chunks(chunk_fn, chunks).
        candidates: list[ast.expr] = []
        if callee == "iter_map_chunks" and node.args:
            candidates = [node.args[0]]
        elif callee == "run_trials" and len(node.args) >= 2:
            candidates = [node.args[1]]
        elif callee == "run_batched_trials" and len(node.args) >= 3:
            candidates = [node.args[1], node.args[2]]
        has_workers = any(kw.arg == "workers" for kw in node.keywords)
        for candidate in candidates:
            target: str | None = None
            target_kind = "other"
            if isinstance(candidate, ast.Name):
                target, target_kind = candidate.id, "name"
            elif isinstance(candidate, ast.Lambda):
                target_kind = "lambda"
            elif isinstance(candidate, ast.Call):
                inner = _attribute_chain(candidate.func)
                if inner and inner[-1] == "partial" and candidate.args:
                    first = candidate.args[0]
                    if isinstance(first, ast.Name):
                        target, target_kind = first.id, "partial"
            current = self._current()
            self.facts.dispatch_sites.append(
                {
                    "callee": callee,
                    "target": target,
                    "target_kind": target_kind,
                    "workers": has_workers,
                    "lineno": node.lineno,
                    "in_function": current.qualname if current is not None else None,
                }
            )


def _scan_comments(source_lines: list[str], facts: ModuleFacts) -> None:
    """Record per-line noqa suppressions and ``# repro: <marker>`` tags."""
    from repro.analysis.lint.engine import noqa_rules_for_line

    for lineno, line in enumerate(source_lines, start=1):
        if "repro:" not in line:
            continue
        spec = noqa_rules_for_line(line)
        if spec is not None:
            facts.noqa[lineno] = sorted(spec) if spec else None
        marker_index = line.find("# repro:")
        if marker_index >= 0:
            tail = line[marker_index + len("# repro:") :].strip()
            if tail and not tail.lower().startswith("noqa"):
                facts.markers.setdefault(lineno, []).append(tail.split()[0])


def extract_facts(
    path: Path,
    *,
    rel_path: str,
    source: str | None = None,
    tree: ast.Module | None = None,
) -> ModuleFacts:
    """Parse one file and distil it into :class:`ModuleFacts`.

    ``source``/``tree`` let a caller that already read or parsed the file
    (the analyze engine shares one parse with the per-file rules) skip
    the redundant work.
    """
    text = source if source is not None else path.read_text(encoding="utf-8")
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    facts = ModuleFacts(
        path=str(path),
        rel_path=rel_path,
        module=module_name_of(path),
        sha256=digest,
    )
    if tree is None:
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            facts.parse_error = {
                "lineno": exc.lineno or 1,
                "col": (exc.offset or 1) - 1,
                "message": str(exc.msg),
            }
            return facts
    # Pre-pass: module-level string constants must be known before call
    # arguments referencing them are resolved, regardless of file order.
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, str):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        facts.str_constants[target.id] = node.value.value
    extractor = _Extractor(facts)
    for node in tree.body:
        extractor.visit(node)
    _scan_comments(text.splitlines(), facts)
    return facts


@dataclass
class ProjectModel:
    """The assembled whole-program view handed to project rules."""

    files: list[ModuleFacts]
    root_package: str = "repro"
    layers_path: Path | None = None

    def __post_init__(self) -> None:
        self.by_module: dict[str, ModuleFacts] = {}
        for facts in self.files:
            if facts.module is not None and facts.module not in self.by_module:
                self.by_module[facts.module] = facts

    def package_files(self) -> list[ModuleFacts]:
        """Facts of modules inside the root package, sorted by module name."""
        return sorted(
            (f for f in self.files if f.sub_module(self.root_package) is not None),
            key=lambda f: f.module or "",
        )

    def resolve_constant(self, facts: ModuleFacts, name: str) -> str | None:
        """Resolve a module-level str constant, following from-imports."""
        if name in facts.str_constants:
            return facts.str_constants[name]
        for imp in facts.imports:
            if imp["kind"] == "from" and imp["alias"] == name:
                source = self.by_module.get(imp["module"])
                if source is not None:
                    return source.str_constants.get(imp["name"])
        return None


class AnalysisCache:
    """Content-hash cache of per-file facts under ``.repro-analysis-cache/``.

    The key covers the relative path, the file's SHA-256, the facts
    schema version, and the registered rule signature — any of those
    changing is a miss.  The cache is strictly best-effort: unreadable or
    unwritable entries degrade to a re-parse, never to an error.
    """

    def __init__(self, directory: str | Path, *, rules_signature: str) -> None:
        self.directory = Path(directory)
        self.rules_signature = rules_signature
        self.hits = 0
        self.misses = 0

    def _key_path(self, rel_path: str, sha256: str) -> Path:
        key = f"{rel_path}|{sha256}|v{FACTS_VERSION}|{self.rules_signature}"
        return self.directory / (hashlib.sha256(key.encode("utf-8")).hexdigest() + ".json")

    def load(self, rel_path: str, sha256: str) -> ModuleFacts | None:
        entry = self._key_path(rel_path, sha256)
        try:
            payload = json.loads(entry.read_text(encoding="utf-8"))
            facts = ModuleFacts.from_dict(payload)
        except (OSError, ValueError, KeyError, TypeError):
            return None
        self.hits += 1
        return facts

    def store(self, facts: ModuleFacts) -> None:
        self.misses += 1
        entry = self._key_path(facts.rel_path, facts.sha256)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(json.dumps(facts.to_dict()), encoding="utf-8")
            tmp.replace(entry)
        except OSError:
            # Read-only checkouts and racing writers lose the cache entry,
            # never the analysis.
            return
