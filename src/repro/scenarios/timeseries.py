"""Multi-round measurement campaigns: scapegoating over time.

The paper analyses a single measurement round; a real operator runs
tomography periodically and acts on *persistent* anomalies.  This module
simulates a campaign of rounds against one scenario, with an optionally
intermittent attacker, and aggregates what the operator would see:

- per-round audited diagnoses (estimate + link states + detector verdict);
- the *detection latency* — how many attacked rounds pass before the
  consistency detector first fires (zero-based; 0 = caught immediately;
  ``None`` = never, e.g. a stealthy perfect-cut attacker);
- the cumulative *blame tally* — how many rounds each link was flagged
  abnormal.  A persistent scapegoat accumulates blame exactly like a
  genuinely failing link would, which is the paper's point: follow-up
  recovery actions would target the victim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

import numpy as np

from repro.detection.auditor import AuditReport, TomographyAuditor
from repro.exceptions import ValidationError
from repro.measurement.engine import AnalyticMeasurementEngine
from repro.scenarios.scenario import Scenario
from repro.utils.rng import ensure_rng

__all__ = ["RoundResult", "CampaignResult", "MeasurementCampaign"]


@dataclass(frozen=True)
class RoundResult:
    """One measurement round of a campaign."""

    index: int
    attacked: bool
    observed: np.ndarray
    audit: AuditReport

    @property
    def detected(self) -> bool:
        """True when the consistency detector fired this round."""
        return not self.audit.trustworthy


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated outcome of a multi-round campaign."""

    rounds: tuple[RoundResult, ...]
    blame_counts: dict = field(default_factory=dict)

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def attacked_rounds(self) -> tuple[int, ...]:
        """Indices of rounds in which the attacker was active."""
        return tuple(r.index for r in self.rounds if r.attacked)

    @property
    def detected_rounds(self) -> tuple[int, ...]:
        """Indices of rounds in which the detector fired."""
        return tuple(r.index for r in self.rounds if r.detected)

    @property
    def false_alarm_rounds(self) -> tuple[int, ...]:
        """Detector firings in rounds with no active attacker."""
        return tuple(r.index for r in self.rounds if r.detected and not r.attacked)

    def detection_latency(self) -> int | None:
        """Attacked rounds elapsed before the first detection.

        0 means the very first attacked round was caught; ``None`` means
        the attacker was never caught (or never active).
        """
        elapsed = 0
        for round_result in self.rounds:
            if not round_result.attacked:
                continue
            if round_result.detected:
                return elapsed
            elapsed += 1
        return None

    def most_blamed_link(self) -> int | None:
        """The link flagged abnormal in the most rounds (ties: lowest index)."""
        if not self.blame_counts:
            return None
        return min(self.blame_counts, key=lambda j: (-self.blame_counts[j], j))


class MeasurementCampaign:
    """Run repeated audited measurement rounds against one scenario.

    Parameters
    ----------
    scenario:
        The tomography setting (topology, paths, ground truth).
    noise_model:
        Optional per-path measurement noise applied every round.
    alpha:
        Consistency-detector threshold (paper: 200 ms).
    """

    def __init__(self, scenario: Scenario, *, noise_model=None, alpha: float = 200.0) -> None:
        self.scenario = scenario
        self.engine = AnalyticMeasurementEngine(scenario.path_set, noise_model=noise_model)
        self.auditor = TomographyAuditor(
            scenario.path_set, thresholds=scenario.thresholds, alpha=alpha
        )

    def run(
        self,
        num_rounds: int,
        *,
        manipulation: np.ndarray | None = None,
        active_rounds: Iterable[int] | float | None = None,
        rng: object = None,
    ) -> CampaignResult:
        """Simulate ``num_rounds`` rounds and aggregate the results.

        ``manipulation`` is the attack vector applied in active rounds
        (``None`` = fully honest campaign).  ``active_rounds`` selects when
        the attacker acts: an iterable of round indices, a float in (0, 1]
        interpreted as an independent per-round activity probability, or
        ``None`` for "every round" (when a manipulation is given).
        """
        if num_rounds < 1:
            raise ValidationError(f"num_rounds must be >= 1, got {num_rounds}")
        generator = ensure_rng(rng)

        if manipulation is None:
            active = set()
        elif active_rounds is None:
            active = set(range(num_rounds))
        elif isinstance(active_rounds, float):
            if not 0.0 < active_rounds <= 1.0:
                raise ValidationError(
                    f"activity probability must be in (0, 1], got {active_rounds}"
                )
            active = {
                i for i in range(num_rounds) if generator.random() < active_rounds
            }
        else:
            active = set(int(i) for i in active_rounds)
            out_of_range = [i for i in active if not 0 <= i < num_rounds]
            if out_of_range:
                raise ValidationError(
                    f"active round {out_of_range[0]} outside [0, {num_rounds})"
                )

        rounds: list[RoundResult] = []
        blame: dict[int, int] = {}
        for index in range(num_rounds):
            attacked = index in active
            observed = self.engine.measure(
                self.scenario.true_metrics,
                manipulation=manipulation if attacked else None,
                rng=generator,
            )
            audit = self.auditor.audit(observed)
            for j in audit.diagnosis.abnormal:
                blame[j] = blame.get(j, 0) + 1
            rounds.append(
                RoundResult(index=index, attacked=attacked, observed=observed, audit=audit)
            )
        return CampaignResult(rounds=tuple(rounds), blame_counts=blame)
