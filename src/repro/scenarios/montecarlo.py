"""Seeded Monte-Carlo plumbing.

Experiments are trials of a function over independent RNG streams, plus
aggregation.  Centralising this keeps every figure driver reproducible and
the seeding discipline uniform (child streams are spawned, so results do
not depend on trial execution order).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import spawn_rngs

__all__ = ["run_trials", "binned_rate", "success_rate"]


def run_trials(
    num_trials: int,
    trial: Callable[[np.random.Generator], dict | None],
    *,
    seed: object = 0,
) -> list[dict]:
    """Run ``trial`` over ``num_trials`` independent RNG streams.

    ``trial`` may return ``None`` to signal the draw was invalid (e.g. the
    sampled victim was unmeasured) — such trials are excluded from the
    result list, mirroring rejection sampling in the paper's setup.
    """
    if num_trials < 1:
        raise ValidationError(f"num_trials must be >= 1, got {num_trials}")
    rngs = spawn_rngs(seed, num_trials)
    results = []
    for rng in rngs:
        outcome = trial(rng)
        if outcome is not None:
            results.append(outcome)
    return results


def success_rate(results: Sequence[dict], flag: str = "success") -> float:
    """Fraction of results with a truthy ``flag`` (nan when empty)."""
    if not results:
        return math.nan
    return sum(1 for r in results if r.get(flag)) / len(results)


def binned_rate(
    results: Sequence[dict],
    x_key: str,
    flag_key: str,
    *,
    bins: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> list[dict]:
    """Success rate per bin of a scalar covariate (the Fig. 7 aggregation).

    Bins are half-open ``[lo, hi)`` except the last, which is closed so a
    covariate of exactly 1.0 (a perfect cut) lands in the top bin.  Results
    with a NaN covariate are skipped.  Each output row carries the bin
    bounds, midpoint, trial count, and success rate (nan for empty bins).
    """
    if len(bins) < 2:
        raise ValidationError("need at least two bin edges")
    edges = list(bins)
    if any(b > a for a, b in zip(edges[1:], edges[:-1])):
        raise ValidationError("bin edges must be non-decreasing")
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        last = hi == edges[-1]
        members = []
        for r in results:
            x = r.get(x_key)
            if x is None or (isinstance(x, float) and math.isnan(x)):
                continue
            if (lo <= x < hi) or (last and x == hi):
                members.append(r)
        rate = success_rate(members, flag_key) if members else math.nan
        rows.append(
            {
                "lo": lo,
                "hi": hi,
                "mid": (lo + hi) / 2,
                "count": len(members),
                "rate": rate,
            }
        )
    return rows
