"""Seeded Monte-Carlo plumbing.

Experiments are trials of a function over independent RNG streams, plus
aggregation.  Centralising this keeps every figure driver reproducible and
the seeding discipline uniform (child streams are spawned, so results do
not depend on trial execution order).

``run_trials`` can fan trials out over a process pool (``workers=N``).
Because every trial draws from its own spawned child stream and results
are reassembled in trial order, parallel runs are bit-identical to serial
ones — parallelism is purely an executor choice, never a statistics one.
"""

from __future__ import annotations

import math
import pickle
from collections.abc import Callable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from functools import partial

import numpy as np

from repro.exceptions import ValidationError
from repro.obs import core as obs
from repro.perf import instrumentation as perf
from repro.utils.rng import spawn_rngs

__all__ = [
    "check_picklable",
    "iter_map_chunks",
    "run_trials",
    "run_batched_trials",
    "binned_rate",
    "success_rate",
]


def _run_chunk(
    trial: Callable[[np.random.Generator], dict | None],
    rngs: list[np.random.Generator],
) -> list[dict | None]:
    """Worker body: run one chunk of trials serially (module-level so the
    process pool can pickle it)."""
    obs.detach_inherited_log()
    return [trial(rng) for rng in rngs]


def check_picklable(fn: object, what: str = "worker function") -> None:
    """Raise :class:`ValidationError` when ``fn`` cannot ship to a pool.

    Closures raise TypeError/AttributeError, custom ``__reduce__`` failures
    PicklingError; all mean "not pool-shippable".
    """
    try:
        pickle.dumps(fn)
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise ValidationError(
            f"{what} must be picklable for workers > 1 "
            "(use a module-level function or functools.partial); "
            f"pickling failed with: {exc}"
        ) from exc


def iter_map_chunks(
    chunk_fn: Callable[[list], list],
    chunks: Sequence[list],
    *,
    workers: int | None = None,
) -> Iterator[list]:
    """Apply ``chunk_fn`` to each chunk, yielding results in chunk order.

    The generic sharding machinery behind :func:`run_trials` and the
    :mod:`repro.sweep` engine.  ``workers=None``/``1`` (or a single chunk)
    applies ``chunk_fn`` in-process; ``workers > 1`` fans the chunks out
    over a process pool (never more processes than chunks).  Results are
    always yielded in chunk order regardless of which worker ran them, so
    the executor choice can never change what a caller observes — only
    when each chunk becomes available.

    ``chunk_fn`` must be picklable for ``workers > 1``; chunk contents must
    be picklable too.  Yielding (rather than returning a list) lets callers
    checkpoint or log per chunk as results arrive while the pool is still
    running later chunks.
    """
    if workers is not None and workers < 1:
        raise ValidationError(f"workers must be >= 1 or None, got {workers}")
    chunk_list = list(chunks)
    if workers is None or workers == 1 or len(chunk_list) <= 1:
        for chunk in chunk_list:
            yield chunk_fn(chunk)
        return
    check_picklable(chunk_fn, "chunk function")
    pool_workers = min(workers, len(chunk_list))
    with ProcessPoolExecutor(max_workers=pool_workers) as pool:
        yield from pool.map(chunk_fn, chunk_list)


def run_trials(
    num_trials: int,
    trial: Callable[[np.random.Generator], dict | None],
    *,
    seed: object = 0,
    workers: int | None = None,
    chunk_size: int | None = None,
) -> list[dict]:
    """Run ``trial`` over ``num_trials`` independent RNG streams.

    ``trial`` may return ``None`` to signal the draw was invalid (e.g. the
    sampled victim was unmeasured) — such trials are excluded from the
    result list, mirroring rejection sampling in the paper's setup.

    Parameters
    ----------
    workers:
        ``None`` or ``1`` runs serially in-process (the default).  ``N > 1``
        fans the trials out over a process pool in chunks (never more
        processes than trials — ``workers > num_trials`` is clamped, so
        oversubscribed pools neither spawn idle workers nor receive empty
        chunks).  Results are bit-identical to the serial path for the
        same seed: each trial owns a spawned child stream, and outcomes
        are reassembled in trial order regardless of which worker ran
        them.  The trial callable (and anything it closes over) must be
        picklable — module-level functions and ``functools.partial`` over
        picklable arguments qualify; locally-defined closures do not.
    chunk_size:
        Trials per pool task.  ``None`` or ``0`` selects the default
        ``num_trials / (4 * workers)`` (at least 1); negative values are
        rejected.  Larger chunks amortise inter-process pickling; smaller
        chunks balance uneven per-trial cost.  Chunking is an executor
        choice only — any chunk size yields the same results.
    """
    if num_trials < 1:
        raise ValidationError(f"num_trials must be >= 1, got {num_trials}")
    if workers is not None and workers < 1:
        raise ValidationError(f"workers must be >= 1 or None, got {workers}")
    if chunk_size is not None and chunk_size < 0:
        raise ValidationError(
            f"chunk_size must be >= 1, or 0/None for the default, got {chunk_size}"
        )

    rngs = spawn_rngs(seed, num_trials)
    perf.record_event("mc_trial", num_trials)
    with perf.stage("mc_trials"):
        if workers is None or workers == 1:
            if obs.is_enabled():
                obs.event("mc_run", trials=num_trials, workers=1, chunks=1)
            outcomes = [trial(rng) for rng in rngs]
        else:
            check_picklable(trial, "trial function")
            pool_workers = min(workers, num_trials)
            chunk = chunk_size or max(1, math.ceil(num_trials / (4 * pool_workers)))
            chunks = [rngs[i : i + chunk] for i in range(0, num_trials, chunk)]
            if obs.is_enabled():
                obs.event(
                    "mc_run",
                    trials=num_trials,
                    workers=pool_workers,
                    requested_workers=workers,
                    chunks=len(chunks),
                    chunk_size=chunk,
                )
            outcomes = []
            for index, part in enumerate(
                iter_map_chunks(partial(_run_chunk, trial), chunks, workers=pool_workers)
            ):
                outcomes.extend(part)
                if obs.is_enabled():
                    # Arrival events: each record's monotonic ``t``
                    # stamp gives per-chunk collection timing and the
                    # inter-arrival gaps expose worker utilisation.
                    obs.event(
                        "mc_chunk",
                        index=index,
                        size=len(part),
                        collected=len(outcomes),
                    )
    kept = [outcome for outcome in outcomes if outcome is not None]
    if obs.is_enabled():
        obs.event("mc_done", trials=num_trials, kept=len(kept))
    return kept


def run_batched_trials(
    num_trials: int,
    draw: Callable[[np.random.Generator], np.ndarray | None],
    batch: Callable[[np.ndarray], Sequence],
    *,
    seed: object = 0,
    chunk_size: int | None = None,
) -> list:
    """Monte-Carlo with the linear-algebra applications batched per chunk.

    ``draw`` produces one measurement vector per trial from its own
    spawned RNG stream (returning ``None`` rejects the trial, as in
    :func:`run_trials`); the kept vectors are stacked into |P| x k column
    blocks of up to ``chunk_size`` trials and each block goes through
    ``batch`` in *one* call — e.g.
    :meth:`~repro.detection.consistency.ConsistencyDetector.check_batch`,
    which turns a Python loop of per-trial estimator matvecs into a
    single multi-RHS kernel solve.  ``batch`` must return one result per
    column, in column order.

    Seeding is identical to :func:`run_trials`: trial ``i`` always draws
    from the same spawned child stream regardless of chunking, so results
    are reproducible for any ``chunk_size``.
    """
    if num_trials < 1:
        raise ValidationError(f"num_trials must be >= 1, got {num_trials}")
    if chunk_size is not None and chunk_size < 0:
        raise ValidationError(
            f"chunk_size must be >= 1, or 0/None for the default, got {chunk_size}"
        )
    chunk = chunk_size or 256
    rngs = spawn_rngs(seed, num_trials)
    perf.record_event("mc_trial", num_trials)
    with perf.stage("mc_trials"):
        draws = [draw(rng) for rng in rngs]
        kept = [np.asarray(d, dtype=float) for d in draws if d is not None]
        if obs.is_enabled():
            obs.event(
                "mc_batch_run",
                trials=num_trials,
                kept=len(kept),
                chunk_size=chunk,
            )
        results: list = []
        for start in range(0, len(kept), chunk):
            block = np.stack(kept[start : start + chunk], axis=1)
            part = list(batch(block))
            if len(part) != block.shape[1]:
                raise ValidationError(
                    f"batch function returned {len(part)} results for a "
                    f"{block.shape[1]}-column block"
                )
            results.extend(part)
            if obs.is_enabled():
                obs.event(
                    "mc_batch_chunk",
                    index=start // chunk,
                    size=block.shape[1],
                    collected=len(results),
                )
    if obs.is_enabled():
        obs.event("mc_done", trials=num_trials, kept=len(results))
    return results


def success_rate(results: Sequence[dict], flag: str = "success") -> float:
    """Fraction of results with a truthy ``flag`` (nan when empty)."""
    if not results:
        return math.nan
    return sum(1 for r in results if r.get(flag)) / len(results)


def binned_rate(
    results: Sequence[dict],
    x_key: str,
    flag_key: str,
    *,
    bins: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0),
) -> list[dict]:
    """Success rate per bin of a scalar covariate (the Fig. 7 aggregation).

    Bins are half-open ``[lo, hi)`` except the last, which is closed so a
    covariate of exactly 1.0 (a perfect cut) lands in the top bin.  Results
    with a NaN covariate are skipped.  Each output row carries the bin
    bounds, midpoint, trial count, and success rate (nan for empty bins).
    """
    if len(bins) < 2:
        raise ValidationError("need at least two bin edges")
    edges = list(bins)
    if any(b > a for a, b in zip(edges[1:], edges[:-1])):
        raise ValidationError("bin edges must be non-decreasing")
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        last = hi == edges[-1]
        members = []
        for r in results:
            x = r.get(x_key)
            if x is None or (isinstance(x, float) and math.isnan(x)):
                continue
            if (lo <= x < hi) or (last and x == hi):
                members.append(r)
        rate = success_rate(members, flag_key) if members else math.nan
        rows.append(
            {
                "lo": lo,
                "hi": hi,
                "mid": (lo + hi) / 2,
                "count": len(members),
                "rate": rate,
            }
        )
    return rows
