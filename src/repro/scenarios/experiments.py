"""Success-probability experiments (Section V-C — Figs. 7 and 8).

Two standard substrates mirror the paper's:

- *wireline* — a synthetic Rocketfuel-style ISP topology (AS1221 stand-in,
  see DESIGN.md for the substitution note);
- *wireless* — a 100-node random geometric graph with density lambda = 5
  and ~5 neighbours per node.

Each Monte-Carlo trial samples attackers (and, for chosen-victim, a victim
link), plans the attack, and records success = LP feasibility.  Fig. 7
bins chosen-victim success by the *attack presence ratio*; Fig. 8 reports
single-attacker success rates for maximum-damage and obfuscation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.cuts import attack_presence_ratio, is_perfect_cut
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.exceptions import ValidationError
from repro.scenarios.montecarlo import binned_rate, run_trials, success_rate
from repro.scenarios.scenario import Scenario
from repro.topology.generators.geometric import random_geometric_topology
from repro.topology.generators.isp import synthetic_rocketfuel

__all__ = [
    "standard_wireline_scenario",
    "standard_wireless_scenario",
    "success_probability_sweep",
    "single_attacker_sweep",
]


def standard_wireline_scenario(*, seed: object = 0, **overrides) -> Scenario:
    """The wireline experiment scenario (synthetic AS1221-style ISP)."""
    defaults = dict(monitor_fraction=0.3, max_per_pair=6, name="wireline-as1221")
    defaults.update(overrides)
    topology = synthetic_rocketfuel("AS1221", seed=seed)
    return Scenario.build(topology, rng=seed, **defaults)


def standard_wireless_scenario(*, seed: object = 0, **overrides) -> Scenario:
    """The wireless experiment scenario (RGG, 100 nodes, lambda = 5)."""
    defaults = dict(monitor_fraction=0.5, max_per_pair=12, name="wireless-rgg")
    defaults.update(overrides)
    topology = random_geometric_topology(100, density=5.0, mean_degree=5.0, seed=seed)
    return Scenario.build(topology, rng=seed, **defaults)


def _sample_attackers(scenario: Scenario, rng: np.random.Generator, sizes) -> list:
    """Draw an attacker node set (monitors included — they are not protected)."""
    size = int(rng.choice(list(sizes)))
    nodes = scenario.topology.nodes()
    picks = rng.choice(len(nodes), size=min(size, len(nodes)), replace=False)
    return [nodes[int(i)] for i in picks]


def _sample_victim(scenario: Scenario, rng: np.random.Generator, forbidden: set) -> int | None:
    """Draw a measured victim link whose endpoints are not attackers."""
    measured = [
        link.index
        for link in scenario.topology.links()
        if link.u not in forbidden
        and link.v not in forbidden
        and scenario.path_set.paths_containing_link(link.index)
    ]
    if not measured:
        return None
    return int(measured[int(rng.integers(len(measured)))])


def success_probability_sweep(
    scenario: Scenario,
    *,
    num_trials: int = 200,
    attacker_sizes=(1, 2, 3, 4, 5),
    mode: str = "exclusive",
    confined: bool = False,
    seed: object = 0,
) -> dict:
    """Fig. 7: chosen-victim success probability vs attack presence ratio.

    Each trial draws an attacker set and a victim link (rejecting draws
    whose victim is attacker-incident or unmeasured), records the presence
    ratio and LP feasibility, and the results are binned by ratio decile.
    Returns ``{"trials": [...], "bins": [...], "scenario": {...}}``.

    The default attack criterion is ``mode="exclusive"`` (the victim must
    be the *only* abnormal link — a true scapegoat) with the unconfined
    LP; this reproduces the paper's Fig. 7 shape, including the steep rise
    around presence ratios 0.6-0.7 and certainty at a perfect cut
    (Theorem 1).  Two ablations are exposed: ``mode="paper"`` scores the
    literal eq. (4)-(7) feasibility (other links may drift abnormal, which
    lets least-squares coupling through victim-free paths succeed even at
    low ratios), and ``confined=True`` restricts estimate changes to
    ``L_m ∪ L_s`` as in the Theorem 1/3 proofs (success then collapses to
    exactly the perfect-cut case).  See EXPERIMENTS.md.
    """
    if not attacker_sizes:
        raise ValidationError("attacker_sizes must not be empty")

    def trial(rng: np.random.Generator) -> dict | None:
        attackers = _sample_attackers(scenario, rng, attacker_sizes)
        victim = _sample_victim(scenario, rng, set(attackers))
        if victim is None:
            return None
        ratio = attack_presence_ratio(scenario.path_set, attackers, [victim])
        if math.isnan(ratio):
            return None
        context = scenario.attack_context(attackers)
        outcome = ChosenVictimAttack(
            context, [victim], mode=mode, confined=confined
        ).run()
        return {
            "presence_ratio": ratio,
            "success": outcome.feasible,
            "perfect_cut": is_perfect_cut(scenario.path_set, attackers, [victim]),
            "num_attackers": len(attackers),
            "damage": outcome.damage,
        }

    trials = run_trials(num_trials, trial, seed=seed)
    return {
        "scenario": scenario.describe(),
        "trials": trials,
        "bins": binned_rate(trials, "presence_ratio", "success"),
        "overall_success": success_rate(trials),
    }


def single_attacker_sweep(
    scenario: Scenario,
    *,
    num_trials: int = 100,
    min_obfuscation_victims: int = 5,
    mode: str = "paper",
    confined: bool = True,
    seed: object = 0,
) -> dict:
    """Fig. 8: single-attacker maximum-damage and obfuscation success.

    One random attacker node per trial; maximum-damage succeeds when *any*
    victim link admits a feasible plan (the scan short-circuits), and
    obfuscation when at least ``min_obfuscation_victims`` victim links can
    be pinned in the uncertain band (Section V-C2's success condition).

    The default attacker model is ``confined=True`` — estimate changes
    restricted to ``L_m ∪ L_s``, the model inside the paper's proofs.  It
    reproduces Fig. 8's ordering: a single attacker succeeds at
    maximum-damage whenever it holds a captive cut (common behind
    hierarchical ISP aggregation), while obfuscation is markedly harder
    because it must pin ``min_obfuscation_victims`` victims at once — the
    paper's stated explanation.  ``confined=False`` is the stronger LP
    attacker ablation (both strategies then succeed much more often).
    """

    def trial(rng: np.random.Generator) -> dict | None:
        attackers = _sample_attackers(scenario, rng, (1,))
        context = scenario.attack_context(attackers)
        max_damage = MaxDamageAttack(
            context, stop_at_first_feasible=True, mode=mode, confined=confined
        ).run()
        obfuscation = ObfuscationAttack(
            context,
            min_victims=min_obfuscation_victims,
            max_victims=min_obfuscation_victims,
            mode=mode,
            confined=confined,
        ).run()
        return {
            "attacker": attackers[0],
            "max_damage_success": max_damage.feasible,
            "obfuscation_success": obfuscation.feasible,
            "max_damage": max_damage.damage,
            "obfuscation_victims": len(obfuscation.victim_links),
        }

    trials = run_trials(num_trials, trial, seed=seed)
    return {
        "scenario": scenario.describe(),
        "trials": trials,
        "max_damage_success_rate": success_rate(trials, "max_damage_success"),
        "obfuscation_success_rate": success_rate(trials, "obfuscation_success"),
    }
