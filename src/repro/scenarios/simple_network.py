"""Section V-B case studies: the Fig. 1 network, Figs. 4-6.

The paper's simple-network experiments use the Fig. 1 topology (7 nodes,
10 links, monitors M1/M2/M3) with 23 measurement paths, routine delays of
1-20 ms, thresholds 100/800 ms, a 2000 ms per-path cap, and attackers
``B`` and ``C``.  :func:`paper_fig1_scenario` reconstructs that setting
deterministically; the case-study functions reproduce each figure's attack
and return the per-link series the figure plots.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackOutcome
from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.cuts import attack_presence_ratio, is_perfect_cut
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.naive import NaiveDelayAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.exceptions import AttackError
from repro.metrics.link_metrics import uniform_delay_metrics
from repro.metrics.states import StateThresholds
from repro.routing.ksp import all_simple_paths
from repro.routing.paths import MeasurementPath, PathSet
from repro.routing.selection import select_paths_rank_greedy
from repro.scenarios.scenario import Scenario
from repro.topology.generators.simple import (
    PAPER_EXAMPLE_ATTACKERS,
    PAPER_EXAMPLE_MONITORS,
    paper_example_network,
)

__all__ = [
    "paper_fig1_scenario",
    "chosen_victim_case_study",
    "max_damage_case_study",
    "obfuscation_case_study",
    "naive_baseline_case_study",
    "PAPER_VICTIM_LINK",
]

#: Fig. 4's victim: paper link 10 = index 9 (D - M2), not perfectly cut by B, C.
PAPER_VICTIM_LINK = 9

#: Number of measurement paths in the paper's Fig. 1 example.
PAPER_NUM_PATHS = 23


def _fig1_paths(topology) -> PathSet:
    """The 23-path measurement set over the Fig. 1 network.

    All simple paths between the three monitor pairs are enumerated and
    ordered deterministically (shortest first, ties by node labels); a
    rank-greedy pass guarantees full identifiability of all 10 links, then
    the shortest unused paths fill the set up to 23 rows — matching the
    paper's count and leaving 13 redundant rows for detection.
    """
    sequences = []
    monitors = list(PAPER_EXAMPLE_MONITORS)
    for i in range(len(monitors)):
        for j in range(i + 1, len(monitors)):
            sequences.extend(all_simple_paths(topology, monitors[i], monitors[j]))
    sequences.sort(key=lambda seq: (len(seq), [str(n) for n in seq]))
    candidates = [MeasurementPath(topology, seq) for seq in sequences]
    core = select_paths_rank_greedy(topology, candidates)
    chosen = {path.key() for path in core}
    for path in candidates:
        if core.num_paths >= PAPER_NUM_PATHS:
            break
        if path.key() in chosen:
            continue
        core.append(path)
        chosen.add(path.key())
    return core


def paper_fig1_scenario(*, seed: object = 2017) -> Scenario:
    """The full Section V-A/B setting on the Fig. 1 network.

    Deterministic for a fixed seed: same 23 paths, same routine delays.
    """
    topology = paper_example_network()
    path_set = _fig1_paths(topology)
    metrics = uniform_delay_metrics(topology, 1.0, 20.0, rng=seed)
    return Scenario(
        topology=topology,
        monitors=PAPER_EXAMPLE_MONITORS,
        path_set=path_set,
        true_metrics=metrics,
        thresholds=StateThresholds(100.0, 800.0),
        cap=2000.0,
        margin=1.0,
        name="paper-fig1",
    )


def _case_study_record(scenario: Scenario, outcome: AttackOutcome, **extra) -> dict:
    """Uniform result record for the Figs. 4-6 case studies."""
    record = {
        "scenario": scenario,
        "outcome": outcome,
        "feasible": outcome.feasible,
        "damage": outcome.damage,
        "mean_path_delay": outcome.mean_path_measurement,
        "victim_links": list(outcome.victim_links),
    }
    if outcome.feasible and outcome.predicted_estimate is not None:
        record["estimates"] = [float(v) for v in outcome.predicted_estimate]
        if outcome.diagnosis is None:
            raise AttackError("feasible outcome carries no diagnosis report")
        record["states"] = [str(s) for s in outcome.diagnosis.states]
        record["abnormal_links"] = list(outcome.diagnosis.abnormal)
        record["uncertain_links"] = list(outcome.diagnosis.uncertain)
    record.update(extra)
    return record


def chosen_victim_case_study(
    *,
    victim_link: int = PAPER_VICTIM_LINK,
    attackers=PAPER_EXAMPLE_ATTACKERS,
    mode: str = "exclusive",
    seed: object = 2017,
) -> dict:
    """Fig. 4: chosen-victim scapegoating of link 10 (index 9) by B and C.

    The paper highlights that B and C do *not* perfectly cut link 10 (the
    path M3-D-M2 avoids them) yet the attack still succeeds; the record
    includes the cut status and presence ratio so benches can assert it.
    The default ``"exclusive"`` mode reproduces Fig. 4's clean picture
    where the victim is the only abnormal link.
    """
    scenario = paper_fig1_scenario(seed=seed)
    context = scenario.attack_context(attackers)
    outcome = ChosenVictimAttack(context, [victim_link], mode=mode).run()
    return _case_study_record(
        scenario,
        outcome,
        victim_link=victim_link,
        perfect_cut=is_perfect_cut(scenario.path_set, attackers, [victim_link]),
        presence_ratio=attack_presence_ratio(
            scenario.path_set, attackers, [victim_link]
        ),
    )


def max_damage_case_study(
    *, attackers=PAPER_EXAMPLE_ATTACKERS, mode: str = "paper", seed: object = 2017
) -> dict:
    """Fig. 5: maximum-damage scapegoating by B and C.

    Scans every candidate victim; the damage-maximising solution typically
    pushes several free links abnormal at once (the paper observes links 1
    and 9).  The record includes the per-victim damage map so benches can
    assert max-damage >= every chosen-victim damage.
    """
    scenario = paper_fig1_scenario(seed=seed)
    context = scenario.attack_context(attackers)
    attack = MaxDamageAttack(context, mode=mode)
    outcome = attack.run()
    return _case_study_record(
        scenario, outcome, damage_by_victim=attack.damage_by_victim()
    )


def obfuscation_case_study(
    *,
    attackers=PAPER_EXAMPLE_ATTACKERS,
    min_victims: int = 1,
    seed: object = 2017,
) -> dict:
    """Fig. 6: obfuscation by B and C.

    Every obfuscatable link (the attackers' own seven links plus whatever
    free links remain feasible) is pushed into the uncertain band so no
    link stands out.  On this small network the victim pool is only the
    three non-controlled links, hence the default ``min_victims=1`` (the
    >= 5 rule of Section V-C2 applies to the large-network experiments).
    """
    scenario = paper_fig1_scenario(seed=seed)
    context = scenario.attack_context(attackers)
    outcome = ObfuscationAttack(context, min_victims=min_victims).run()
    return _case_study_record(scenario, outcome)


def naive_baseline_case_study(
    *, attackers=PAPER_EXAMPLE_ATTACKERS, per_path_delay: float | None = None, seed: object = 2017
) -> dict:
    """The Section II-C strawman: delay everything, get caught.

    Complements Figs. 4-6 by showing the contrast the paper motivates:
    without scapegoating, the worst-looking link under tomography is one of
    the attackers' own.  ``per_path_delay`` defaults to the scenario cap
    (2000 ms — the attacker's full budget, the fair comparison with the
    scapegoating strategies).
    """
    scenario = paper_fig1_scenario(seed=seed)
    context = scenario.attack_context(attackers)
    outcome = NaiveDelayAttack(context, per_path_delay=per_path_delay).run()
    exposed = outcome.extras.get("exposed_controlled_links", [])
    if outcome.predicted_estimate is None:
        raise AttackError("naive baseline produced no predicted estimate")
    worst_link = int(np.argmax(outcome.predicted_estimate))
    return _case_study_record(
        scenario,
        outcome,
        exposed_controlled_links=exposed,
        attacker_exposed=bool(exposed),
        worst_link=worst_link,
        worst_link_is_controlled=worst_link in context.controlled_links,
        controlled_links=sorted(context.controlled_links),
    )
