"""Detection experiments (Section V-D — Fig. 9).

For each strategy and cut regime, trials sample an attacker set, pick
victims that the attackers do (perfect) or do not (imperfect) fully cut,
plan the attack, feed the forged measurements to the consistency detector
(alpha = 200 ms, the paper's setting), and record whether it fires.  Clean
rounds measure the false-alarm rate.

Three attacker models are supported (``attacker_model``):

- ``"confined"`` (default — the paper's model): estimate changes are
  restricted to ``L_m ∪ L_s`` (exactly the assumption inside the Theorem
  1/3 proofs), and the attacker prefers measurement-consistent solutions
  when they exist.  Reproduces Theorem 3's dichotomy: perfect cut =>
  0% detection, imperfect cut => 100% detection.
- ``"unconfined"`` — the strictly stronger LP attacker that may also move
  estimates of uninvolved links and prefers consistent solutions.  It
  evades the detector in a fraction of *imperfect*-cut cases too (a
  finding beyond the paper, recorded in EXPERIMENTS.md).
- ``"plain"`` — the naive damage-maximising LP with no care for
  consistency; detected essentially always, under both cut regimes.

Note: the paper's prose for Fig. 9 states the ratios inverted relative to
its own Theorem 3; we follow the theorem (see DESIGN.md / EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.cuts import attack_presence_ratio, perfectly_cut_links
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.detection.consistency import ConsistencyDetector
from repro.exceptions import AttackError, ValidationError
from repro.obs import core as obs
from repro.scenarios.montecarlo import run_batched_trials, run_trials, success_rate
from repro.scenarios.scenario import Scenario
from repro.tomography.estimator_zoo import calibrated_alpha, resolve_estimator
from repro.tomography.linear_system import LinearSystem

__all__ = [
    "ablation_estimator_zoo",
    "detection_ratio_experiment",
    "false_alarm_experiment",
]

_STRATEGIES = ("chosen-victim", "max-damage", "obfuscation")
_CUTS = ("perfect", "imperfect")


def _victim_pools(scenario: Scenario, attackers, controlled: set[int]) -> tuple[list[int], list[int]]:
    """Candidate victims split into perfectly cut and imperfectly cut.

    Imperfect candidates must still be *touchable* (presence ratio > 0) or
    no strategy could move their estimate at all.
    """
    perfect = perfectly_cut_links(scenario.path_set, attackers, exclude_links=controlled)
    perfect_set = set(perfect)
    imperfect = []
    for link in scenario.topology.links():
        j = link.index
        if j in controlled or j in perfect_set:
            continue
        ratio = attack_presence_ratio(scenario.path_set, attackers, [j])
        if np.isfinite(ratio) and 0.0 < ratio < 1.0:
            imperfect.append(j)
    return perfect, imperfect


def _run_strategy(strategy, context, victims, rng, *, stealthy, confined):
    """Run one strategy restricted to the given victim pool."""
    if strategy == "chosen-victim":
        victim = victims[int(rng.integers(len(victims)))]
        return ChosenVictimAttack(
            context, [victim], stealthy=stealthy, confined=confined
        ).run()
    if strategy == "max-damage":
        return MaxDamageAttack(
            context,
            candidate_links=victims,
            stop_at_first_feasible=True,
            stealthy=stealthy,
            confined=confined,
        ).run()
    if strategy == "obfuscation":
        min_victims = min(2, len(victims))
        return ObfuscationAttack(
            context,
            candidate_links=victims,
            min_victims=min_victims,
            max_victims=max(min_victims, min(5, len(victims))),
            stealthy=stealthy,
            confined=confined,
        ).run()
    raise ValidationError(f"unknown strategy {strategy!r}")


def detection_ratio_experiment(
    scenario: Scenario,
    strategy: str,
    cut: str,
    *,
    num_trials: int = 50,
    alpha: float = 200.0,
    attacker_sizes=(1, 2, 3),
    attacker_model: str = "confined",
    seed: object = 0,
) -> dict:
    """Detection ratio for one (strategy, cut-regime) cell of Fig. 9.

    Returns the detection ratio over *successful* attacks (an infeasible
    attack leaves nothing to detect), the per-trial records, and the count
    of valid trials.  See the module docstring for the three
    ``attacker_model`` values; ``"confined"`` reproduces the paper.
    """
    if strategy not in _STRATEGIES:
        raise ValidationError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
    if cut not in _CUTS:
        raise ValidationError(f"cut must be one of {_CUTS}, got {cut!r}")
    if attacker_model not in ("confined", "unconfined", "plain"):
        raise ValidationError(
            f"attacker_model must be 'confined', 'unconfined' or 'plain', got {attacker_model!r}"
        )
    confined = attacker_model == "confined"
    stealth_first = attacker_model in ("confined", "unconfined")
    detector = ConsistencyDetector(scenario.path_set.routing_matrix(), alpha=alpha)

    def trial(rng: np.random.Generator) -> dict | None:
        nodes = scenario.topology.nodes()
        size = int(rng.choice(list(attacker_sizes)))
        picks = rng.choice(len(nodes), size=min(size, len(nodes)), replace=False)
        attackers = [nodes[int(i)] for i in picks]
        context = scenario.attack_context(attackers)
        perfect, imperfect = _victim_pools(
            scenario, attackers, set(context.controlled_links)
        )
        victims = perfect if cut == "perfect" else imperfect
        if not victims:
            return None
        if stealth_first:
            outcome = _run_strategy(
                strategy, context, victims, rng, stealthy=True, confined=confined
            )
            used_stealth = True
            if not outcome.feasible:
                outcome = _run_strategy(
                    strategy, context, victims, rng, stealthy=False, confined=confined
                )
                used_stealth = False
        else:
            outcome = _run_strategy(
                strategy, context, victims, rng, stealthy=False, confined=False
            )
            used_stealth = False
        if not outcome.feasible:
            return {"attack_success": False, "detected": None, "stealthy": None}
        if outcome.observed_measurements is None:
            raise AttackError("feasible outcome carries no observed measurements")
        result = detector.check(outcome.observed_measurements)
        return {
            "attack_success": True,
            "detected": result.detected,
            "residual_l1": result.residual_l1,
            "stealthy": used_stealth,
            "num_attackers": len(attackers),
            "victims": list(outcome.victim_links),
        }

    with obs.span(
        "detection_experiment",
        strategy=strategy,
        cut=cut,
        attacker_model=attacker_model,
        trials=num_trials,
    ):
        trials = run_trials(num_trials, trial, seed=seed)
    successful = [t for t in trials if t["attack_success"]]
    detected = [t for t in successful if t["detected"]]
    if obs.is_enabled():
        obs.event(
            "detection_result",
            strategy=strategy,
            cut=cut,
            valid_trials=len(trials),
            successful_attacks=len(successful),
            detected=len(detected),
        )
    return {
        "scenario": scenario.describe(),
        "strategy": strategy,
        "cut": cut,
        "alpha": alpha,
        "num_valid_trials": len(trials),
        "num_successful_attacks": len(successful),
        "detection_ratio": (len(detected) / len(successful)) if successful else float("nan"),
        "attack_success_rate": success_rate(trials, "attack_success"),
        "trials": trials,
    }


def ablation_estimator_zoo(
    scenario: Scenario,
    *,
    estimators=("ls", "bayes-map", "l1"),
    estimator_params: dict | None = None,
    strategy: str = "chosen-victim",
    cut: str = "perfect",
    num_trials: int = 30,
    base_alpha: float = 200.0,
    attacker_sizes=(1, 2, 3),
    roc_points: int = 9,
    seed: object = 0,
) -> dict:
    """Does scapegoating survive a defender who does not run least squares?

    The paper's attacks are planned against eq. (2); this ablation replays
    the same planned manipulations against each estimator family in
    ``estimators`` and records, per family: the attack-success rate, the
    scapegoat-landing rate (all intended victims diagnosed abnormal under
    *that* estimator), the detection ratio at a per-estimator calibrated
    alpha (:func:`~repro.tomography.estimator_zoo.calibrated_alpha` —
    ``base_alpha`` of head-room above the family's honest-round residual
    bias), and an ROC table thresholding the residual over attacked versus
    honest rounds.  Trials are re-seeded identically per family, so every
    estimator judges the *same* attack sequence and rows are directly
    comparable.

    ``estimator_params`` optionally maps a family name to its constructor
    parameters (e.g. ``{"bayes-map": {"prior_var": 100.0}}``).
    """
    if strategy not in _STRATEGIES:
        raise ValidationError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
    if cut not in _CUTS:
        raise ValidationError(f"cut must be one of {_CUTS}, got {cut!r}")
    if not estimators:
        raise ValidationError("estimators must name at least one family")
    params_by_name = dict(estimator_params or {})
    unknown = set(params_by_name) - set(estimators)
    if unknown:
        raise ValidationError(
            f"estimator_params for families not being ablated: {sorted(unknown)}"
        )
    # One factorisation serves every family: each estimator is resolved
    # over the same shared kernel (the RP001 discipline this ablation
    # stress-tests).
    system = LinearSystem(scenario.path_set.routing_matrix())
    honest = scenario.honest_measurements()
    rows = []
    with obs.span(
        "ablation_estimator_zoo",
        strategy=strategy,
        cut=cut,
        estimators=list(estimators),
        trials=num_trials,
    ):
        for name in estimators:
            estimator = resolve_estimator(
                name, system=system, **params_by_name.get(name, {})
            )
            alpha = calibrated_alpha(estimator, honest, base_alpha)
            detector = ConsistencyDetector(
                scenario.path_set.routing_matrix(),
                alpha=alpha,
                system=system,
                estimator=estimator,
            )
            honest_residual = detector.check(honest).residual_l1

            def trial(rng: np.random.Generator) -> dict | None:
                nodes = scenario.topology.nodes()
                size = int(rng.choice(list(attacker_sizes)))
                picks = rng.choice(len(nodes), size=min(size, len(nodes)), replace=False)
                attackers = [nodes[int(i)] for i in picks]
                context = scenario.attack_context(
                    attackers, system=system, estimator=estimator
                )
                perfect, imperfect = _victim_pools(
                    scenario, attackers, set(context.controlled_links)
                )
                victims = perfect if cut == "perfect" else imperfect
                if not victims:
                    return None
                outcome = _run_strategy(
                    strategy, context, victims, rng, stealthy=True, confined=True
                )
                if not outcome.feasible:
                    outcome = _run_strategy(
                        strategy, context, victims, rng, stealthy=False, confined=True
                    )
                if not outcome.feasible:
                    return {"attack_success": False, "detected": None, "landed": None}
                if outcome.observed_measurements is None:
                    raise AttackError("feasible outcome carries no observed measurements")
                result = detector.check(outcome.observed_measurements)
                landed = outcome.diagnosis is not None and set(
                    outcome.victim_links
                ) <= set(outcome.diagnosis.abnormal)
                return {
                    "attack_success": True,
                    "detected": result.detected,
                    "landed": bool(landed),
                    "residual_l1": result.residual_l1,
                    "damage": outcome.damage,
                }

            trials = run_trials(num_trials, trial, seed=seed)
            successful = [t for t in trials if t["attack_success"]]
            detected = [t for t in successful if t["detected"]]
            landed = [t for t in successful if t["landed"]]
            attacked_residuals = [t["residual_l1"] for t in successful]
            roc = _roc_table(attacked_residuals, [honest_residual], roc_points)
            if obs.is_enabled():
                obs.event(
                    "estimator_ablation_result",
                    estimator=name,
                    alpha=alpha,
                    valid_trials=len(trials),
                    successful_attacks=len(successful),
                    detected=len(detected),
                    landed=len(landed),
                )
            rows.append(
                {
                    "estimator": name,
                    "params": dict(estimator.params()),
                    "alpha": alpha,
                    "honest_residual": honest_residual,
                    "num_valid_trials": len(trials),
                    "attack_success_rate": success_rate(trials, "attack_success"),
                    "scapegoat_rate": (
                        (len(landed) / len(successful)) if successful else float("nan")
                    ),
                    "detection_ratio": (
                        (len(detected) / len(successful)) if successful else float("nan")
                    ),
                    "mean_damage": (
                        float(np.mean([t["damage"] for t in successful]))
                        if successful
                        else 0.0
                    ),
                    "roc": roc,
                }
            )
    return {
        "scenario": scenario.describe(),
        "strategy": strategy,
        "cut": cut,
        "base_alpha": base_alpha,
        "num_trials": num_trials,
        "estimators": rows,
    }


def _roc_table(
    attacked: list[float], honest: list[float], roc_points: int
) -> list[dict]:
    """Residual-threshold ROC rows over attacked vs. honest rounds.

    Thresholds are midpoints between consecutive distinct residuals (the
    only places the operating point can change), bracketed by one
    threshold below and one above everything, thinned to ``roc_points``.
    """
    values = sorted(set(attacked) | set(honest))
    if not values:
        return []
    candidates = [values[0] - 1.0]
    candidates += [(a + b) / 2.0 for a, b in zip(values, values[1:])]
    candidates.append(values[-1] + 1.0)
    if len(candidates) > roc_points:
        idx = np.linspace(0, len(candidates) - 1, roc_points).round().astype(int)
        candidates = [candidates[int(i)] for i in sorted(set(idx.tolist()))]
    rows = []
    for threshold in candidates:
        tpr = (
            sum(1 for r in attacked if r > threshold) / len(attacked)
            if attacked
            else float("nan")
        )
        fpr = sum(1 for r in honest if r > threshold) / len(honest)
        rows.append(
            {
                "threshold": float(threshold),
                "true_positive_rate": float(tpr),
                "false_positive_rate": float(fpr),
            }
        )
    return rows


def false_alarm_experiment(
    scenario: Scenario,
    *,
    num_trials: int = 50,
    alpha: float = 200.0,
    noise_model=None,
    seed: object = 0,
) -> dict:
    """False-alarm rate of the detector on honest measurement rounds.

    With the paper's noiseless model the residual is numerically zero and
    no alarms fire; passing a noise model measures how ``alpha`` absorbs
    real measurement randomness (ablation bench).
    """
    detector = ConsistencyDetector(scenario.path_set.routing_matrix(), alpha=alpha)
    engine = scenario.engine(noise_model)

    def draw(rng: np.random.Generator) -> np.ndarray:
        return engine.measure(scenario.true_metrics, rng=rng)

    # Checks are batched: each Monte-Carlo chunk of honest draws goes
    # through one multi-RHS detector call instead of a per-trial matvec
    # loop (same spawned streams, so results match the per-trial path).
    with obs.span("false_alarm_experiment", alpha=alpha, trials=num_trials):
        results = run_batched_trials(num_trials, draw, detector.check_batch, seed=seed)
    trials = [
        {"detected": r.detected, "residual_l1": r.residual_l1} for r in results
    ]
    if obs.is_enabled():
        obs.event(
            "false_alarm_result",
            trials=len(trials),
            alarms=sum(1 for t in trials if t["detected"]),
        )
    return {
        "scenario": scenario.describe(),
        "alpha": alpha,
        "false_alarm_rate": success_rate(trials, "detected"),
        "max_residual": max(t["residual_l1"] for t in trials),
        "trials": trials,
    }
