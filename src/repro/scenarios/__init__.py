"""Experiment harness: scenarios, case studies, and Monte-Carlo drivers.

- :mod:`~repro.scenarios.scenario` — the :class:`Scenario` bundle
  (topology + monitors + paths + ground truth + thresholds) and its
  builders;
- :mod:`~repro.scenarios.simple_network` — the paper's Section V-B case
  studies on the Fig. 1 network (Figs. 4-6);
- :mod:`~repro.scenarios.experiments` — success-probability sweeps
  (Figs. 7-8);
- :mod:`~repro.scenarios.detection_experiments` — detection ratios
  (Fig. 9);
- :mod:`~repro.scenarios.montecarlo` — seeded trial running and binning.
"""

from repro.scenarios.scenario import Scenario
from repro.scenarios.montecarlo import binned_rate, run_trials
from repro.scenarios.simple_network import (
    chosen_victim_case_study,
    max_damage_case_study,
    naive_baseline_case_study,
    obfuscation_case_study,
    paper_fig1_scenario,
)
from repro.scenarios.experiments import (
    single_attacker_sweep,
    success_probability_sweep,
)
from repro.scenarios.detection_experiments import detection_ratio_experiment
from repro.scenarios.loss_network import (
    loss_chosen_victim_case_study,
    paper_fig1_loss_scenario,
)
from repro.scenarios.defense_experiments import (
    path_selection_defense_experiment,
    robust_recovery_experiment,
)
from repro.scenarios.sensitivity import knowledge_sensitivity_experiment
from repro.scenarios.serialization import (
    load_scenario,
    save_scenario,
    scenario_from_json,
    scenario_to_json,
)
from repro.scenarios.timeseries import (
    CampaignResult,
    MeasurementCampaign,
    RoundResult,
)
from repro.scenarios.streaming import (
    ChurnEvent,
    EpochResult,
    StreamResult,
    StreamingCampaign,
    random_churn_schedule,
)

__all__ = [
    "Scenario",
    "binned_rate",
    "run_trials",
    "chosen_victim_case_study",
    "max_damage_case_study",
    "naive_baseline_case_study",
    "obfuscation_case_study",
    "paper_fig1_scenario",
    "single_attacker_sweep",
    "success_probability_sweep",
    "detection_ratio_experiment",
    "loss_chosen_victim_case_study",
    "paper_fig1_loss_scenario",
    "CampaignResult",
    "MeasurementCampaign",
    "RoundResult",
    "ChurnEvent",
    "EpochResult",
    "StreamResult",
    "StreamingCampaign",
    "random_churn_schedule",
    "knowledge_sensitivity_experiment",
    "load_scenario",
    "save_scenario",
    "scenario_from_json",
    "scenario_to_json",
    "path_selection_defense_experiment",
    "robust_recovery_experiment",
]
