"""Loss-domain scenarios: scapegoating by dropping packets.

The paper's formulation is metric-agnostic (Remark 2): everything in the
delay pipeline carries over to packet loss once metrics move to the log
domain.  This module provides the loss-domain counterpart of the Fig. 1
setting and a chosen-victim case study executed as *actual packet drops*
in the discrete-event simulator:

1. ground truth: per-link loss rates (routine links lose 0-1% of packets);
2. thresholds: delivery > 95% is normal, < 50% abnormal (log domain);
3. the attack LP runs unchanged on log metrics (cap = the log metric of
   the attacker's maximum tolerable drop rate);
4. the plan compiles to per-path *drop probabilities* for attacker nodes,
   the simulator measures delivery ratios over many probes, and
   tomography in the log domain blames the scapegoat.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.constraints import manipulable_paths
from repro.attacks.cuts import is_perfect_cut
from repro.measurement.loss import (
    delivery_to_log_measurements,
    loss_thresholds,
    manipulation_to_drop_probabilities,
)
from repro.measurement.simulator.adversary import PathManipulationAgent
from repro.measurement.simulator.network_sim import NetworkSimulator
from repro.metrics.link_metrics import loss_rate_to_log_metric
from repro.scenarios.scenario import Scenario
from repro.scenarios.simple_network import _fig1_paths
from repro.tomography.diagnosis import diagnose
from repro.tomography.estimators import LeastSquaresEstimator
from repro.topology.generators.simple import (
    PAPER_EXAMPLE_ATTACKERS,
    PAPER_EXAMPLE_MONITORS,
    paper_example_network,
)
from repro.utils.rng import ensure_rng

__all__ = [
    "paper_fig1_loss_scenario",
    "compile_loss_attack_plan",
    "loss_chosen_victim_case_study",
]

#: Default per-path cap in the log domain: at most ~99% probe drop rate.
DEFAULT_LOSS_CAP = float(-np.log(1.0 - 0.99))


def paper_fig1_loss_scenario(
    *,
    routine_loss: tuple[float, float] = (0.0, 0.01),
    normal_delivery: float = 0.95,
    abnormal_delivery: float = 0.50,
    seed: object = 2017,
) -> Scenario:
    """The Fig. 1 setting with loss metrics instead of delays.

    Routine links drop between ``routine_loss[0]`` and ``routine_loss[1]``
    of their packets; ``true_metrics`` holds the additive ``-log`` metric.
    """
    topology = paper_example_network()
    path_set = _fig1_paths(topology)
    rng = ensure_rng(seed)
    lo, hi = routine_loss
    loss_rates = rng.uniform(lo, hi, size=topology.num_links)
    return Scenario(
        topology=topology,
        monitors=PAPER_EXAMPLE_MONITORS,
        path_set=path_set,
        true_metrics=loss_rate_to_log_metric(loss_rates),
        thresholds=loss_thresholds(normal_delivery, abnormal_delivery),
        cap=DEFAULT_LOSS_CAP,
        margin=0.01,  # log-domain units (~1% delivery headroom vs sampling noise)
        name="paper-fig1-loss",
    )


def compile_loss_attack_plan(
    scenario: Scenario, attacker_nodes, manipulation: np.ndarray
) -> dict:
    """Compile a log-domain manipulation into per-path *drop* agents.

    Each manipulated path's entry ``m_i`` becomes a per-probe drop
    probability ``1 - exp(-m_i)`` installed at the first attacker node on
    the path (interior preferred, as for delays).
    """
    attackers = list(dict.fromkeys(attacker_nodes))
    support = set(manipulable_paths(scenario.path_set, attackers))
    drops = manipulation_to_drop_probabilities(manipulation)
    agents: dict = {}
    for row, probability in enumerate(drops):
        if probability <= 0.0:
            continue
        if row not in support:
            raise ValueError(f"path {row} carries manipulation but no attacker")
        path = scenario.path_set.path(row)
        on_path = [n for n in path.nodes if n in set(attackers)]
        interior = [n for n in on_path if n != path.target]
        chosen = interior[0] if interior else on_path[0]
        agent = agents.setdefault(chosen, PathManipulationAgent(node=chosen))
        agent.set_action(row, drop_probability=float(probability))
    return agents


def loss_chosen_victim_case_study(
    *,
    victim_link: int = 9,
    attackers=PAPER_EXAMPLE_ATTACKERS,
    probes_per_path: int = 4000,
    seed: object = 2017,
) -> dict:
    """Loss-domain Fig. 4 analogue: scapegoat link 10 as a lossy link.

    Plans the chosen-victim attack on log metrics, executes it as packet
    drops in the simulator, measures per-path delivery ratios over
    ``probes_per_path`` probes, and runs log-domain tomography on the
    result.  Returns the planned and measured diagnoses side by side.
    """
    scenario = paper_fig1_loss_scenario(seed=seed)
    context = scenario.attack_context(attackers)
    outcome = ChosenVictimAttack(context, [victim_link], mode="exclusive").run()
    record = {
        "scenario": scenario,
        "outcome": outcome,
        "feasible": outcome.feasible,
        "victim_link": victim_link,
        "perfect_cut": is_perfect_cut(scenario.path_set, attackers, [victim_link]),
    }
    if not outcome.feasible:
        return record

    agents = compile_loss_attack_plan(scenario, attackers, outcome.manipulation)
    simulator = NetworkSimulator(
        scenario.topology,
        np.ones(scenario.topology.num_links),  # delays irrelevant here
        agents=agents,
        link_loss=1.0 - np.exp(-scenario.true_metrics),
    )
    sim_record = simulator.run_measurement(
        scenario.path_set, probes_per_path=probes_per_path, rng=seed
    )
    observed = delivery_to_log_measurements(sim_record.delivery_ratio_vector())
    estimator = LeastSquaresEstimator(scenario.path_set.routing_matrix())
    measured = diagnose(estimator.estimate(observed), scenario.thresholds)
    planned = outcome.diagnosis

    record.update(
        {
            "planned_abnormal": list(planned.abnormal),
            "measured_abnormal": list(measured.abnormal),
            "victim_delivery_estimate": float(np.exp(-measured.estimate[victim_link])),
            "min_delivery_ratio": float(np.min(sim_record.delivery_ratio_vector())),
            "planned_diagnosis": planned,
            "measured_diagnosis": measured,
        }
    )
    return record
