"""The :class:`Scenario` bundle.

A scenario fixes everything the operator side of an experiment needs — the
topology, monitors, measurement paths, ground-truth link metrics, state
thresholds — plus the attacker-facing knobs (per-path cap, band margin).
Experiment drivers derive attack contexts, measurement engines, and
auditors from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.attacks.base import AttackContext
from repro.detection.auditor import TomographyAuditor
from repro.measurement.engine import AnalyticMeasurementEngine
from repro.measurement.simulator.network_sim import NetworkSimulator
from repro.metrics.link_metrics import uniform_delay_metrics
from repro.metrics.states import StateThresholds
from repro.monitors.placement import random_monitor_placement
from repro.routing.paths import PathSet
from repro.routing.selection import select_identifiable_paths
from repro.topology.graph import NodeId, Topology
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_finite_vector

__all__ = ["Scenario"]


@dataclass
class Scenario:
    """One fully specified tomography setting.

    Attributes
    ----------
    topology, monitors, path_set:
        The operator's measurement infrastructure.
    true_metrics:
        Ground-truth link metrics ``x*`` (ms for the delay experiments).
    thresholds:
        Link-state bounds (paper defaults: 100 / 800 ms).
    cap:
        Per-path manipulation limit (paper: 2000 ms).
    margin:
        Strictness margin for attack LPs (ms).
    name:
        Label used in logs and reports.
    """

    topology: Topology
    monitors: tuple[NodeId, ...]
    path_set: PathSet
    true_metrics: np.ndarray
    thresholds: StateThresholds = field(default_factory=StateThresholds)
    cap: float | None = 2000.0
    margin: float = 1.0
    name: str = ""

    def __post_init__(self) -> None:
        self.true_metrics = check_finite_vector(
            self.true_metrics, "true_metrics", length=self.topology.num_links
        )
        self.monitors = tuple(self.monitors)

    # ------------------------------------------------------------------
    # builders
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        topology: Topology,
        *,
        monitors: Sequence[NodeId] | None = None,
        num_monitors: int | None = None,
        monitor_fraction: float | None = None,
        redundancy: int = 3,
        max_per_pair: int = 20,
        pair_budget: int | None = None,
        delay_range: tuple[float, float] = (1.0, 20.0),
        thresholds: StateThresholds | None = None,
        cap: float | None = 2000.0,
        margin: float = 1.0,
        name: str = "",
        rng: object = None,
    ) -> "Scenario":
        """Standard scenario construction used by the experiments.

        Monitors come from (in priority order) an explicit ``monitors``
        list, an explicit ``num_monitors`` count, or ``monitor_fraction``
        of the node count (default 0.3, at least 3 — the paper notes "a
        large amount of nodes are usually required to be chosen as
        monitors").  Following the minimum-monitor-placement rule of Ma et
        al. [16] that the paper's experiments build on, every node of
        degree <= 2 is always made a monitor (a non-monitor leaf's link
        lies on no path; a non-monitor degree-2 node makes its two links
        inseparable), and the remaining budget is filled with random
        nodes.  Paths are chosen by the randomised rank-greedy selection
        with ``redundancy`` extra rows for detectability; ground-truth
        delays are uniform over ``delay_range`` (paper: 1-20 ms routine
        traffic).  ``pair_budget`` caps how many monitor pairs path
        enumeration searches (seeded sample) — the knob that keeps
        ISP-scale scenarios tractable.
        """
        generator = ensure_rng(rng)
        if monitors is None:
            if num_monitors is None:
                fraction = 0.3 if monitor_fraction is None else monitor_fraction
                num_monitors = max(3, int(round(fraction * topology.num_nodes)))
            num_monitors = min(num_monitors, topology.num_nodes)
            forced = [node for node in topology.nodes() if topology.degree(node) <= 2]
            others = [node for node in topology.nodes() if topology.degree(node) > 2]
            fill = max(num_monitors - len(forced), 3 - len(forced), 0)
            fill = min(fill, len(others))
            extra: list = []
            if fill:
                picks = generator.choice(len(others), size=fill, replace=False)
                extra = [others[int(i)] for i in picks]
            monitors = forced + extra
            if len(monitors) < 2:  # degenerate tiny graphs
                monitors = random_monitor_placement(
                    topology, min(3, topology.num_nodes), rng=generator
                )
        path_set = select_identifiable_paths(
            topology,
            monitors,
            redundancy=redundancy,
            max_per_pair=max_per_pair,
            pair_budget=pair_budget,
            rng=generator,
        )
        low, high = delay_range
        metrics = uniform_delay_metrics(topology, low, high, rng=generator)
        return cls(
            topology=topology,
            monitors=tuple(monitors),
            path_set=path_set,
            true_metrics=metrics,
            thresholds=thresholds if thresholds is not None else StateThresholds(),
            cap=cap,
            margin=margin,
            name=name or topology.name,
        )

    # ------------------------------------------------------------------
    # derived objects
    # ------------------------------------------------------------------
    def attack_context(
        self, attacker_nodes: Iterable[NodeId], *, system=None, estimator=None
    ) -> AttackContext:
        """An :class:`AttackContext` for the given attacker set.

        ``system`` optionally injects a pre-factorised
        :class:`~repro.tomography.linear_system.LinearSystem` over this
        scenario's routing matrix (see the sweep engine's factorization
        cache); omitted, the context factorises its own.  ``estimator``
        selects the defender's inversion family (zoo name, built
        estimator, or None = the ``REPRO_ESTIMATOR`` knob).
        """
        return AttackContext(
            self.path_set,
            self.true_metrics,
            attacker_nodes,
            thresholds=self.thresholds,
            cap=self.cap,
            margin=self.margin,
            system=system,
            estimator=estimator,
        )

    def engine(self, noise_model=None) -> AnalyticMeasurementEngine:
        """The analytic measurement engine for this scenario."""
        return AnalyticMeasurementEngine(self.path_set, noise_model=noise_model)

    def simulator(self, *, agents=None, jitter=None) -> NetworkSimulator:
        """A packet-level simulator over this scenario's ground truth."""
        return NetworkSimulator(
            self.topology, self.true_metrics, agents=agents or {}, jitter=jitter
        )

    def auditor(
        self, alpha: float = 200.0, *, system=None, estimator=None
    ) -> TomographyAuditor:
        """The operator's audited-tomography pipeline.

        ``system`` optionally shares a pre-factorised kernel with the
        detector (same contract as :meth:`attack_context`); ``estimator``
        selects the inversion family the audit runs (zoo name, built
        estimator, or None = the ``REPRO_ESTIMATOR`` knob).
        """
        return TomographyAuditor(
            self.path_set,
            thresholds=self.thresholds,
            alpha=alpha,
            system=system,
            estimator=estimator,
        )

    def honest_measurements(self) -> np.ndarray:
        """Noiseless honest measurement vector ``y = R x*``."""
        return self.path_set.routing_matrix() @ self.true_metrics

    def describe(self) -> dict:
        """Flat description for logs and EXPERIMENTS.md."""
        return {
            "name": self.name,
            "nodes": self.topology.num_nodes,
            "links": self.topology.num_links,
            "monitors": len(self.monitors),
            "paths": self.path_set.num_paths,
            "cap": self.cap,
            "thresholds": (self.thresholds.lower, self.thresholds.upper),
        }
