"""Scenario serialization: freeze an experiment setting to JSON.

A :class:`~repro.scenarios.scenario.Scenario` pins everything a result
depends on — topology, monitors, the exact measurement paths, the ground
truth metrics, thresholds, cap and margin.  Freezing it to a JSON document
makes experiments portable and re-runnable bit-for-bit (the RNG seeds in
the drivers cover the rest).  Node labels follow the topology
serializer's conventions (tuples are tagged and restored as tuples).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.exceptions import SerializationError
from repro.metrics.states import StateThresholds
from repro.routing.paths import PathSet
from repro.scenarios.scenario import Scenario
from repro.topology.serialization import (
    _decode_label,
    _encode_label,
    topology_from_json,
    topology_to_json,
)

__all__ = ["scenario_to_json", "scenario_from_json", "save_scenario", "load_scenario"]

_FORMAT_VERSION = 1


def scenario_to_json(scenario: Scenario) -> str:
    """Serialize ``scenario`` to a JSON string."""
    doc = {
        "format": "repro-scenario",
        "version": _FORMAT_VERSION,
        "name": scenario.name,
        "topology": json.loads(topology_to_json(scenario.topology)),
        "monitors": [_encode_label(m) for m in scenario.monitors],
        "paths": [
            [_encode_label(node) for node in path.nodes]
            for path in scenario.path_set
        ],
        "true_metrics": [float(v) for v in scenario.true_metrics],
        "thresholds": {
            "lower": scenario.thresholds.lower,
            "upper": scenario.thresholds.upper,
        },
        "cap": scenario.cap,
        "margin": scenario.margin,
    }
    return json.dumps(doc, indent=2)


def scenario_from_json(text: str) -> Scenario:
    """Parse a scenario from :func:`scenario_to_json` output."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid scenario JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-scenario":
        raise SerializationError("not a repro-scenario JSON document")
    if doc.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported scenario format version {doc.get('version')!r}"
        )
    topology = topology_from_json(json.dumps(doc["topology"]))
    try:
        path_set = PathSet.from_node_sequences(
            topology,
            [[_decode_label(n) for n in nodes] for nodes in doc["paths"]],
        )
        thresholds = StateThresholds(
            lower=float(doc["thresholds"]["lower"]),
            upper=float(doc["thresholds"]["upper"]),
        )
        return Scenario(
            topology=topology,
            monitors=tuple(_decode_label(m) for m in doc["monitors"]),
            path_set=path_set,
            true_metrics=np.asarray(doc["true_metrics"], dtype=float),
            thresholds=thresholds,
            cap=doc["cap"],
            margin=float(doc["margin"]),
            name=doc.get("name", ""),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed scenario document: {exc}") from exc


def save_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write ``scenario`` to a JSON file."""
    Path(path).write_text(scenario_to_json(scenario))


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario written by :func:`save_scenario`."""
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise SerializationError(f"cannot read scenario file {file_path}: {exc}") from exc
    return scenario_from_json(text)
