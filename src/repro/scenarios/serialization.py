"""Scenario serialization: freeze an experiment setting to JSON.

A :class:`~repro.scenarios.scenario.Scenario` pins everything a result
depends on — topology, monitors, the exact measurement paths, the ground
truth metrics, thresholds, cap and margin.  Freezing it to a JSON document
makes experiments portable and re-runnable bit-for-bit (the RNG seeds in
the drivers cover the rest).  Node labels follow the topology
serializer's conventions (tuples are tagged and restored as tuples).

Documents are *strict* JSON: non-finite numbers (an infinite cap, a NaN
metric) are encoded as the string sentinels ``"Infinity"`` /
``"-Infinity"`` / ``"NaN"`` rather than Python's non-standard bare
``Infinity``/``NaN`` tokens, which strict parsers (and most other
languages) reject.  Loading accepts both forms, so documents written by
older builds still parse.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

import numpy as np

from repro.exceptions import SerializationError
from repro.metrics.states import StateThresholds
from repro.routing.paths import PathSet
from repro.scenarios.scenario import Scenario
from repro.topology.serialization import (
    _decode_label,
    _encode_label,
    topology_from_json,
    topology_to_json,
)

__all__ = ["scenario_to_json", "scenario_from_json", "save_scenario", "load_scenario"]

_FORMAT_VERSION = 1

#: Strict-JSON sentinels for the non-finite floats ``json.dumps`` would
#: otherwise emit as unparseable bare tokens.
_NONFINITE_ENCODE = {math.inf: "Infinity", -math.inf: "-Infinity"}
_NONFINITE_DECODE = {
    "Infinity": math.inf,
    "-Infinity": -math.inf,
    "NaN": math.nan,
    # Common aliases other tools emit.
    "inf": math.inf,
    "-inf": -math.inf,
    "nan": math.nan,
}


def _encode_float(value: float | None) -> float | str | None:
    """A float as a strict-JSON value (string sentinel when non-finite)."""
    if value is None:
        return None
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return _NONFINITE_ENCODE[value]
    return value


def _decode_float(encoded: object) -> float | None:
    """Inverse of :func:`_encode_float`; also accepts legacy bare numbers."""
    if encoded is None:
        return None
    if isinstance(encoded, str):
        try:
            return _NONFINITE_DECODE[encoded]
        except KeyError:
            raise SerializationError(
                f"unrecognised numeric sentinel {encoded!r}"
            ) from None
    return float(encoded)


def scenario_to_json(scenario: Scenario) -> str:
    """Serialize ``scenario`` to a strict-JSON string."""
    doc = {
        "format": "repro-scenario",
        "version": _FORMAT_VERSION,
        "name": scenario.name,
        "topology": json.loads(topology_to_json(scenario.topology)),
        "monitors": [_encode_label(m) for m in scenario.monitors],
        "paths": [
            [_encode_label(node) for node in path.nodes]
            for path in scenario.path_set
        ],
        "true_metrics": [_encode_float(v) for v in scenario.true_metrics],
        "thresholds": {
            "lower": _encode_float(scenario.thresholds.lower),
            "upper": _encode_float(scenario.thresholds.upper),
        },
        "cap": _encode_float(scenario.cap),
        "margin": _encode_float(scenario.margin),
    }
    try:
        return json.dumps(doc, indent=2, allow_nan=False)
    except ValueError as exc:  # a non-finite float escaped the encoders
        raise SerializationError(
            f"scenario contains a non-encodable numeric value: {exc}"
        ) from exc


def scenario_from_json(text: str) -> Scenario:
    """Parse a scenario from :func:`scenario_to_json` output."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid scenario JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("format") != "repro-scenario":
        raise SerializationError("not a repro-scenario JSON document")
    if doc.get("version") != _FORMAT_VERSION:
        raise SerializationError(
            f"unsupported scenario format version {doc.get('version')!r}"
        )
    topology = topology_from_json(json.dumps(doc["topology"]))
    try:
        path_set = PathSet.from_node_sequences(
            topology,
            [[_decode_label(n) for n in nodes] for nodes in doc["paths"]],
        )
        thresholds = StateThresholds(
            lower=_decode_float(doc["thresholds"]["lower"]),
            upper=_decode_float(doc["thresholds"]["upper"]),
        )
        return Scenario(
            topology=topology,
            monitors=tuple(_decode_label(m) for m in doc["monitors"]),
            path_set=path_set,
            true_metrics=np.asarray(
                [_decode_float(v) for v in doc["true_metrics"]], dtype=float
            ),
            thresholds=thresholds,
            cap=_decode_float(doc["cap"]),
            margin=_decode_float(doc["margin"]),
            name=doc.get("name", ""),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed scenario document: {exc}") from exc


def save_scenario(scenario: Scenario, path: str | Path) -> None:
    """Write ``scenario`` to a JSON file."""
    Path(path).write_text(scenario_to_json(scenario))


def load_scenario(path: str | Path) -> Scenario:
    """Read a scenario written by :func:`save_scenario`."""
    file_path = Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise SerializationError(f"cannot read scenario file {file_path}: {exc}") from exc
    return scenario_from_json(text)
