"""Defence-side experiments: robust estimation and hardened path selection.

Two drivers quantify the library's defensive extensions:

- :func:`robust_recovery_experiment` — how well trimmed least squares
  (:class:`~repro.detection.robust.TrimmedLeastSquares`) recovers the true
  link metrics as the number of tampered measurement rows grows, compared
  to the paper's plain least squares.  Recovery is possible while the
  redundancy exceeds the tampering; beyond that the trimmer reports
  failure instead of guessing.
- :func:`path_selection_defense_experiment` — does presence-aware path
  selection (:func:`~repro.routing.selection.select_paths_min_presence`)
  actually reduce single-attacker scapegoating success, as Theorem 2's
  coverage argument predicts?
"""

from __future__ import annotations

import numpy as np

from repro.attacks.max_damage import MaxDamageAttack
from repro.detection.robust import TrimmedLeastSquares
from repro.exceptions import ValidationError
from repro.metrics.link_metrics import uniform_delay_metrics
from repro.monitors.placement import max_node_presence_ratio
from repro.routing.selection import (
    select_identifiable_paths,
    select_paths_min_presence,
)
from repro.scenarios.montecarlo import run_trials
from repro.scenarios.scenario import Scenario
from repro.tomography.estimators import LeastSquaresEstimator

__all__ = ["robust_recovery_experiment", "path_selection_defense_experiment"]


def robust_recovery_experiment(
    scenario: Scenario,
    *,
    tamper_counts=(1, 2, 3, 5, 8),
    magnitude: float = 1000.0,
    num_trials: int = 20,
    residual_tolerance: float = 1.0,
    seed: object = 0,
) -> dict:
    """Estimation error of plain LS vs trimmed LS under row tampering.

    Each trial tampers ``k`` random measurement rows by up to
    ``magnitude`` and records both estimators' max absolute link-metric
    error plus whether the trimmer converged and found the tampered rows.
    Returns per-``k`` aggregates.
    """
    matrix = scenario.path_set.routing_matrix()
    ls = LeastSquaresEstimator(matrix, require_full_rank=False)
    tls = TrimmedLeastSquares(matrix, residual_tolerance=residual_tolerance)
    honest = scenario.honest_measurements()
    rows = []
    for k in tamper_counts:
        if not 0 < k <= matrix.shape[0]:
            raise ValidationError(f"tamper count {k} out of range")

        def trial(rng: np.random.Generator, k=k) -> dict:
            tampered = rng.choice(matrix.shape[0], size=k, replace=False)
            y = honest.copy()
            y[tampered] += rng.uniform(magnitude / 2, magnitude, size=k)
            ls_error = float(
                np.max(np.abs(ls.estimate(y) - scenario.true_metrics))
            )
            robust = tls.estimate(y)
            robust_error = float(
                np.max(np.abs(robust.estimate - scenario.true_metrics))
            )
            return {
                "ls_error": ls_error,
                "robust_error": robust_error,
                "converged": robust.converged,
                "found_all": set(tampered) <= set(robust.excluded_paths),
            }

        results = run_trials(num_trials, trial, seed=(seed, k).__hash__() & 0x7FFFFFFF)
        rows.append(
            {
                "tampered_rows": k,
                "ls_error": float(np.mean([r["ls_error"] for r in results])),
                "robust_error": float(np.mean([r["robust_error"] for r in results])),
                "converged_rate": float(np.mean([r["converged"] for r in results])),
                "found_all_rate": float(np.mean([r["found_all"] for r in results])),
            }
        )
    return {"scenario": scenario.describe(), "rows": rows, "magnitude": magnitude}


def path_selection_defense_experiment(
    topology,
    monitors,
    *,
    num_trials: int = 30,
    redundancy: int = 3,
    seed: object = 0,
) -> dict:
    """Single-attacker success under plain vs presence-aware path selection.

    Builds two scenarios over the same topology / monitors / ground truth,
    differing only in path selection, and measures the confined
    max-damage success rate of a random single attacker plus the worst
    node presence ratio.  Returns one record per selection strategy.
    """
    selections = {
        "rank-greedy": select_identifiable_paths(
            topology, monitors, redundancy=redundancy, rng=seed
        ),
        "min-presence": select_paths_min_presence(
            topology, monitors, redundancy=redundancy, rng=seed
        ),
    }
    metrics = uniform_delay_metrics(topology, rng=seed)
    records = []
    for label, path_set in selections.items():
        scenario = Scenario(
            topology=topology,
            monitors=tuple(monitors),
            path_set=path_set,
            true_metrics=metrics,
            name=f"path-defense-{label}",
        )

        def trial(rng: np.random.Generator) -> dict:
            nodes = topology.nodes()
            attacker = nodes[int(rng.integers(len(nodes)))]
            context = scenario.attack_context([attacker])
            outcome = MaxDamageAttack(
                context, stop_at_first_feasible=True, confined=True
            ).run()
            return {"success": outcome.feasible}

        results = run_trials(num_trials, trial, seed=seed)
        records.append(
            {
                "selection": label,
                "paths": path_set.num_paths,
                "max_presence": max_node_presence_ratio(path_set),
                "attack_success": float(np.mean([r["success"] for r in results])),
            }
        )
    return {"records": records, "num_trials": num_trials}
