"""Sensitivity of attack planning to the attacker's knowledge of `x*`.

The strategy LPs assume the attacker knows the routine link metrics well
enough to plan (the paper makes the same implicit assumption by computing
`m` against ground truth).  In practice an attacker observes its own links
and estimates the rest.  This driver quantifies the assumption: the attack
is *planned* against a perturbed belief ``x* + noise`` but *executed*
against reality, and success is judged on the realised estimate —
victims actually abnormal, attacker links actually normal.

The headline finding: LP optima hug the band boundaries (attacker links
planned at exactly ``b_l - margin``), so the *margin* — not the distance
of routine metrics from the bands — is what absorbs knowledge error.
With the paper-faithful 1 ms margin, a couple of ms of belief error
already breaks the realised attack; planning with a generous margin buys
robustness at a modest damage cost.  The bench sweeps both.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackContext
from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.exceptions import ValidationError
from repro.metrics.states import LinkState
from repro.scenarios.montecarlo import run_trials
from repro.scenarios.scenario import Scenario
from repro.tomography.diagnosis import diagnose
from repro.tomography.linear_system import estimator_operator

__all__ = ["knowledge_sensitivity_experiment"]


def knowledge_sensitivity_experiment(
    scenario: Scenario,
    attacker_nodes,
    victim_links,
    *,
    knowledge_sigmas=(0.0, 2.0, 5.0, 10.0, 20.0, 50.0),
    num_trials: int = 20,
    mode: str = "exclusive",
    margin: float | None = None,
    seed: object = 0,
) -> dict:
    """Realised attack success vs the attacker's knowledge error.

    For each noise level ``sigma``, every trial perturbs the attacker's
    belief about the routine metrics by ``N(0, sigma)`` (clipped at zero),
    plans the chosen-victim attack against the belief, executes the
    resulting ``m`` against the *true* network, and scores:

    - ``planned``: the LP was feasible under the belief;
    - ``realised``: the true resulting estimate flags every victim
      abnormal *and* every attacker link normal (the attack actually
      worked as intended).

    ``margin`` overrides the scenario's planning margin — the attacker's
    robustness budget against its own knowledge error.

    Returns per-sigma aggregates.
    """
    planning_margin = scenario.margin if margin is None else float(margin)
    victims = tuple(sorted(set(int(v) for v in victim_links)))
    matrix = scenario.path_set.routing_matrix()
    operator = estimator_operator(matrix)
    honest = matrix @ scenario.true_metrics
    rows = []
    for sigma in knowledge_sigmas:
        if sigma < 0:
            raise ValidationError(f"sigma must be >= 0, got {sigma}")

        def trial(rng: np.random.Generator, sigma=sigma) -> dict:
            belief = np.maximum(
                scenario.true_metrics + rng.normal(0.0, sigma, scenario.true_metrics.shape),
                0.0,
            )
            context = AttackContext(
                scenario.path_set,
                belief,
                attacker_nodes,
                thresholds=scenario.thresholds,
                cap=scenario.cap,
                margin=planning_margin,
            )
            outcome = ChosenVictimAttack(context, victims, mode=mode).run()
            if not outcome.feasible:
                return {"planned": False, "realised": False}
            realised_estimate = operator @ (honest + outcome.manipulation)
            report = diagnose(realised_estimate, scenario.thresholds)
            ok = all(report.state_of(v) is LinkState.ABNORMAL for v in victims) and all(
                report.state_of(j) is LinkState.NORMAL
                for j in context.controlled_links
            )
            return {"planned": True, "realised": bool(ok)}

        results = run_trials(num_trials, trial, seed=(seed, round(sigma * 1000)).__hash__() & 0x7FFFFFFF)
        rows.append(
            {
                "sigma": float(sigma),
                "planned_rate": float(np.mean([r["planned"] for r in results])),
                "realised_rate": float(np.mean([r["realised"] for r in results])),
            }
        )
    return {
        "scenario": scenario.describe(),
        "victims": list(victims),
        "margin": planning_margin,
        "rows": rows,
    }
