"""Timestepped measurement streams with per-epoch path churn.

:class:`~repro.scenarios.timeseries.MeasurementCampaign` repeats rounds
over a *fixed* path set; real networks churn — paths fail and recover
mid-campaign, the routing matrix gains and loses rows, and both sides
adapt.  This module adds the temporal layer over the incremental
tomography kernel:

- :class:`ChurnEvent` / :func:`random_churn_schedule` describe which
  paths fail and recover at each epoch (indices into the scenario's
  *base* path set, so a path that recovers is the same physical path
  that failed);
- :class:`StreamingCampaign` drives an
  :class:`~repro.detection.online.OnlineConsistencyDetector` through the
  schedule: every epoch applies the churn through
  :meth:`LinearSystem.evolve` (rank-1 factor patches, certified cold
  fallback), measures the live paths, and runs the consistency check;
- the attacker *re-plans*: whenever churn changes the set of live paths
  it can manipulate, the manipulation vector is recomputed over the
  current system (default strategy: the naive per-path delay attack),
  then carried forward until the available support changes again.

The epoch results record which factorization path each churn event took
(``incremental``), so experiments can report the incremental hit rate
alongside detection latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Sequence

import numpy as np

from repro.attacks.base import AttackContext, AttackOutcome
from repro.attacks.constraints import manipulable_paths
from repro.attacks.naive import NaiveDelayAttack
from repro.detection.consistency import DetectionResult
from repro.detection.online import OnlineConsistencyDetector
from repro.exceptions import ValidationError
from repro.routing.paths import PathSet
from repro.scenarios.scenario import Scenario
from repro.tomography.linear_system import LinearSystem
from repro.utils.rng import ensure_rng

__all__ = [
    "ChurnEvent",
    "EpochResult",
    "StreamResult",
    "StreamingCampaign",
    "random_churn_schedule",
]


@dataclass(frozen=True)
class ChurnEvent:
    """Path churn at one epoch: base-path indices that fail / recover."""

    fail: tuple[int, ...] = ()
    recover: tuple[int, ...] = ()

    @property
    def churns(self) -> bool:
        """True when this event changes the live path set at all."""
        return bool(self.fail or self.recover)


def random_churn_schedule(
    num_paths: int,
    num_epochs: int,
    *,
    churn_rate: float = 0.05,
    recover_rate: float = 0.5,
    min_live: int = 2,
    rng: object = None,
) -> tuple[ChurnEvent, ...]:
    """A random fail/recover schedule over ``num_paths`` base paths.

    Each epoch, every live path fails independently with probability
    ``churn_rate`` (but never below ``min_live`` live paths) and every
    failed path recovers with probability ``recover_rate`` — the
    mark-down/mark-up workload of adaptive path selection.  Deterministic
    under a seeded ``rng``.
    """
    if num_paths < 1 or num_epochs < 1:
        raise ValidationError(
            f"need num_paths >= 1 and num_epochs >= 1, got {num_paths}, {num_epochs}"
        )
    if not 0.0 <= churn_rate <= 1.0 or not 0.0 <= recover_rate <= 1.0:
        raise ValidationError("churn_rate and recover_rate must lie in [0, 1]")
    if not 1 <= min_live <= num_paths:
        raise ValidationError(
            f"min_live must lie in [1, {num_paths}], got {min_live}"
        )
    generator = ensure_rng(rng)
    live = set(range(num_paths))
    down: set[int] = set()
    schedule: list[ChurnEvent] = []
    for _ in range(num_epochs):
        fail: list[int] = []
        for index in sorted(live):
            if len(live) - len(fail) <= min_live:
                break
            if generator.random() < churn_rate:
                fail.append(index)
        recover = [
            index for index in sorted(down) if generator.random() < recover_rate
        ]
        live.difference_update(fail)
        live.update(recover)
        down.difference_update(recover)
        down.update(fail)
        schedule.append(ChurnEvent(fail=tuple(fail), recover=tuple(recover)))
    return tuple(schedule)


@dataclass(frozen=True)
class EpochResult:
    """One epoch of a streaming campaign.

    ``live_paths`` are base-path indices in current row order;
    ``incremental`` records whether this epoch's churn was absorbed by a
    rank-1 factor patch (``None`` = no churn, nothing to patch);
    ``replanned`` flags epochs where the attacker recomputed its
    manipulation because its available support changed.
    """

    epoch: int
    live_paths: tuple[int, ...]
    attacked: bool
    replanned: bool
    incremental: bool | None
    observed: np.ndarray
    detection: DetectionResult

    @property
    def detected(self) -> bool:
        return self.detection.detected


@dataclass(frozen=True)
class StreamResult:
    """Aggregated outcome of a streaming campaign."""

    epochs: tuple[EpochResult, ...] = field(default_factory=tuple)

    @property
    def num_epochs(self) -> int:
        return len(self.epochs)

    @property
    def attacked_epochs(self) -> tuple[int, ...]:
        return tuple(e.epoch for e in self.epochs if e.attacked)

    @property
    def detected_epochs(self) -> tuple[int, ...]:
        return tuple(e.epoch for e in self.epochs if e.detected)

    @property
    def false_alarm_epochs(self) -> tuple[int, ...]:
        """Detector firings in epochs with no active manipulation."""
        return tuple(e.epoch for e in self.epochs if e.detected and not e.attacked)

    @property
    def replan_count(self) -> int:
        """How many times churn forced the attacker to re-plan."""
        return sum(1 for e in self.epochs if e.replanned)

    def detection_latency(self) -> int | None:
        """Attacked epochs elapsed before the first detection (None = never)."""
        elapsed = 0
        for epoch in self.epochs:
            if not epoch.attacked:
                continue
            if epoch.detected:
                return elapsed
            elapsed += 1
        return None

    def incremental_fraction(self) -> float | None:
        """Share of churn epochs absorbed by rank-1 factor patches.

        ``None`` when the schedule never churned (nothing to measure).
        """
        churned = [e for e in self.epochs if e.incremental is not None]
        if not churned:
            return None
        return sum(1 for e in churned if e.incremental) / len(churned)


class StreamingCampaign:
    """Drive an online detector and a re-planning attacker through churn.

    Parameters
    ----------
    scenario:
        The tomography setting; its path set defines the *base* paths
        that churn events index.
    attacker_nodes:
        Nodes the attacker controls (empty = honest stream).
    alpha:
        Online consistency threshold (paper: 200 ms).
    noise_model:
        Optional per-path noise ``model(rng, size) -> ndarray`` applied
        to every epoch's live measurements.
    attack_factory:
        ``factory(context) -> AttackOutcome`` re-planning the
        manipulation over the current live paths; defaults to the naive
        per-path delay attack.  Called only when the attacker's
        available support changes.
    backend:
        Backend pin for the evolving system (None = auto dispatch).
    estimator:
        Estimator-zoo name for the defender's inversion (None = the
        ``REPRO_ESTIMATOR`` knob).
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        attacker_nodes: Iterable = (),
        alpha: float = 200.0,
        noise_model=None,
        attack_factory=None,
        backend: str | None = None,
        estimator: str | None = None,
    ) -> None:
        self.scenario = scenario
        self.attacker_nodes = tuple(attacker_nodes)
        self.noise_model = noise_model
        self.attack_factory = attack_factory or (
            lambda context: NaiveDelayAttack(context).run()
        )
        self._base_matrix = scenario.path_set.routing_matrix()
        if self._base_matrix.shape[0] == 0:
            raise ValidationError("scenario has no measurement paths to stream")
        self._backend = backend
        self.detector = OnlineConsistencyDetector(
            LinearSystem(self._base_matrix, backend=backend),
            alpha,
            estimator=estimator,
        )
        self._base_support = (
            frozenset(manipulable_paths(scenario.path_set, self.attacker_nodes))
            if self.attacker_nodes
            else frozenset()
        )

    def _replan(self, live: list[int]) -> dict[int, float]:
        """Recompute the manipulation over the current live paths.

        Builds an attack context over the live sub-path-set, injecting
        the detector's evolved system so the attacker's view of the
        estimator shares the patched factors.  Returns the manipulation
        as a base-index -> delay map (empty when infeasible).
        """
        scenario = self.scenario
        live_paths = PathSet(
            scenario.topology, (scenario.path_set.path(b) for b in live)
        )
        context = AttackContext(
            live_paths,
            scenario.true_metrics,
            self.attacker_nodes,
            thresholds=scenario.thresholds,
            cap=scenario.cap,
            margin=scenario.margin,
            system=self.detector.system,
        )
        outcome: AttackOutcome = self.attack_factory(context)
        if not outcome.feasible or outcome.manipulation is None:
            return {}
        manipulation = np.asarray(outcome.manipulation, dtype=float)
        return {
            live[i]: float(manipulation[i])
            for i in np.flatnonzero(manipulation)
        }

    def run(
        self,
        schedule: Sequence[ChurnEvent],
        *,
        active_epochs: Iterable[int] | float | None = None,
        rng: object = None,
    ) -> StreamResult:
        """Stream one epoch per churn event and aggregate the results.

        ``active_epochs`` selects when the attacker manipulates (same
        contract as
        :meth:`~repro.scenarios.timeseries.MeasurementCampaign.run`):
        an iterable of epoch indices, a float activity probability, or
        ``None`` for every epoch when attacker nodes were given.
        """
        schedule = tuple(schedule)
        num_epochs = len(schedule)
        if num_epochs == 0:
            raise ValidationError("schedule must contain at least one epoch")
        generator = ensure_rng(rng)

        if not self.attacker_nodes:
            active = set()
        elif active_epochs is None:
            active = set(range(num_epochs))
        elif isinstance(active_epochs, float):
            if not 0.0 < active_epochs <= 1.0:
                raise ValidationError(
                    f"activity probability must be in (0, 1], got {active_epochs}"
                )
            active = {
                i for i in range(num_epochs) if generator.random() < active_epochs
            }
        else:
            active = set(int(i) for i in active_epochs)
            out_of_range = [i for i in active if not 0 <= i < num_epochs]
            if out_of_range:
                raise ValidationError(
                    f"active epoch {out_of_range[0]} outside [0, {num_epochs})"
                )

        live = list(range(self._base_matrix.shape[0]))
        plan: dict[int, float] = {}
        planned_support: frozenset | None = None
        epochs: list[EpochResult] = []
        true_metrics = self.scenario.true_metrics
        for epoch, event in enumerate(schedule):
            incremental: bool | None = None
            if event.churns:
                live = self._apply_churn(live, event)
                incremental = self.detector.system.evolved_incrementally
            else:
                self.detector.advance()

            attacked = epoch in active
            replanned = False
            manipulation = np.zeros(len(live))
            if attacked:
                live_support = frozenset(b for b in live if b in self._base_support)
                if live_support != planned_support:
                    plan = self._replan(live)
                    planned_support = live_support
                    replanned = True
                for position, base_index in enumerate(live):
                    manipulation[position] = plan.get(base_index, 0.0)
                attacked = bool(np.any(manipulation))

            observed = self.detector.system.predict(true_metrics)
            if self.noise_model is not None:
                observed = observed + self.noise_model(generator, len(live))
            if attacked:
                observed = observed + manipulation
            detection = self.detector.check(observed)
            epochs.append(
                EpochResult(
                    epoch=epoch,
                    live_paths=tuple(live),
                    attacked=attacked,
                    replanned=replanned,
                    incremental=incremental,
                    observed=observed,
                    detection=detection,
                )
            )
        return StreamResult(epochs=tuple(epochs))

    def _apply_churn(self, live: list[int], event: ChurnEvent) -> list[int]:
        """Advance the detector through one churn event; returns new live order.

        ``event`` indexes base paths; the detector's system is indexed by
        current row position, so failures are translated through the live
        order and recoveries append their base routing-matrix rows.
        """
        position_of = {base: pos for pos, base in enumerate(live)}
        removals = []
        for base in event.fail:
            if base not in position_of:
                raise ValidationError(f"churn event fails path {base}, which is not live")
            removals.append(position_of[base])
        live_set = set(live)
        rows = []
        for base in event.recover:
            if base in live_set:
                raise ValidationError(f"churn event recovers path {base}, which is live")
            if not 0 <= base < self._base_matrix.shape[0]:
                raise ValidationError(f"churn event recovers unknown path {base}")
            rows.append(self._base_matrix[base])
        self.detector.advance(add_rows=rows, remove_indices=removals)
        failed = set(event.fail)
        return [b for b in live if b not in failed] + list(event.recover)
