"""Measurement-noise models.

The paper's simulations are noiseless (Remark 4 notes real measurements are
not, motivating the detector threshold ``alpha``).  These models let
experiments and ablation benches inject controlled per-path noise:
each model is a callable ``model(rng, size) -> ndarray``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["NoNoise", "GaussianNoise", "UniformNoise"]


@dataclass(frozen=True)
class NoNoise:
    """The noiseless model: always returns zeros."""

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.zeros(size)


@dataclass(frozen=True)
class GaussianNoise:
    """Zero-mean Gaussian per-path noise with standard deviation ``sigma``.

    Samples are truncated below at ``-truncate_at`` to keep measured delays
    from going negative in realistic regimes (delays cannot be sped up;
    the attacker constraint ``m >= 0`` has the same physical root).
    """

    sigma: float
    truncate_at: float = float("inf")

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValidationError(f"sigma must be non-negative, got {self.sigma}")

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        draw = rng.normal(0.0, self.sigma, size=size)
        if np.isfinite(self.truncate_at):
            draw = np.maximum(draw, -abs(self.truncate_at))
        return draw


@dataclass(frozen=True)
class UniformNoise:
    """Uniform per-path noise on ``[low, high]`` (jitter-style, can be one-sided)."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ValidationError(f"need low <= high, got [{self.low}, {self.high}]")

    def __call__(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)
