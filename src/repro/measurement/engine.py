"""Analytic measurement engine.

Evaluates the linear measurement model of eq. (1)/(3) directly:

    y' = R x + noise + m

where ``x`` is the ground-truth link metric vector, ``noise`` is drawn from
a per-path noise model (zero by default), and ``m`` is an optional attack
manipulation vector (Constraint 1 is the *attacker's* obligation; the
engine validates only shape and sign so tests can also exercise dishonest
vectors).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MeasurementError
from repro.measurement.noise import NoNoise
from repro.routing.paths import PathSet
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_finite_vector

__all__ = ["AnalyticMeasurementEngine"]


class AnalyticMeasurementEngine:
    """Computes path measurements from link metrics via ``y = R x``.

    Parameters
    ----------
    path_set:
        The measurement paths; the routing matrix is cached.
    noise_model:
        Callable ``(rng, size) -> ndarray`` adding per-path measurement
        noise.  Defaults to :class:`~repro.measurement.noise.NoNoise`.

    >>> from repro.topology import paper_example_network
    >>> from repro.routing import MeasurementPath, PathSet
    >>> import numpy as np
    >>> topo = paper_example_network()
    >>> ps = PathSet(topo, [MeasurementPath(topo, ["M1", "A", "C", "M2"])])
    >>> engine = AnalyticMeasurementEngine(ps)
    >>> x = np.arange(topo.num_links, dtype=float)
    >>> float(engine.measure(x)[0]) == float(x[0] + x[3] + x[7])
    True
    """

    def __init__(self, path_set: PathSet, noise_model=None) -> None:
        self.path_set = path_set
        self.noise_model = noise_model if noise_model is not None else NoNoise()
        self._matrix = path_set.routing_matrix()

    @property
    def routing_matrix(self) -> np.ndarray:
        """A copy of the cached routing matrix ``R``."""
        return self._matrix.copy()

    def measure(
        self,
        link_metrics: np.ndarray,
        *,
        manipulation: np.ndarray | None = None,
        num_probes: int = 1,
        rng: object = None,
    ) -> np.ndarray:
        """One measurement round; returns the observed vector ``y'``.

        ``num_probes`` averages that many independent noise draws per path
        (the noiseless model is unaffected), mirroring how monitors send
        several probes and average.  ``manipulation`` is added after the
        noise, exactly as eq. (3) composes ``y' = y + m``.
        """
        if num_probes < 1:
            raise MeasurementError(f"num_probes must be >= 1, got {num_probes}")
        x = check_finite_vector(
            link_metrics, "link_metrics", length=self._matrix.shape[1]
        )
        generator = ensure_rng(rng)
        y = self._matrix @ x
        noise_total = np.zeros(self._matrix.shape[0])
        for _ in range(num_probes):
            noise_total += self.noise_model(generator, self._matrix.shape[0])
        y = y + noise_total / num_probes
        if manipulation is not None:
            m = check_finite_vector(
                manipulation, "manipulation", length=self._matrix.shape[0]
            )
            y = y + m
        return y
