"""Loss-domain measurement helpers.

The paper's additive-metric model covers packet loss via the logarithmic
transform (Section II-A, Remark 2): with per-link delivery ratio ``d_j``,
the additive link metric is ``-log d_j`` and a path's metric is the sum.
This module converts between the three representations involved:

- per-path *delivery ratios* measured by probing (the simulator's
  :meth:`MeasurementRecord.delivery_ratio_vector`),
- per-path *log metrics* (what tomography inverts), and
- per-path *attack manipulations*: adding ``m_i`` to path ``i``'s log
  metric is exactly dropping each of its probes independently with
  probability ``1 - exp(-m_i)``.

That last equivalence is what lets the same LP solutions drive a
delay-based attack (hold packets) or a loss-based attack (drop packets).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MeasurementError
from repro.metrics.states import StateThresholds

__all__ = [
    "delivery_to_log_measurements",
    "log_measurements_to_delivery",
    "manipulation_to_drop_probabilities",
    "drop_probabilities_to_manipulation",
    "loss_thresholds",
]


def delivery_to_log_measurements(
    delivery_ratios: np.ndarray, *, floor: float = 1e-6
) -> np.ndarray:
    """Per-path delivery ratios -> the additive log-metric vector ``y``.

    Ratios are clipped below at ``floor`` so a fully dead path (ratio 0,
    e.g. every probe dropped in a finite sample) maps to a large finite
    metric instead of infinity; the operator treats such paths as
    maximally bad rather than crashing the estimator.
    """
    ratios = np.asarray(delivery_ratios, dtype=float)
    if np.any(ratios < 0.0) or np.any(ratios > 1.0):
        raise MeasurementError("delivery ratios must lie in [0, 1]")
    if not 0.0 < floor <= 1.0:
        raise MeasurementError(f"floor must be in (0, 1], got {floor}")
    return -np.log(np.maximum(ratios, floor))


def log_measurements_to_delivery(log_metrics: np.ndarray) -> np.ndarray:
    """Inverse transform (for reporting): ``y -> exp(-y)``."""
    values = np.asarray(log_metrics, dtype=float)
    if np.any(values < -1e-9):
        raise MeasurementError("log-domain measurements must be non-negative")
    return np.exp(-np.maximum(values, 0.0))


def manipulation_to_drop_probabilities(manipulation: np.ndarray) -> np.ndarray:
    """Per-path log-metric manipulation ``m`` -> per-probe drop probability.

    Dropping each probe of path ``i`` with probability ``1 - exp(-m_i)``
    multiplies the expected delivery ratio by ``exp(-m_i)``, i.e. adds
    ``m_i`` to the measured log metric — eq. (3) in the loss domain.
    """
    m = np.asarray(manipulation, dtype=float)
    if np.any(m < -1e-9):
        raise MeasurementError("manipulation must be non-negative (Constraint 1)")
    return 1.0 - np.exp(-np.maximum(m, 0.0))


def drop_probabilities_to_manipulation(drop_probabilities: np.ndarray) -> np.ndarray:
    """Inverse of :func:`manipulation_to_drop_probabilities`."""
    p = np.asarray(drop_probabilities, dtype=float)
    if np.any(p < 0.0) or np.any(p >= 1.0):
        raise MeasurementError("drop probabilities must lie in [0, 1)")
    return -np.log(1.0 - p)


def loss_thresholds(
    normal_delivery: float = 0.99, abnormal_delivery: float = 0.50
) -> StateThresholds:
    """Definition-1 thresholds expressed in the loss log domain.

    A link is *normal* when its delivery ratio exceeds ``normal_delivery``
    and *abnormal* below ``abnormal_delivery``; the returned thresholds
    operate on the ``-log`` metric, so ``lower = -log(normal_delivery)``
    and ``upper = -log(abnormal_delivery)``.
    """
    if not 0.0 < abnormal_delivery < normal_delivery <= 1.0:
        raise MeasurementError(
            "need 0 < abnormal_delivery < normal_delivery <= 1, got "
            f"{abnormal_delivery}, {normal_delivery}"
        )
    return StateThresholds(
        lower=float(-np.log(normal_delivery)),
        upper=float(-np.log(abnormal_delivery)),
    )
