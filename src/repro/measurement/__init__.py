"""End-to-end measurement engines.

Two backends produce the path-measurement vector ``y``:

- :class:`~repro.measurement.engine.AnalyticMeasurementEngine` — evaluates
  the paper's linear model ``y = R x (+ noise) (+ m)`` directly; used by the
  Monte-Carlo experiments where thousands of rounds are needed.
- :class:`~repro.measurement.simulator.NetworkSimulator` — a packet-level
  discrete-event simulator: probes are injected at monitors, traverse links
  with per-link delays, and malicious nodes intercept them according to a
  compiled attack plan.  Integration tests assert that both backends drive
  tomography to the same conclusions.
"""

from repro.measurement.engine import AnalyticMeasurementEngine
from repro.measurement.loss import (
    delivery_to_log_measurements,
    drop_probabilities_to_manipulation,
    log_measurements_to_delivery,
    loss_thresholds,
    manipulation_to_drop_probabilities,
)
from repro.measurement.noise import GaussianNoise, NoNoise, UniformNoise
from repro.measurement.simulator import (
    MeasurementRecord,
    NetworkSimulator,
    PathManipulationAgent,
)

__all__ = [
    "AnalyticMeasurementEngine",
    "delivery_to_log_measurements",
    "drop_probabilities_to_manipulation",
    "log_measurements_to_delivery",
    "loss_thresholds",
    "manipulation_to_drop_probabilities",
    "GaussianNoise",
    "NoNoise",
    "UniformNoise",
    "MeasurementRecord",
    "NetworkSimulator",
    "PathManipulationAgent",
]
