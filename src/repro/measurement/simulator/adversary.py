"""Adversary behaviour inside the packet simulator.

A malicious node's packet-level power is exactly what the paper's threat
model grants: it forwards every probe routed through it, but may *delay*
the probe or *drop* it, and can discriminate per measurement path (probes
are source-routed, so the path is visible to on-path nodes).  The
:class:`PathManipulationAgent` realises a per-path policy; attack planners
compile an LP solution ``m*`` into one agent per attacker node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["PathAction", "PathManipulationAgent"]


@dataclass(frozen=True)
class PathAction:
    """What an attacker does to probes of one path.

    ``extra_delay``: milliseconds added to each probe of the path (>= 0 —
    attackers can postpone forwarding but cannot make links faster).
    ``drop_probability``: probability each probe is silently dropped.
    """

    extra_delay: float = 0.0
    drop_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.extra_delay < 0:
            raise ValidationError(
                f"extra_delay must be non-negative, got {self.extra_delay}"
            )
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValidationError(
                f"drop_probability must be in [0, 1], got {self.drop_probability}"
            )


@dataclass
class PathManipulationAgent:
    """Per-path manipulation policy installed at one malicious node.

    ``actions`` maps a path index (row of the routing matrix) to the
    :class:`PathAction` applied when a probe of that path transits this
    node.  Paths absent from the mapping pass through untouched — the
    "cooperative on other paths" behaviour that makes scapegoating
    stealthy (Section II-C).
    """

    node: object
    actions: dict[int, PathAction] = field(default_factory=dict)

    def set_action(
        self, path_index: int, *, extra_delay: float = 0.0, drop_probability: float = 0.0
    ) -> None:
        """Install or replace the action for ``path_index``."""
        self.actions[int(path_index)] = PathAction(
            extra_delay=extra_delay, drop_probability=drop_probability
        )

    def on_probe(self, path_index: int, rng: np.random.Generator) -> tuple[float, bool]:
        """Decide the fate of one probe: ``(extra_delay, dropped)``."""
        action = self.actions.get(int(path_index))
        if action is None:
            return 0.0, False
        dropped = bool(action.drop_probability > 0.0 and rng.random() < action.drop_probability)
        return action.extra_delay, dropped

    def total_planned_delay(self) -> float:
        """Sum of configured per-path extra delays (diagnostics)."""
        return float(sum(action.extra_delay for action in self.actions.values()))
