"""Event queue for the discrete-event simulator.

A classic time-ordered priority queue.  Ties in simulated time break by
insertion order (FIFO), which keeps runs deterministic for a fixed RNG and
makes the simulator's behaviour reproducible in tests.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable

__all__ = ["EventQueue"]


class EventQueue:
    """Min-heap of ``(time, sequence, action)`` events.

    ``action`` is a zero-argument callable executed when the event fires.
    The queue never compares actions (the sequence number breaks time
    ties), so any callable works.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Simulated time of the most recently fired event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def is_empty(self) -> bool:
        """True when no events are pending."""
        return not self._heap

    def schedule(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at simulated ``time``.

        Scheduling in the past (before the last fired event) is a logic
        error in the caller and raises ``ValueError``.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        heapq.heappush(self._heap, (float(time), self._sequence, action))
        self._sequence += 1

    def run_next(self) -> float:
        """Fire the earliest event; returns its time."""
        if not self._heap:
            raise IndexError("event queue is empty")
        time, _, action = heapq.heappop(self._heap)
        self._now = time
        action()
        return time

    def run_until_empty(self, *, max_events: int | None = None) -> int:
        """Fire events until none remain; returns the number fired.

        ``max_events`` is a safety valve for tests: exceeding it raises
        ``RuntimeError`` (an unbounded event cascade is always a bug here —
        probes traverse finite paths).
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"exceeded max_events={max_events}; runaway event loop?")
            self.run_next()
            fired += 1
        return fired
