"""Packet-level discrete-event measurement simulator.

The paper models attacks at the level of the manipulation vector ``m``;
this substrate shows the same attacks as *packet behaviour*: source-routed
probe packets hop node to node, each link adds its ground-truth delay (plus
optional jitter), and malicious nodes intercept probes per-path to add
delay or drop them.  Averaged per-path probe delays become the observed
measurement vector ``y'`` that tomography inverts.
"""

from repro.measurement.simulator.events import EventQueue
from repro.measurement.simulator.adversary import PathManipulationAgent
from repro.measurement.simulator.network_sim import (
    MeasurementRecord,
    NetworkSimulator,
    Probe,
)

__all__ = [
    "EventQueue",
    "PathManipulationAgent",
    "MeasurementRecord",
    "NetworkSimulator",
    "Probe",
]
