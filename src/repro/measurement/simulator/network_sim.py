"""The packet-level network simulator.

Probes are injected at their path's source monitor, hop across links (each
adding the link's ground-truth delay plus optional jitter), transit
malicious nodes that may add per-path delay or drop the probe, and are
recorded on arrival at the destination monitor.  Per-path probe statistics
(mean delivered delay, delivery ratio) become the observed measurement
vector that tomography inverts.

The attacker hook fires when a probe *arrives at* a malicious node: an
interior attacker postpones *forwarding* (or silently drops the probe),
and a malicious *destination monitor* — monitors are not specially
protected in the paper's threat model — manipulates the measurement it
reports, recording the probe late or discarding it.  Both realise the same
per-path manipulation entry ``m_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import MeasurementError
from repro.measurement.simulator.adversary import PathManipulationAgent
from repro.measurement.simulator.events import EventQueue
from repro.routing.paths import PathSet
from repro.topology.graph import NodeId, Topology
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_nonnegative_vector

__all__ = ["Probe", "MeasurementRecord", "NetworkSimulator"]


@dataclass
class Probe:
    """One probe packet in flight."""

    path_index: int
    probe_number: int
    route: tuple[NodeId, ...]
    send_time: float
    hop: int = 0
    dropped: bool = False
    arrival_time: float | None = None

    @property
    def delivered(self) -> bool:
        """True once the probe reached its destination monitor."""
        return self.arrival_time is not None

    @property
    def end_to_end_delay(self) -> float:
        """Measured delay; raises when the probe was dropped or in flight."""
        if self.arrival_time is None:
            raise MeasurementError(
                f"probe {self.probe_number} on path {self.path_index} was not delivered"
            )
        return self.arrival_time - self.send_time


@dataclass
class MeasurementRecord:
    """Aggregated outcome of one simulated measurement round."""

    num_paths: int
    delays: list[list[float]] = field(default_factory=list)
    sent: list[int] = field(default_factory=list)
    delivered: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.delays:
            self.delays = [[] for _ in range(self.num_paths)]
            self.sent = [0] * self.num_paths
            self.delivered = [0] * self.num_paths

    def record_sent(self, path_index: int) -> None:
        self.sent[path_index] += 1

    def record_delivery(self, path_index: int, delay: float) -> None:
        self.delivered[path_index] += 1
        self.delays[path_index].append(delay)

    def path_delay_vector(self) -> np.ndarray:
        """Mean delivered delay per path — the observed ``y'``.

        Paths whose probes were all dropped yield ``inf`` (the operator
        sees a totally dead path, unambiguously alarming), so callers can
        detect and handle that case explicitly.
        """
        out = np.empty(self.num_paths)
        for i, samples in enumerate(self.delays):
            out[i] = float(np.mean(samples)) if samples else float("inf")
        return out

    def delivery_ratio_vector(self) -> np.ndarray:
        """Fraction of probes delivered per path (1.0 for unsent paths)."""
        out = np.ones(self.num_paths)
        for i in range(self.num_paths):
            if self.sent[i]:
                out[i] = self.delivered[i] / self.sent[i]
        return out


class NetworkSimulator:
    """Discrete-event simulator for probe-based measurement rounds.

    Parameters
    ----------
    topology:
        The network graph.
    link_delays:
        Ground-truth per-link delay vector (ms), indexed by link index.
    agents:
        Malicious nodes' packet policies: mapping node label ->
        :class:`PathManipulationAgent`.  Empty by default (honest network).
    jitter:
        Optional callable ``(rng) -> float`` added to every link traversal
        (e.g. queueing noise).  Must return non-negative values.
    link_loss:
        Optional per-link drop probabilities in [0, 1) — the ground truth
        for loss-domain tomography.  Each traversal of link ``j`` drops the
        probe independently with probability ``link_loss[j]``, so a path's
        delivery ratio is the product of its links' survival probabilities
        (additive in the log domain, as the paper's Section II-A notes).
    """

    def __init__(
        self,
        topology: Topology,
        link_delays: np.ndarray,
        *,
        agents: dict[NodeId, PathManipulationAgent] | None = None,
        jitter=None,
        link_loss: np.ndarray | None = None,
    ) -> None:
        self.topology = topology
        self.link_delays = check_nonnegative_vector(
            link_delays, "link_delays", length=topology.num_links
        )
        self.agents = dict(agents) if agents else {}
        for node, agent in self.agents.items():
            if not topology.has_node(node):
                raise MeasurementError(f"agent node {node!r} is not in the topology")
            if agent.node != node:
                raise MeasurementError(
                    f"agent at {node!r} declares a different node {agent.node!r}"
                )
        self.jitter = jitter
        if link_loss is None:
            self.link_loss = None
        else:
            loss = check_nonnegative_vector(
                link_loss, "link_loss", length=topology.num_links
            )
            if np.any(loss >= 1.0):
                raise MeasurementError("per-link loss rates must lie in [0, 1)")
            self.link_loss = loss

    def run_measurement(
        self,
        path_set: PathSet,
        *,
        probes_per_path: int = 1,
        probe_spacing: float = 1.0,
        rng: object = None,
    ) -> MeasurementRecord:
        """Simulate one measurement round and return the record.

        Each path sends ``probes_per_path`` probes, spaced ``probe_spacing``
        ms apart (spacing only staggers injections; paths do not interact,
        matching the additive-metric model where probe load is negligible).
        """
        if probes_per_path < 1:
            raise MeasurementError(f"probes_per_path must be >= 1, got {probes_per_path}")
        if probe_spacing < 0:
            raise MeasurementError(f"probe_spacing must be >= 0, got {probe_spacing}")
        if path_set.topology is not self.topology:
            raise MeasurementError("path_set was built on a different topology instance")
        generator = ensure_rng(rng)
        queue = EventQueue()
        record = MeasurementRecord(num_paths=path_set.num_paths)

        for path_index, path in enumerate(path_set):
            for probe_number in range(probes_per_path):
                probe = Probe(
                    path_index=path_index,
                    probe_number=probe_number,
                    route=path.nodes,
                    send_time=probe_number * probe_spacing,
                )
                record.record_sent(path_index)
                queue.schedule(
                    probe.send_time,
                    self._make_arrival(probe, queue, record, path, generator),
                )
        # Each probe generates at most len(route) arrival events.
        max_events = sum(len(path.nodes) for path in path_set) * probes_per_path + 1
        queue.run_until_empty(max_events=max_events)
        return record

    def _make_arrival(self, probe: Probe, queue: EventQueue, record, path, rng):
        """Build the arrival-event closure for the probe's current hop."""

        def arrival() -> None:
            node = probe.route[probe.hop]
            at_destination = probe.hop == len(probe.route) - 1
            hold = 0.0
            agent = self.agents.get(node)
            if agent is not None:
                extra_delay, dropped = agent.on_probe(probe.path_index, rng)
                if dropped:
                    probe.dropped = True
                    return
                hold = extra_delay
            if at_destination:
                # A malicious destination monitor reports the probe late by
                # ``hold``; an honest one records the true arrival time.
                probe.arrival_time = queue.now + hold
                record.record_delivery(probe.path_index, probe.end_to_end_delay)
                return
            link_index = path.link_indices[probe.hop]
            if self.link_loss is not None and rng.random() < self.link_loss[link_index]:
                probe.dropped = True
                return
            delay = self.link_delays[link_index]
            if self.jitter is not None:
                jitter_value = float(self.jitter(rng))
                if jitter_value < 0:
                    raise MeasurementError("jitter model returned a negative value")
                delay += jitter_value
            probe.hop += 1
            queue.schedule(queue.now + hold + delay, self._make_arrival(probe, queue, record, path, rng))

        return arrival
