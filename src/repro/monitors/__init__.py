"""Monitor placement and placement-quality analysis.

The paper assumes a network operator picks monitor nodes and measurement
paths that make link metrics identifiable (Section II), and its experiments
"choose monitors and measurement paths according to a random selection
algorithm based on the minimum monitor placement rule" (Section V-C).  This
package implements that randomised incremental placement, simple baselines,
and the *security-aware* placement extension sketched in Section VI
(minimise every node's presence ratio on measurement paths, so a future
compromise of any single node yields the smallest possible attack surface).
"""

from repro.monitors.placement import (
    PlacementResult,
    incremental_identifiable_placement,
    random_monitor_placement,
    security_aware_placement,
)
from repro.monitors.identifiability import placement_report

__all__ = [
    "PlacementResult",
    "incremental_identifiable_placement",
    "random_monitor_placement",
    "security_aware_placement",
    "placement_report",
]
