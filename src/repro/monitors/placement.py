"""Monitor placement strategies.

Three placements are provided:

- :func:`random_monitor_placement` — a uniform random node subset (baseline);
- :func:`incremental_identifiable_placement` — the experiment default: start
  from a random seed set and keep adding random monitors until the selected
  measurement paths identify as many links as requested (the paper's
  "random selection algorithm based on the minimum monitor placement rule");
- :func:`security_aware_placement` — the Section VI extension: among
  candidate identifiable placements, prefer the one minimising the maximum
  *node presence ratio* (fraction of measurement paths crossing any single
  non-monitor node), which bounds the manipulation power of any future
  single-node compromise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import MonitorPlacementError, ValidationError
from repro.routing.paths import PathSet
from repro.routing.selection import select_identifiable_paths
from repro.topology.graph import NodeId, Topology
from repro.utils.rng import ensure_rng

__all__ = [
    "PlacementResult",
    "random_monitor_placement",
    "incremental_identifiable_placement",
    "security_aware_placement",
    "max_node_presence_ratio",
]


@dataclass(frozen=True)
class PlacementResult:
    """A monitor placement together with its selected measurement paths.

    Attributes
    ----------
    monitors:
        The chosen monitor nodes (order is the selection order).
    path_set:
        Measurement paths selected for these monitors.
    identified_rank:
        Rank of the resulting routing matrix (== number of links when the
        placement achieves full identifiability).
    """

    monitors: tuple[NodeId, ...]
    path_set: PathSet
    identified_rank: int

    @property
    def fully_identifiable(self) -> bool:
        """True when every link metric is identifiable from the paths."""
        return self.identified_rank == self.path_set.topology.num_links


def random_monitor_placement(topology: Topology, count: int, *, rng: object = None) -> list[NodeId]:
    """Choose ``count`` distinct monitor nodes uniformly at random."""
    if count < 2:
        raise ValidationError(f"need at least 2 monitors, got {count}")
    if count > topology.num_nodes:
        raise MonitorPlacementError(
            f"cannot place {count} monitors on {topology.num_nodes} nodes"
        )
    generator = ensure_rng(rng)
    nodes = topology.nodes()
    picks = generator.choice(len(nodes), size=count, replace=False)
    return [nodes[int(i)] for i in picks]


def incremental_identifiable_placement(
    topology: Topology,
    *,
    initial_monitors: int = 3,
    max_monitors: int | None = None,
    min_rank_fraction: float = 1.0,
    redundancy: int = 3,
    max_per_pair: int = 20,
    rng: object = None,
) -> PlacementResult:
    """Grow a random monitor set until the path set identifies enough links.

    Starting from ``initial_monitors`` random monitors, repeatedly add one
    random non-monitor node and re-select paths, until the routing matrix
    rank reaches ``min_rank_fraction * num_links`` (default: full
    identifiability) or ``max_monitors`` is hit.  At ``max_monitors``
    (default: every node) the best-ranked placement seen is returned —
    monitoring everything always succeeds because every link then lies on a
    trivial two-node path.

    Raises :class:`MonitorPlacementError` only for impossible requests.
    """
    if not 0.0 < min_rank_fraction <= 1.0:
        raise ValidationError(f"min_rank_fraction must be in (0, 1], got {min_rank_fraction}")
    limit = topology.num_nodes if max_monitors is None else max_monitors
    if limit > topology.num_nodes:
        raise MonitorPlacementError(
            f"max_monitors={limit} exceeds node count {topology.num_nodes}"
        )
    if initial_monitors < 2 or initial_monitors > limit:
        raise ValidationError(
            f"initial_monitors must be in [2, {limit}], got {initial_monitors}"
        )
    generator = ensure_rng(rng)
    nodes = topology.nodes()
    order = list(range(len(nodes)))
    generator.shuffle(order)
    shuffled_nodes = [nodes[i] for i in order]

    target_rank = int(round(min_rank_fraction * topology.num_links))
    monitors = shuffled_nodes[:initial_monitors]
    remaining = shuffled_nodes[initial_monitors:]
    best: PlacementResult | None = None
    while True:
        path_set = select_identifiable_paths(
            topology,
            monitors,
            redundancy=redundancy,
            max_per_pair=max_per_pair,
            rng=generator,
        )
        from repro.utils.linalg import column_rank  # local: avoid cycle at import

        rank = column_rank(path_set.routing_matrix())
        result = PlacementResult(tuple(monitors), path_set, rank)
        if best is None or rank > best.identified_rank:
            best = result
        if rank >= target_rank or not remaining or len(monitors) >= limit:
            break
        monitors = monitors + [remaining.pop(0)]
    if best is None:
        raise MonitorPlacementError("placement search produced no candidate")
    return best


def max_node_presence_ratio(path_set: PathSet, *, exclude: set | None = None) -> float:
    """The largest fraction of paths any single node sits on.

    ``exclude`` typically holds the monitors themselves (endpoints are on
    every one of their own paths by construction).  This is the quantity
    Section VI proposes minimising: a compromised node's manipulation
    power grows with its presence ratio (Theorem 2).
    """
    if path_set.num_paths == 0:
        return 0.0
    skip = exclude or set()
    worst = 0.0
    for node in path_set.topology.nodes():
        if node in skip:
            continue
        count = len(path_set.paths_containing_node(node))
        worst = max(worst, count / path_set.num_paths)
    return worst


def security_aware_placement(
    topology: Topology,
    *,
    candidates: int = 10,
    initial_monitors: int = 3,
    max_monitors: int | None = None,
    redundancy: int = 3,
    rng: object = None,
) -> PlacementResult:
    """Sample identifiable placements and keep the most attack-resilient one.

    Draws ``candidates`` independent placements via
    :func:`incremental_identifiable_placement` and returns the one with the
    smallest maximum node presence ratio among fully identifiable samples
    (falling back to best rank when none identifies everything).  This is
    the monitor-placement-for-security idea from the paper's Section VI
    discussion, implemented as a randomized search.
    """
    if candidates < 1:
        raise ValidationError(f"candidates must be >= 1, got {candidates}")
    generator = ensure_rng(rng)
    best: PlacementResult | None = None
    best_score: tuple[float, float] | None = None
    for _ in range(candidates):
        result = incremental_identifiable_placement(
            topology,
            initial_monitors=initial_monitors,
            max_monitors=max_monitors,
            redundancy=redundancy,
            rng=generator,
        )
        ratio = max_node_presence_ratio(result.path_set, exclude=set(result.monitors))
        # Prefer full identifiability, then low presence ratio.
        score = (-float(result.identified_rank), ratio)
        if best_score is None or score < best_score:
            best, best_score = result, score
    if best is None:
        raise MonitorPlacementError("security-aware search produced no candidate")
    return best
