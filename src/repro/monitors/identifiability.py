"""Placement-quality reporting.

Bridges :mod:`repro.monitors.placement` and the rank analysis in
:mod:`repro.routing.routing_matrix` into one call that experiments and
examples use to log how good a placement is.
"""

from __future__ import annotations

from repro.monitors.placement import PlacementResult, max_node_presence_ratio
from repro.routing.routing_matrix import IdentifiabilityReport, identifiability_report

__all__ = ["placement_report"]


def placement_report(placement: PlacementResult) -> dict:
    """Return a flat summary dict for a placement.

    Keys: ``monitors``, ``num_paths``, ``rank``, ``num_links``,
    ``fully_identifiable``, ``redundancy``, ``coverage``,
    ``max_presence_ratio``.  The presence ratio excludes the monitors
    themselves (their own paths trivially contain them).
    """
    report: IdentifiabilityReport = identifiability_report(placement.path_set)
    return {
        "monitors": list(placement.monitors),
        "num_paths": report.num_paths,
        "rank": report.rank,
        "num_links": report.num_links,
        "fully_identifiable": report.full_column_rank,
        "redundancy": report.redundancy,
        "coverage": report.coverage(),
        "max_presence_ratio": max_node_presence_ratio(
            placement.path_set, exclude=set(placement.monitors)
        ),
    }
