"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points
without writing any code:

- ``info`` — version and system inventory;
- ``topology`` — generate a topology and print its summary or edge list;
- ``case-study`` — reproduce a Section V-B figure (fig4/fig5/fig6/loss);
- ``attack`` — plan an attack on the Fig. 1 scenario and show the
  operator's resulting view plus the detector's verdict;
- ``run`` — plan an attack on a scenario loaded from a JSON file
  (written by :func:`repro.scenarios.serialization.save_scenario`);
- ``experiment`` — run a Monte-Carlo experiment (fig7/fig8/fig9) at a
  configurable trial count;
- ``sweep`` — run a declarative parameter-grid sweep (strategy x
  topology x attacker count) from a JSON spec, sharded and resumable;
- ``reproduce`` — regenerate every Section V-B case study (Figs. 4-6,
  the naive baseline, and the loss-domain variant) into a directory;
- ``bench`` — run the performance timing harness (instrumented pipeline
  and seed-vs-optimized comparison) and write ``BENCH_*.json``;
- ``lint`` — run the per-file repo lint rules (RP001-RP005) over source
  trees;
- ``analyze`` — run the whole-program analyzer (per-file rules plus the
  cross-module passes RP006-RP010: layer contract, config registry,
  worker-state discipline, obs schema, dead code) with a content-hash
  result cache and baseline-file support;
- ``obs`` — inspect structured observability logs (``obs summarize``).

All output is plain text on stdout; exit status 0 on success, 1 on
failures/findings, 2 on bad arguments (argparse convention).

Setting ``REPRO_OBS=1`` makes every command write a structured JSONL
event log plus a run manifest (see :mod:`repro.obs`); ``REPRO_OBS_PATH``
/ ``REPRO_OBS_DIR`` control where.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for shell-completion tools)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Scapegoating attacks on network tomography (ICDCS 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="version and system inventory")

    topo = sub.add_parser("topology", help="generate and describe a topology")
    topo.add_argument(
        "kind",
        choices=["fig1", "isp", "rgg", "waxman", "fattree"],
        help="topology family",
    )
    topo.add_argument("--seed", type=int, default=0)
    topo.add_argument("--nodes", type=int, default=100, help="node count (rgg/waxman)")
    topo.add_argument("--edges", action="store_true", help="print the edge list")

    case = sub.add_parser("case-study", help="reproduce a Section V-B figure")
    case.add_argument("figure", choices=["fig4", "fig5", "fig6", "naive", "loss"])
    case.add_argument("--seed", type=int, default=2017)

    attack = sub.add_parser("attack", help="plan an attack on the Fig. 1 scenario")
    attack.add_argument(
        "strategy",
        choices=["chosen-victim", "max-damage", "obfuscation", "naive", "frame-and-blur"],
    )
    attack.add_argument(
        "--attackers", nargs="+", default=["B", "C"], help="attacker node labels"
    )
    attack.add_argument(
        "--victims",
        nargs="*",
        type=int,
        default=None,
        help="victim link indices (chosen-victim / frame-and-blur)",
    )
    attack.add_argument("--stealthy", action="store_true")
    attack.add_argument("--confined", action="store_true")
    attack.add_argument("--seed", type=int, default=2017)
    attack.add_argument("--alpha", type=float, default=200.0)

    run = sub.add_parser("run", help="plan an attack on a scenario JSON file")
    run.add_argument("scenario", help="path to a repro-scenario JSON document")
    run.add_argument(
        "--strategy",
        choices=["chosen-victim", "max-damage", "obfuscation", "naive", "frame-and-blur"],
        default="max-damage",
    )
    run.add_argument(
        "--attackers",
        nargs="+",
        default=None,
        help="attacker node labels (default: the first non-monitor node)",
    )
    run.add_argument(
        "--victims",
        nargs="*",
        type=int,
        default=None,
        help="victim link indices (chosen-victim / frame-and-blur)",
    )
    run.add_argument("--stealthy", action="store_true")
    run.add_argument("--confined", action="store_true")
    run.add_argument("--alpha", type=float, default=200.0)
    run.add_argument(
        "--estimator",
        default=None,
        help=(
            "defender-side inversion family (ls, bayes-map, ridge, nnls, l1; "
            "default: the REPRO_ESTIMATOR knob, i.e. least squares)"
        ),
    )

    experiment = sub.add_parser("experiment", help="run a Monte-Carlo experiment")
    experiment.add_argument("figure", choices=["fig7", "fig8", "fig9"])
    experiment.add_argument(
        "--network", choices=["fig1", "wireline", "wireless"], default="fig1"
    )
    experiment.add_argument("--trials", type=int, default=40)
    experiment.add_argument("--seed", type=int, default=0)

    reproduce = sub.add_parser(
        "reproduce", help="regenerate all Section V-B case studies into a directory"
    )
    reproduce.add_argument("--out", default="reproduction", help="output directory")
    reproduce.add_argument("--seed", type=int, default=2017)

    bench = sub.add_parser(
        "bench", help="run the perf timing harness and write BENCH_*.json"
    )
    bench.add_argument(
        "target",
        choices=[
            "fig1",
            "fig5",
            "lp",
            "sweep",
            "backends",
            "estimators",
            "online",
            "all",
        ],
        nargs="?",
        default="all",
        help=(
            "fig1 = instrumented pipeline, fig5 = seed-vs-optimized comparison, "
            "lp = cold vs incremental vs warm-started LP engine, "
            "sweep = cold-vs-cached grid execution, "
            "backends = dense-vs-sparse kernel crossover, "
            "estimators = per-family estimate latency across the zoo, "
            "online = per-epoch churn (incremental evolve vs full refactorize)"
        ),
    )
    bench.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: benchmarks/results/BENCH_<target>.json)",
    )
    bench.add_argument("--repeat", type=int, default=3, help="timing repetitions")
    bench.add_argument(
        "--trajectory",
        action="store_true",
        help="also append a compact point to benchmarks/results/BENCH_trajectory.json",
    )

    sweep = sub.add_parser(
        "sweep", help="run a declarative parameter-grid sweep from a JSON spec"
    )
    sweep.add_argument("spec", help="path to a repro-sweep JSON spec")
    sweep.add_argument(
        "--out",
        default=None,
        help="results JSONL path (default: sweeps/<spec name>.jsonl)",
    )
    sweep.add_argument(
        "--workers", type=int, default=1, help="process-pool width (1 = in-process)"
    )
    sweep.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="split per-topology shards into chunks of at most this many points",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip grid points already checkpointed in the results file",
    )
    sweep.add_argument(
        "--max-points",
        type=int,
        default=None,
        help="stop (resumably) after this many new points",
    )

    obs = sub.add_parser("obs", help="inspect structured observability logs")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    summarize = obs_sub.add_parser(
        "summarize", help="summarize a JSONL run log (spans, counters, events)"
    )
    summarize.add_argument("log", help="path to a run .jsonl written with REPRO_OBS=1")

    lint = sub.add_parser(
        "lint", help="run the repo lint rules (RP001-RP005) over source trees"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        dest="fmt",
        choices=["text", "json"],
        default="text",
        help="report format",
    )
    lint.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (e.g. RP001,RP004); default: all",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    lint.add_argument(
        "--profile",
        choices=["src", "tests"],
        default="src",
        help="severity profile (tests demotes RP002/RP003 to advisory)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="run the whole-program analyzer (RP001-RP010) with caching",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    analyze.add_argument(
        "--format",
        dest="fmt",
        choices=["text", "json"],
        default="text",
        help="report format (json is deterministic across cache states)",
    )
    analyze.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (e.g. RP006,RP008); default: "
        "all except opt-in rules (RP010)",
    )
    analyze.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    analyze.add_argument(
        "--profile",
        choices=["src", "tests"],
        default="src",
        help="severity profile (tests demotes RP002/RP003 to advisory)",
    )
    analyze.add_argument(
        "--baseline",
        default=None,
        help="JSON baseline of accepted findings (suppressed, not fatal)",
    )
    analyze.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="accept the current findings: write them as a baseline and exit 0",
    )
    analyze.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the content-hash facts cache",
    )
    analyze.add_argument(
        "--cache-dir",
        default=None,
        help="facts cache directory (default: .repro-analysis-cache)",
    )
    analyze.add_argument(
        "--layers",
        default=None,
        help="layer contract TOML (default: the contract shipped in "
        "repro/analysis/layers.toml)",
    )
    analyze.add_argument(
        "--obs-catalog",
        default=None,
        metavar="PATH",
        help="also render the obs event catalog markdown to PATH "
        "('-' for stdout)",
    )

    return parser


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__}")
    print(__doc__.strip().splitlines()[0])
    print()
    inventory = [
        ("repro.topology", "topologies, generators, serialization"),
        ("repro.routing", "paths, k-shortest paths, routing matrices"),
        ("repro.monitors", "monitor placement (incl. security-aware)"),
        ("repro.metrics", "additive metrics, link states"),
        ("repro.measurement", "analytic engine + packet DES (delay & loss)"),
        ("repro.tomography", "least-squares / NNLS / ridge estimation"),
        ("repro.attacks", "the scapegoating strategies and planning"),
        ("repro.detection", "consistency detector, robust estimation"),
        ("repro.scenarios", "case studies and Monte-Carlo experiments"),
        ("repro.perf", "timing instrumentation and benchmarks"),
        ("repro.obs", "structured run logs, manifests, summaries"),
        ("repro.analysis", "lint rules and runtime algebra contracts"),
    ]
    for name, what in inventory:
        print(f"  {name:<20} {what}")
    return 0


def _build_topology(args):
    if args.kind == "fig1":
        from repro.topology import paper_example_network

        return paper_example_network()
    if args.kind == "isp":
        from repro.topology import synthetic_rocketfuel

        return synthetic_rocketfuel(seed=args.seed)
    if args.kind == "rgg":
        from repro.topology import random_geometric_topology

        return random_geometric_topology(args.nodes, seed=args.seed)
    if args.kind == "waxman":
        from repro.topology import waxman_topology

        return waxman_topology(args.nodes, seed=args.seed)
    from repro.topology import fat_tree_topology

    return fat_tree_topology(4)


def _cmd_topology(args) -> int:
    from repro.reporting import format_kv
    from repro.topology.analysis import node_connectivity_summary
    from repro.topology.serialization import topology_to_edge_list

    topology = _build_topology(args)
    print(format_kv(topology.name or args.kind, node_connectivity_summary(topology)))
    if args.edges:
        from repro.exceptions import SerializationError

        print()
        try:
            print(topology_to_edge_list(topology), end="")
        except SerializationError:
            # Tuple-labelled topologies (grid/fat-tree) need JSON.
            from repro.topology.serialization import topology_to_json

            print(topology_to_json(topology))
    return 0


def _cmd_case_study(args) -> int:
    from repro.reporting import format_fig4_series

    if args.figure == "fig4":
        from repro.scenarios.simple_network import chosen_victim_case_study

        record = chosen_victim_case_study(seed=args.seed)
        print(format_fig4_series(record, title="Fig. 4: chosen-victim on link 10"))
    elif args.figure == "fig5":
        from repro.scenarios.simple_network import max_damage_case_study

        record = max_damage_case_study(seed=args.seed)
        print(format_fig4_series(record, title="Fig. 5: maximum damage"))
    elif args.figure == "fig6":
        from repro.scenarios.simple_network import obfuscation_case_study

        record = obfuscation_case_study(seed=args.seed)
        print(format_fig4_series(record, title="Fig. 6: obfuscation"))
    elif args.figure == "naive":
        from repro.scenarios.simple_network import naive_baseline_case_study

        record = naive_baseline_case_study(seed=args.seed)
        print(format_fig4_series(record, title="Naive baseline: delay everything"))
        print(f"worst link is attacker-controlled: {record['worst_link_is_controlled']}")
    else:  # loss
        from repro.scenarios.loss_network import loss_chosen_victim_case_study

        record = loss_chosen_victim_case_study(seed=args.seed)
        if not record["feasible"]:
            print("loss-domain attack infeasible for this seed")
            return 1
        print("Loss-domain chosen-victim (packet drops, simulated):")
        print(f"  planned abnormal links : {record['planned_abnormal']}")
        print(f"  measured abnormal links: {record['measured_abnormal']}")
        print(
            "  victim's estimated delivery ratio: "
            f"{record['victim_delivery_estimate']:.2%} (true ~99%)"
        )
    return 0


def _plan_attack(strategy: str, context, victims, *, stealthy: bool, confined: bool):
    """Construct and run one attack strategy (shared by ``attack``/``run``)."""
    if strategy == "chosen-victim":
        from repro.attacks import ChosenVictimAttack

        return ChosenVictimAttack(
            context, victims, stealthy=stealthy, confined=confined
        ).run()
    if strategy == "max-damage":
        from repro.attacks import MaxDamageAttack

        return MaxDamageAttack(context, stealthy=stealthy, confined=confined).run()
    if strategy == "obfuscation":
        from repro.attacks import ObfuscationAttack

        return ObfuscationAttack(
            context, min_victims=1, stealthy=stealthy, confined=confined
        ).run()
    if strategy == "frame-and-blur":
        from repro.attacks import FrameAndBlurAttack

        return FrameAndBlurAttack(context, victims, stealthy=stealthy).run()
    from repro.attacks import NaiveDelayAttack

    return NaiveDelayAttack(context).run()


def _report_attack(
    outcome, context, scenario, *, strategy, attackers, alpha, estimator=None
) -> int:
    """Print the operator's view plus the detector's verdict (shared tail)."""
    from repro.detection import TomographyAuditor
    from repro.reporting import format_link_series

    if not outcome.feasible:
        print(f"attack infeasible: {outcome.status}")
        return 1
    print(
        format_link_series(
            [float(v) for v in outcome.predicted_estimate],
            [str(s) for s in outcome.diagnosis.states],
            title=(
                f"{strategy} by {attackers}: damage "
                f"{outcome.damage:.0f} ms, mean path "
                f"{outcome.mean_path_measurement:.1f} ms"
            ),
            victim_links=outcome.victim_links,
            controlled_links=sorted(context.controlled_links),
        )
    )
    # The auditor shares the context's kernel and estimator, so the CLI's
    # verdict matches what the sweep engine would record for this point.
    report = TomographyAuditor(
        scenario.path_set, alpha=alpha, system=context.system, estimator=estimator
    ).audit(outcome.observed_measurements)
    label = f"alpha={alpha}" if estimator is None else f"alpha={alpha}, {estimator}"
    print(
        f"consistency detector ({label}): "
        f"{'DETECTED' if not report.trustworthy else 'not detected'} "
        f"(residual {report.detection.residual_l1:.2f} ms)"
    )
    return 0


def _cmd_attack(args) -> int:
    from repro.exceptions import ReproError
    from repro.scenarios.simple_network import paper_fig1_scenario

    scenario = paper_fig1_scenario(seed=args.seed)
    try:
        context = scenario.attack_context(args.attackers)
    except ReproError as exc:
        # Bad attacker labels / degenerate contexts surface as ReproError
        # subclasses (AttackConstraintError, NodeNotFoundError, ...).
        print(f"error: {exc}", file=sys.stderr)
        return 1

    victims = args.victims if args.victims else [9]
    outcome = _plan_attack(
        args.strategy, context, victims, stealthy=args.stealthy, confined=args.confined
    )
    return _report_attack(
        outcome,
        context,
        scenario,
        strategy=args.strategy,
        attackers=args.attackers,
        alpha=args.alpha,
    )


def _cmd_run(args) -> int:
    from repro.exceptions import ReproError, SerializationError
    from repro.obs import core as obs
    from repro.scenarios.serialization import load_scenario

    try:
        scenario = load_scenario(args.scenario)
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    attackers = args.attackers
    if not attackers:
        monitors = set(scenario.monitors)
        attackers = [n for n in scenario.topology.nodes() if n not in monitors][:1]
        if not attackers:
            print("error: no non-monitor node available as attacker", file=sys.stderr)
            return 1
    try:
        context = scenario.attack_context(attackers, estimator=args.estimator)
        victims = args.victims
        if args.strategy in ("chosen-victim", "frame-and-blur") and not victims:
            controlled = set(context.controlled_links)
            victims = [
                link.index
                for link in scenario.topology.links()
                if link.index not in controlled
            ][:1]
            if not victims:
                print("error: no candidate victim link", file=sys.stderr)
                return 1
        log = obs.active_log()
        manifest = getattr(log, "manifest", None)
        if manifest is not None:
            manifest.attach_scenario(scenario)
        with obs.span(
            "cli_run",
            scenario=scenario.name or args.scenario,
            strategy=args.strategy,
            attackers=attackers,
        ):
            outcome = _plan_attack(
                args.strategy,
                context,
                victims,
                stealthy=args.stealthy,
                confined=args.confined,
            )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return _report_attack(
        outcome,
        context,
        scenario,
        strategy=args.strategy,
        attackers=attackers,
        alpha=args.alpha,
        estimator=args.estimator,
    )


def _cmd_experiment(args) -> int:
    from repro.reporting import format_detection_table, format_success_bins, format_table

    if args.network == "wireline":
        from repro.scenarios.experiments import standard_wireline_scenario

        scenario = standard_wireline_scenario(seed=args.seed)
    elif args.network == "wireless":
        from repro.scenarios.experiments import standard_wireless_scenario

        scenario = standard_wireless_scenario(seed=args.seed)
    else:
        from repro.scenarios.simple_network import paper_fig1_scenario

        scenario = paper_fig1_scenario()

    if args.figure == "fig7":
        from repro.scenarios.experiments import success_probability_sweep

        result = success_probability_sweep(
            scenario, num_trials=args.trials, seed=args.seed
        )
        print(
            format_success_bins(
                result["bins"],
                title=f"Fig. 7 ({args.network}, {args.trials} trials)",
            )
        )
    elif args.figure == "fig8":
        from repro.scenarios.experiments import single_attacker_sweep

        result = single_attacker_sweep(scenario, num_trials=args.trials, seed=args.seed)
        print(
            format_table(
                ["metric", "value"],
                [
                    ["max-damage success", result["max_damage_success_rate"]],
                    ["obfuscation success", result["obfuscation_success_rate"]],
                ],
            )
        )
    else:  # fig9
        from repro.scenarios.detection_experiments import detection_ratio_experiment

        cells = []
        for strategy in ("chosen-victim", "max-damage", "obfuscation"):
            for cut in ("perfect", "imperfect"):
                cells.append(
                    detection_ratio_experiment(
                        scenario,
                        strategy,
                        cut,
                        num_trials=args.trials,
                        seed=args.seed,
                    )
                )
        print(
            format_detection_table(
                cells, title=f"Fig. 9 ({args.network}, {args.trials} trials/cell)"
            )
        )
    return 0


def _cmd_reproduce(args) -> int:
    from pathlib import Path

    from repro.reporting import format_fig4_series
    from repro.scenarios.loss_network import loss_chosen_victim_case_study
    from repro.scenarios.simple_network import (
        chosen_victim_case_study,
        max_damage_case_study,
        naive_baseline_case_study,
        obfuscation_case_study,
    )

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    studies = [
        ("fig4_chosen_victim", chosen_victim_case_study, "Fig. 4: chosen-victim on link 10"),
        ("fig5_max_damage", max_damage_case_study, "Fig. 5: maximum damage"),
        ("fig6_obfuscation", obfuscation_case_study, "Fig. 6: obfuscation"),
        ("naive_baseline", naive_baseline_case_study, "Naive baseline"),
    ]
    for name, study, title in studies:
        record = study(seed=args.seed)
        text = format_fig4_series(record, title=title)
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"wrote {out / (name + '.txt')}")
    loss = loss_chosen_victim_case_study(seed=args.seed)
    if loss["feasible"]:
        lines = [
            "Loss-domain chosen-victim (simulated packet drops)",
            f"planned abnormal links : {loss['planned_abnormal']}",
            f"measured abnormal links: {loss['measured_abnormal']}",
            f"victim estimated delivery: {loss['victim_delivery_estimate']:.2%}",
        ]
        (out / "loss_chosen_victim.txt").write_text("\n".join(lines) + "\n")
        print(f"wrote {out / 'loss_chosen_victim.txt'}")
    return 0


def _cmd_bench(args) -> int:
    from pathlib import Path

    from repro.perf.bench import (
        backends_benchmark,
        estimators_benchmark,
        fig1_pipeline_benchmark,
        fig5_assembly_benchmark,
        full_perf_benchmark,
        lp_benchmark,
        online_benchmark,
        sweep_cache_benchmark,
        write_bench_json,
    )

    if args.target == "fig1":
        benchmarks = {"fig1_pipeline": fig1_pipeline_benchmark(repeat=args.repeat)}
    elif args.target == "fig5":
        benchmarks = {"fig5_max_damage": fig5_assembly_benchmark(repeat=args.repeat)}
    elif args.target == "lp":
        benchmarks = {"lp": lp_benchmark(repeat=args.repeat)}
    elif args.target == "sweep":
        benchmarks = {"sweep_cache": sweep_cache_benchmark(repeat=args.repeat)}
    elif args.target == "backends":
        benchmarks = {"backends": backends_benchmark(repeat=args.repeat)}
    elif args.target == "estimators":
        benchmarks = {"estimators": estimators_benchmark(repeat=args.repeat)}
    elif args.target == "online":
        benchmarks = {"online": online_benchmark(repeat=args.repeat)}
    else:
        benchmarks = full_perf_benchmark(repeat=args.repeat)

    default_name = "BENCH_perf.json" if args.target == "all" else f"BENCH_{args.target}.json"
    out = Path(args.out) if args.out else Path("benchmarks") / "results" / default_name
    path = write_bench_json(benchmarks, out)
    if args.trajectory:
        from repro.perf.bench import append_trajectory

        trajectory = append_trajectory(
            benchmarks, Path("benchmarks") / "results" / "BENCH_trajectory.json"
        )
        print(f"appended trajectory point to {trajectory}")

    for name, payload in benchmarks.items():
        print(f"{name}: wall {payload['wall_s'] * 1e3:.2f} ms")
        for stage_name, info in payload.get("stages", {}).items():
            print(
                f"  {stage_name:<18} {info['seconds'] * 1e3:9.3f} ms"
                f"  ({info['calls']} calls)"
            )
        for counter, value in payload.get("counters", {}).items():
            print(f"  {counter:<18} {value}")
        speedup = payload.get("speedup")
        if speedup:
            parts = ", ".join(
                f"{key.replace('_', '-')} {value:.2f}x" for key, value in speedup.items()
            )
            print(f"  speedup vs seed    {parts}")
    print(f"wrote {path}")
    return 0


def _cmd_sweep(args) -> int:
    from pathlib import Path

    from repro.exceptions import ReproError, SerializationError
    from repro.reporting import format_sweep_summary
    from repro.sweep import SweepSpec, aggregate_rows, run_sweep

    try:
        spec = SweepSpec.load(args.spec)
    except (SerializationError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out = Path(args.out) if args.out else Path("sweeps") / f"{spec.name or 'sweep'}.jsonl"
    try:
        summary = run_sweep(
            spec,
            results_path=out,
            workers=args.workers,
            chunk_size=args.chunk_size,
            resume=args.resume,
            max_points=args.max_points,
        )
    except (SerializationError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"sweep {spec.name or spec.digest[:12]}: "
        f"{summary['ran']} ran, {summary['skipped']} skipped, "
        f"{summary['remaining']} remaining ({summary['total']} total)"
    )
    print(f"results: {out}")
    if summary["remaining"]:
        print(f"partial grid; finish with: repro sweep {args.spec} --resume --out {out}")
    print()
    print(
        format_sweep_summary(
            aggregate_rows(summary["points"]),
            title=f"Sweep summary ({len(summary['points'])} points)",
        )
    )
    return 0


def _cmd_obs(args) -> int:
    from repro.exceptions import SerializationError
    from repro.obs import format_summary, summarize_run

    try:
        summary = summarize_run(args.log)
    except SerializationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(format_summary(summary))
    return 0


def _print_rule_listing() -> int:
    from repro.analysis.lint import all_rules
    from repro.analysis.lint.registry import ProjectRule

    for rule_id, rule_cls in all_rules().items():
        tags = []
        if issubclass(rule_cls, ProjectRule):
            tags.append("whole-program")
        if not rule_cls.default_enabled:
            tags.append("opt-in")
        suffix = f" [{', '.join(tags)}]" if tags else ""
        print(f"{rule_id}  {rule_cls.summary}{suffix}")
    return 0


def _parse_select(raw: str | None) -> list[str] | None:
    if raw is None:
        return None
    return [code for code in raw.split(",") if code.strip()]


def _cmd_lint(args) -> int:
    from repro.analysis.lint import format_violations, lint_paths
    from repro.exceptions import ValidationError

    if args.list_rules:
        return _print_rule_listing()
    select = _parse_select(args.select)
    try:
        violations = lint_paths(args.paths, select=select, profile=args.profile)
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_violations(violations, fmt=args.fmt, select=select))
    return 1 if any(v.severity == "error" for v in violations) else 0


def _cmd_analyze(args) -> int:
    from repro.analysis.lint.engine import (
        DEFAULT_CACHE_DIR,
        analyze_paths,
        format_analysis,
        write_baseline,
    )
    from repro.exceptions import ValidationError

    if args.list_rules:
        return _print_rule_listing()
    try:
        report = analyze_paths(
            args.paths,
            select=_parse_select(args.select),
            profile=args.profile,
            use_cache=not args.no_cache,
            cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
            layers_path=args.layers,
            baseline=args.baseline,
        )
    except ValidationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.obs_catalog is not None:
        from pathlib import Path

        from repro.analysis.lint.engine import collect_python_files
        from repro.analysis.obschema import render_obs_catalog
        from repro.analysis.project import ProjectModel, extract_facts

        roots = [Path(p) for p in args.paths]
        files = [
            extract_facts(path, rel_path=path.as_posix())
            for path in collect_python_files(roots)
        ]
        catalog = render_obs_catalog(
            ProjectModel(files=files, root_package=report.root_package)
        )
        if args.obs_catalog == "-":
            print(catalog)
        else:
            Path(args.obs_catalog).write_text(catalog, encoding="utf-8")
            print(f"wrote obs catalog to {args.obs_catalog}", file=sys.stderr)
    if args.write_baseline is not None:
        write_baseline(report, args.write_baseline)
        print(
            f"accepted {len(report.violations)} finding(s) into "
            f"{args.write_baseline}",
            file=sys.stderr,
        )
        return 0
    print(format_analysis(report, fmt=args.fmt))
    return report.exit_code


def _dispatch(args) -> int:
    if args.command == "info":
        return _cmd_info()
    if args.command == "topology":
        return _cmd_topology(args)
    if args.command == "case-study":
        return _cmd_case_study(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "obs":
        return _cmd_obs(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    raise RuntimeError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status.

    Under ``REPRO_OBS=1`` the whole dispatch runs inside an active
    :class:`~repro.obs.core.EventLog`, and a run manifest (seed, config
    digest, version, wall/CPU time, exit status) is written next to the
    log as ``<log stem>.manifest.json``.
    """
    args = build_parser().parse_args(argv)
    from repro.obs import core as obs_core

    with obs_core.enabled_from_env() as log:
        if log is None:
            return _dispatch(args)

        from repro.obs.manifest import RunManifest

        manifest = RunManifest(
            command=args.command, seed=getattr(args, "seed", None), config=vars(args)
        )
        # Commands can enrich the manifest (e.g. attach the scenario).
        log.manifest = manifest
        with log.span("cli", command=args.command):
            status = _dispatch(args)
        manifest.data["exit_status"] = status
        manifest_path = manifest.write(log.path.with_suffix(".manifest.json"))
        log.event("manifest_written", path=str(manifest_path))
        print(f"obs: run log {log.path}, manifest {manifest_path}", file=sys.stderr)
        return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
