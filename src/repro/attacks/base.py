"""Shared attack context and outcome types.

:class:`AttackContext` bundles everything every strategy needs — the path
set, ground-truth metrics, thresholds, attacker nodes, per-path cap and
band margin — and caches the derived objects (routing matrix, estimator
operator, support rows, controlled link set).  Strategies consume a context
and produce an :class:`AttackOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

import numpy as np

from repro.analysis.contracts import (
    check_constraint1,
    check_routing_matrix,
    contract,
    contracts_enabled,
)
from repro.attacks.constraints import attacker_links, manipulable_paths
from repro.exceptions import AttackConstraintError, ValidationError
from repro.metrics.states import StateThresholds
from repro.routing.paths import PathSet
from repro.tomography.diagnosis import DiagnosisReport, diagnose
from repro.tomography.estimator_zoo import resolve_estimator
from repro.tomography.linear_system import LinearSystem
from repro.topology.graph import NodeId
from repro.utils.validation import check_finite_vector

__all__ = ["AttackContext", "AttackOutcome"]


class AttackContext:
    """Everything a scapegoating strategy needs to plan.

    Parameters
    ----------
    path_set:
        The monitors' measurement paths (public knowledge the attacker has
        obtained; Section VI discusses hiding it as a first line of
        defence).
    true_metrics:
        Ground-truth link metrics ``x*`` (routine performance).
    attacker_nodes:
        The malicious node set ``V_m``.
    thresholds:
        The operator's link-state bounds ``(b_l, b_u)``.
    cap:
        Per-path manipulation cap (paper: 2000 ms); ``None`` = unlimited.
    margin:
        Safety margin pushed inside each strict band (Definition 1 uses
        strict inequalities; the LP needs closed ones).
    system:
        Optional pre-factorised :class:`LinearSystem` over this path set's
        routing matrix.  Grid sweeps pass the same kernel into every
        context sharing a topology so the SVD runs once per distinct
        routing matrix; the matrix must be value-equal to the path set's
        own, or a :class:`ValidationError` is raised.
    estimator:
        The *defender's* inversion family — a zoo name, a built
        :class:`~repro.tomography.estimator_zoo.Estimator`, or None for
        the ``REPRO_ESTIMATOR`` knob (default ``ls``).  Only
        :meth:`predicted_estimate` (what the operator will conclude)
        routes through it; attack *planning* stays on the linear
        least-squares operator — Constraint 2's bands are linear in the
        manipulation only under eq. (2), which is exactly the knowledge
        the paper's attacker exploits.
    """

    def __init__(
        self,
        path_set: PathSet,
        true_metrics: np.ndarray,
        attacker_nodes: Iterable[NodeId],
        *,
        thresholds: StateThresholds | None = None,
        cap: float | None = 2000.0,
        margin: float = 1.0,
        system: LinearSystem | None = None,
        estimator=None,
    ) -> None:
        self.path_set = path_set
        self.topology = path_set.topology
        self.true_metrics = check_finite_vector(
            true_metrics, "true_metrics", length=self.topology.num_links
        )
        self.attacker_nodes = tuple(dict.fromkeys(attacker_nodes))
        if not self.attacker_nodes:
            raise AttackConstraintError("attacker node set must not be empty")
        self.thresholds = thresholds if thresholds is not None else StateThresholds()
        if margin < 0:
            raise ValidationError(f"margin must be non-negative, got {margin}")
        if self.thresholds.is_two_state and margin == 0:
            # Two-state thresholds with zero margin make "normal" and
            # "abnormal" bands touch; allow it (closed-band semantics).
            pass
        self.cap = cap
        self.margin = float(margin)

        self.routing_matrix = path_set.routing_matrix()
        if contracts_enabled():
            check_routing_matrix(self.routing_matrix, "routing_matrix")
        #: Shared SVD kernel: one factorisation of ``R`` backs the
        #: estimator operator, the residual projector, and any rank query.
        if system is not None:
            if not np.array_equal(system.matrix, self.routing_matrix):
                raise ValidationError(
                    "injected LinearSystem does not match this path set's "
                    "routing matrix"
                )
            self.system = system
        else:
            self.system = LinearSystem(self.routing_matrix)
        if estimator is None or isinstance(estimator, str):
            self.estimator = resolve_estimator(estimator, system=self.system)
        else:
            est_system = getattr(estimator, "system", None)
            if est_system is None or not np.array_equal(
                est_system.matrix, self.routing_matrix
            ):
                raise ValidationError(
                    "injected estimator is not built over this path set's "
                    "routing matrix"
                )
            self.estimator = estimator
        self._honest_measurements: np.ndarray | None = None
        self._baseline_estimate: np.ndarray | None = None
        self._support_operator: np.ndarray | None = None
        self._residual_projector_support: np.ndarray | None = None
        self.controlled_links: frozenset[int] = frozenset(
            attacker_links(self.topology, self.attacker_nodes)
        )
        self.support: tuple[int, ...] = tuple(
            manipulable_paths(path_set, self.attacker_nodes)
        )

    @property
    def operator(self) -> np.ndarray:
        """The full dense estimator ``R⁺`` (|L| x |P|).

        Lazy: under the sparse backend planners should prefer
        :attr:`support_operator` (the only columns Constraint 1 lets them
        use), which never materialises the full pseudo-inverse.
        """
        return self.system.estimator

    @property
    def support_operator(self) -> np.ndarray:
        """``R⁺[:, support]`` (|L| x k) — the columns an attacker can drive.

        Constraint 1 restricts manipulations to the attacker's paths, so
        every LP block is assembled from these columns alone.  Computed
        once via :meth:`LinearSystem.estimator_columns` (a batched
        matrix-free solve on the sparse backend).
        """
        if self._support_operator is None:
            # Sorted-unique order — the convention the LP layer's
            # ``_checked_support`` normalises to, so the columns line up.
            cols = np.asarray(sorted(set(self.support)), dtype=int)
            self._support_operator = self.system.estimator_columns(cols)
        return self._support_operator

    @property
    def baseline_estimate(self) -> np.ndarray:
        """What tomography estimates *without* any attack.

        Equals the true metrics when R has full column rank; under partial
        identifiability the min-norm estimator mixes links, and attack
        planning must anchor its bands to this baseline, not to x*.
        """
        if self._baseline_estimate is None:
            self._baseline_estimate = self.system.estimate(self.honest_measurements())
        return self._baseline_estimate

    @property
    def num_paths(self) -> int:
        """Number of measurement paths (rows of ``R``)."""
        return self.routing_matrix.shape[0]

    @property
    def num_links(self) -> int:
        """Number of links (columns of ``R``)."""
        return self.routing_matrix.shape[1]

    def honest_measurements(self) -> np.ndarray:
        """The noiseless honest vector ``y = R x*`` (computed once).

        Trial loops call :meth:`observed_measurements` per manipulation;
        caching ``R x*`` here keeps that per-call cost at one vector add.
        """
        if self._honest_measurements is None:
            self._honest_measurements = self.routing_matrix @ self.true_metrics
        return self._honest_measurements

    @contract(
        lambda arguments: check_constraint1(
            arguments["manipulation"],
            arguments["self"].support,
            arguments["self"].num_paths,
        )
    )
    def observed_measurements(self, manipulation: np.ndarray) -> np.ndarray:
        """``y' = y + m`` (eq. 3).

        Under active contracts the manipulation is checked against
        Constraint 1 (non-negative, supported only on attacker paths).
        """
        m = check_finite_vector(manipulation, "manipulation", length=self.num_paths)
        return self.honest_measurements() + m

    def predicted_estimate(self, manipulation: np.ndarray) -> np.ndarray:
        """What tomography will estimate under the manipulation.

        Routed through the context's defender estimator.  Under the
        default least squares this is ``x_hat = Q y' = Q R x* + Q m`` —
        equals ``x* + Q m`` when ``R`` has full column rank.  Under a
        non-LS defender this is the honest answer to "did the planned
        attack actually land": the plan was optimised against eq. (2),
        the outcome is judged by what the operator really runs.
        """
        return self.estimator.estimate(self.observed_measurements(manipulation))

    def residual_projector(self) -> np.ndarray:
        """The matrix ``I - R R⁺`` whose kernel is the detector's blind set.

        Manipulations ``m`` with ``(I - R R⁺) m = 0`` keep the forged
        measurements inside the column space of ``R`` — zero residual in
        eq. (23), hence undetectable.  Derived from the shared SVD factors
        and cached on the kernel, so repeated stealthy solves pay nothing.
        """
        return self.system.residual_projector

    def residual_projector_support(self) -> np.ndarray:
        """``(I - R R⁺)[:, support]`` — the only projector columns a
        Constraint-1 manipulation can excite.  Matrix-free on the sparse
        backend; stealthy LPs consume this block directly.  Computed once
        per context — stealthy candidate scans and repeated attack runs
        reuse the same block.
        """
        if self._residual_projector_support is None:
            self._residual_projector_support = self.system.residual_projector_columns(
                np.asarray(sorted(set(self.support)), dtype=int)
            )
        return self._residual_projector_support

    def manipulable_link_mask(self, tol: float = 1e-9) -> np.ndarray:
        """Boolean mask of links whose estimate the attacker can *raise*.

        Link ``j`` is upward-manipulable when some supported path has a
        positive coefficient in ``Q[j]`` — pushing delay there inflates the
        estimate.  Victim candidates outside this mask can never be made
        to look abnormal.
        """
        mask = np.zeros(self.num_links, dtype=bool)
        if self.support:
            mask = np.max(self.support_operator, axis=1) > tol
        return mask


@dataclass(frozen=True)
class AttackOutcome:
    """Result of running one attack strategy.

    Attributes
    ----------
    strategy:
        Strategy name (``"chosen-victim"``, ``"max-damage"``,
        ``"obfuscation"``, ``"naive"``).
    feasible:
        The paper's success criterion — a feasible manipulation exists.
    manipulation:
        The chosen vector ``m`` (None when infeasible).
    damage:
        ``||m||_1`` (Definition 2); 0.0 when infeasible.
    victim_links:
        The scapegoat set ``L_s`` (chosen or discovered).
    predicted_estimate:
        The estimate tomography will produce under ``m``.
    diagnosis:
        The operator's resulting :class:`DiagnosisReport`.
    observed_measurements:
        The forged measurement vector ``y'``.
    status:
        Solver / search detail for logs.
    extras:
        Strategy-specific annotations (e.g. the per-victim search trace of
        max-damage).
    """

    strategy: str
    feasible: bool
    manipulation: np.ndarray | None
    damage: float
    victim_links: tuple[int, ...]
    predicted_estimate: np.ndarray | None
    diagnosis: DiagnosisReport | None
    observed_measurements: np.ndarray | None
    status: str
    extras: dict = field(default_factory=dict)

    @property
    def mean_path_measurement(self) -> float:
        """Average observed end-to-end measurement (the Figs. 4-5 statistic)."""
        if self.observed_measurements is None:
            return float("nan")
        return float(np.mean(self.observed_measurements))

    @classmethod
    def infeasible(cls, strategy: str, status: str, victim_links: tuple[int, ...] = ()) -> "AttackOutcome":
        """A failed attack with uniform empty fields."""
        return cls(
            strategy=strategy,
            feasible=False,
            manipulation=None,
            damage=0.0,
            victim_links=victim_links,
            predicted_estimate=None,
            diagnosis=None,
            observed_measurements=None,
            status=status,
        )

    @classmethod
    def from_manipulation(
        cls,
        strategy: str,
        context: AttackContext,
        manipulation: np.ndarray,
        victim_links: tuple[int, ...],
        status: str,
        extras: dict | None = None,
    ) -> "AttackOutcome":
        """Build a successful outcome, deriving estimate and diagnosis."""
        estimate = context.predicted_estimate(manipulation)
        return cls(
            strategy=strategy,
            feasible=True,
            manipulation=manipulation,
            damage=float(np.sum(manipulation)),
            victim_links=tuple(sorted(victim_links)),
            predicted_estimate=estimate,
            diagnosis=diagnose(estimate, context.thresholds),
            observed_measurements=context.observed_measurements(manipulation),
            status=status,
            extras=extras or {},
        )
