"""Maximum-damage scapegoating (eq. 8 of the paper).

The attacker searches over victim sets ``L_s ⊂ L`` for the one admitting
the largest damage.  A useful structural fact (property-tested): the
feasible region shrinks as ``L_s`` grows — requiring *more* links to look
abnormal only adds constraints — so the unconstrained optimum over all
non-empty victim sets is always attained at a singleton.  The default
search therefore scans single victims exhaustively; explicit
``victim_set_size > 1`` enumerates subsets of exactly that size for
attackers who *want* several guaranteed scapegoats.

The candidate scan shares one :class:`~repro.attacks.lp.IncrementalLpSolver`:
the constraint block common to every victim set (controlled links normal,
plus any exclusive/confined rows) is assembled once, and each candidate
only splices in its own victim rows — the per-LP cost is the solver call,
not the rebuild.

Note the distinction the paper's Fig. 5 illustrates: the *required* victim
set may be a single link, yet the damage-maximising manipulation typically
drives several other free links above the abnormal threshold as a side
effect.  The outcome's diagnosis reports every link the operator would
actually blame.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from itertools import combinations

from repro.attacks.base import AttackContext, AttackOutcome
from repro.attacks.chosen_victim import analytic_witness, build_chosen_victim_bands
from repro.attacks.lp import IncrementalLpSolver
from repro.exceptions import ValidationError

__all__ = ["MaxDamageAttack"]


class MaxDamageAttack:
    """Search victim sets for the damage-maximising scapegoating attack.

    Parameters
    ----------
    context:
        The shared attack context.
    victim_set_size:
        Exact size of the victim sets searched (default 1 — see module
        docstring for why singletons already attain the optimum).
    candidate_links:
        Restrict the victim search (default: every non-controlled link the
        attacker can push upward).
    mode:
        Chosen-victim constraint mode applied per candidate (``"paper"``
        or ``"exclusive"``).
    max_combinations:
        Safety limit on subsets *examined* (including ones skipped for
        containing controlled links) when ``victim_set_size > 1`` — it
        bounds the work of the scan itself, not just the LPs solved.
    stop_at_first_feasible:
        Return the first feasible victim set instead of the best one.
        Success-probability experiments (Fig. 8) only need existence, and
        this short-circuits the candidate scan.
    engine:
        LP engine for the candidate scan (see
        :func:`repro.attacks.lp_engine.resolve_engine_name`).
        ``"highs"`` keeps one warm-started persistent model across the
        whole victim loop; the default (scipy / ``REPRO_LP_ENGINE``)
        stays byte-identical to the historical path.  Ignored when a
        ``shared_solver`` is supplied (its engine wins).
    presolve:
        Enable the Constraint-1 presolve pruner on the candidate scan
        (default True); pruned candidates are counted in
        ``extras["presolve_pruned"]`` without any LP being solved.
    analytic:
        With ``stop_at_first_feasible``, try Theorem 1's solver-free
        perfect-cut witness per candidate before falling back to the LP
        scan.  Existence-only queries on perfectly cut victims then never
        touch a solver.  The witness is not damage-optimal, so the flag
        is ignored (the full LP scan runs) when the best victim set is
        wanted.
    shared_solver:
        Optional pre-assembled :class:`IncrementalLpSolver` whose base
        block is the empty-victim chosen-victim bands of this context /
        mode / confined combination (what :meth:`_candidate_solver` would
        build).  Grid sweeps pass one solver per (routing matrix,
        attacker-set, mode) so the LP base block is assembled once and
        reused across every victim candidate of every grid point sharing
        it.  The caller is responsible for the base block matching; a
        mismatched solver silently changes the constraints.
    """

    strategy_name = "max-damage"

    def __init__(
        self,
        context: AttackContext,
        *,
        victim_set_size: int = 1,
        candidate_links: Iterable[int] | None = None,
        mode: str = "paper",
        max_combinations: int = 20000,
        stop_at_first_feasible: bool = False,
        stealthy: bool = False,
        confined: bool = False,
        shared_solver: IncrementalLpSolver | None = None,
        engine: str | None = None,
        presolve: bool = True,
        analytic: bool = False,
    ) -> None:
        if victim_set_size < 1:
            raise ValidationError(f"victim_set_size must be >= 1, got {victim_set_size}")
        if max_combinations < 1:
            raise ValidationError(f"max_combinations must be >= 1, got {max_combinations}")
        self.context = context
        self.victim_set_size = victim_set_size
        self.mode = mode
        self.max_combinations = max_combinations
        self.stop_at_first_feasible = stop_at_first_feasible
        self.stealthy = stealthy
        self.confined = confined
        self.engine = engine
        self.presolve = bool(presolve)
        self.analytic = bool(analytic)
        if candidate_links is None:
            mask = context.manipulable_link_mask()
            self.candidates = tuple(
                j
                for j in range(context.num_links)
                if mask[j] and j not in context.controlled_links
            )
        else:
            self.candidates = tuple(sorted(set(int(j) for j in candidate_links)))
            for j in self.candidates:
                if not 0 <= j < context.num_links:
                    raise ValidationError(f"candidate link index {j} out of range")
        self._solver: IncrementalLpSolver | None = shared_solver

    def _candidate_solver(self) -> IncrementalLpSolver:
        """The shared solver whose base block is every candidate's common part.

        The base bands are the chosen-victim bands for an *empty* victim
        set (controlled links normal, plus the exclusive/confined rows);
        a candidate set then overrides exactly its victims' bands to the
        abnormal requirement — byte-for-byte the bands a from-scratch
        :func:`build_chosen_victim_bands` would produce for that set.
        """
        if self._solver is None:
            base_bands = build_chosen_victim_bands(
                self.context, (), self.mode, confined=self.confined
            )
            self._solver = IncrementalLpSolver(
                None,
                self.context.baseline_estimate,
                self.context.support,
                self.context.num_paths,
                base_bands,
                cap=self.context.cap,
                sub_operator=self.context.support_operator,
                consistency_columns=(
                    self.context.residual_projector_support() if self.stealthy else None
                ),
                engine=self.engine,
                presolve=self.presolve,
            )
        return self._solver

    def _victim_overrides(self, subset: tuple[int, ...]) -> dict[int, tuple[float, float]]:
        """Per-victim band override: estimate must exceed the abnormal bound."""
        abnormal_bound = self.context.thresholds.upper + self.context.margin
        return {j: (abnormal_bound, math.inf) for j in subset}

    def run(self) -> AttackOutcome:
        """Scan candidate victim sets; return the best feasible outcome.

        Infeasible when no candidate set admits a solution (e.g. the
        attacker sits on no measurement path at all).
        """
        if not self.candidates:
            return AttackOutcome.infeasible(
                self.strategy_name, "no manipulable victim candidates"
            )
        pending, enumerated, skipped_controlled = self._enumerate_subsets()
        if self.analytic and self.stop_at_first_feasible:
            outcome = self._analytic_scan(pending, enumerated, skipped_controlled)
            if outcome is not None:
                return outcome
        solver = self._candidate_solver()
        pruned_before = solver.presolve_pruned
        best_solution = None
        best_victims: tuple[int, ...] = ()
        trace: list[dict] = []
        solved = 0
        solutions = solver.solve_many(
            self._victim_overrides(subset) for subset in pending
        )
        for subset, solution in zip(pending, solutions):
            solved += 1
            trace.append(
                {
                    "victims": subset,
                    "feasible": solution.feasible,
                    "damage": solution.damage,
                }
            )
            if solution.feasible and (
                best_solution is None or solution.damage > best_solution.damage
            ):
                best_solution = solution
                best_victims = subset
                if self.stop_at_first_feasible:
                    break
        if best_solution is None or best_solution.manipulation is None:
            return AttackOutcome.infeasible(
                self.strategy_name,
                f"no feasible victim set among {solved} candidates",
            )
        outcome = AttackOutcome.from_manipulation(
            self.strategy_name,
            self.context,
            best_solution.manipulation,
            best_victims,
            best_solution.status,
            extras={
                "mode": self.mode,
                "stealthy": self.stealthy,
                "search_trace": trace,
                "candidates_tried": solved,
                "subsets_examined": enumerated,
                "skipped_controlled": skipped_controlled,
                "unbounded": best_solution.unbounded,
                "engine": solver.engine,
                "presolve_pruned": solver.presolve_pruned - pruned_before,
            },
        )
        return outcome

    def _enumerate_subsets(self) -> tuple[list[tuple[int, ...]], int, int]:
        """The candidate subsets the scan will solve, plus scan bookkeeping.

        Enumeration is cheap (tuple arithmetic only) and separated from
        solving so the LP loop can stream through
        :meth:`IncrementalLpSolver.solve_many` — lazy, so a
        ``stop_at_first_feasible`` consumer stops paying immediately.
        """
        pending: list[tuple[int, ...]] = []
        enumerated = 0
        skipped_controlled = 0
        for subset in combinations(self.candidates, self.victim_set_size):
            if enumerated >= self.max_combinations:
                break
            enumerated += 1
            if any(j in self.context.controlled_links for j in subset):
                skipped_controlled += 1
                continue
            pending.append(subset)
        return pending, enumerated, skipped_controlled

    def _analytic_scan(
        self,
        pending: list[tuple[int, ...]],
        enumerated: int,
        skipped_controlled: int,
    ) -> AttackOutcome | None:
        """Existence pre-pass: first candidate with a Theorem-1 witness.

        Only consulted for ``stop_at_first_feasible`` searches — the
        witness certifies feasibility with a *minimal* forged shift, not
        maximal damage.  Returns None when no candidate admits the fast
        path; the caller falls back to the LP scan.
        """
        for subset in pending:
            bands = build_chosen_victim_bands(
                self.context, subset, self.mode, confined=self.confined
            )
            try:
                bands.validate()
            except ValidationError:
                continue
            witness = analytic_witness(
                self.context, bands, subset, stealthy=self.stealthy
            )
            if witness is not None and witness.manipulation is not None:
                return AttackOutcome.from_manipulation(
                    self.strategy_name,
                    self.context,
                    witness.manipulation,
                    subset,
                    witness.status,
                    extras={
                        "mode": self.mode,
                        "stealthy": self.stealthy,
                        "search_trace": [
                            {
                                "victims": subset,
                                "feasible": True,
                                "damage": witness.damage,
                            }
                        ],
                        "candidates_tried": 0,
                        "subsets_examined": enumerated,
                        "skipped_controlled": skipped_controlled,
                        "unbounded": witness.unbounded,
                        "analytic": True,
                    },
                )
        return None

    def damage_by_victim(self) -> dict[int, float]:
        """Damage achievable per single victim link (nan when infeasible).

        Convenience for Fig. 5-style analysis: which scapegoat is most
        profitable, and by how much.  Reuses the shared incremental solver
        through :meth:`IncrementalLpSolver.solve_many`, so the scan costs
        one (warm-started) LP solve per candidate — fewer when the
        presolve pruner rejects a candidate outright.
        """
        solver = self._candidate_solver()
        result: dict[int, float] = {}
        solutions = solver.solve_many(
            self._victim_overrides((j,)) for j in self.candidates
        )
        for j, solution in zip(self.candidates, solutions):
            result[j] = solution.damage if solution.feasible else float("nan")
        return result
