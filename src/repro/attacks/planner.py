"""Compiling a solved manipulation vector into packet behaviour.

The LP outputs *per-path* damage ``m_i``; real attackers are *nodes*.  The
compiler assigns each manipulated path's delay to one attacker node on that
path (the first along the traversal, preferring interior nodes over the
destination monitor, since an interior attacker delays forwarding while a
malicious destination must lie about arrival times — both work, forwarding
delay is the paper's canonical mechanism) and emits the per-node
:class:`~repro.measurement.simulator.PathManipulationAgent` policies the
discrete-event simulator executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

import numpy as np

from repro.attacks.constraints import validate_manipulation_vector, manipulable_paths
from repro.exceptions import AttackError
from repro.measurement.simulator.adversary import PathManipulationAgent
from repro.routing.paths import PathSet
from repro.topology.graph import NodeId

__all__ = ["AttackPlan", "compile_attack_plan"]

#: Manipulation entries below this are treated as zero (solver round-off).
_ZERO_TOL = 1e-9


@dataclass(frozen=True)
class AttackPlan:
    """An executable attack: per-node agents realising a manipulation vector.

    Attributes
    ----------
    manipulation:
        The validated vector ``m``.
    agents:
        Mapping attacker node -> packet-policy agent (only nodes with at
        least one action appear).
    assignment:
        Mapping path row -> the attacker node charged with that path.
    """

    manipulation: np.ndarray
    agents: dict[NodeId, PathManipulationAgent]
    assignment: dict[int, NodeId]

    @property
    def total_damage(self) -> float:
        """``||m||_1`` — Definition 2."""
        return float(np.sum(self.manipulation))

    def agent_for(self, node: NodeId) -> PathManipulationAgent | None:
        """The agent installed at ``node`` (None when node acts honestly)."""
        return self.agents.get(node)


def compile_attack_plan(
    path_set: PathSet,
    attacker_nodes: Iterable[NodeId],
    manipulation: np.ndarray,
    *,
    cap: float | None = None,
) -> AttackPlan:
    """Compile ``m`` into per-node simulator agents.

    Validates Constraint 1 against the attacker set first — a vector that
    manipulates an attacker-free path is unimplementable and rejected with
    :class:`AttackError`.
    """
    attackers = list(dict.fromkeys(attacker_nodes))
    support = manipulable_paths(path_set, attackers)
    m = validate_manipulation_vector(
        manipulation, support, path_set.num_paths, cap=cap
    )
    attacker_set = set(attackers)
    agents: dict[NodeId, PathManipulationAgent] = {}
    assignment: dict[int, NodeId] = {}
    for row in support:
        delay = float(m[row])
        if delay <= _ZERO_TOL:
            continue
        path = path_set.path(row)
        on_path = [node for node in path.nodes if node in attacker_set]
        if not on_path:  # pragma: no cover - excluded by validation above
            raise AttackError(f"no attacker on manipulated path {row}")
        interior = [node for node in on_path if node != path.target]
        chosen = interior[0] if interior else on_path[0]
        agent = agents.setdefault(chosen, PathManipulationAgent(node=chosen))
        agent.set_action(row, extra_delay=delay)
        assignment[row] = chosen
    return AttackPlan(manipulation=m.copy(), agents=agents, assignment=assignment)
