"""A hybrid strategy: frame a victim *and* blur the neighbourhood.

Section III closes with "attackers may also develop more sophisticated
strategies based upon these three ones".  This module implements one such
composition: the victim set must look *abnormal* (as in chosen-victim)
while the attacker's own links are pinned to the *uncertain* band rather
than normal (as in obfuscation).  The operator's report then shows one
glaring culprit plus a murky region — a plausible post-incident picture
(congestion spreading around a failure) that draws even less suspicion
than surgically clean attacker links, at the price of admitting the
attacker's links are "somewhat affected".
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.attacks.base import AttackContext, AttackOutcome
from repro.attacks.lp import BandConstraints, solve_manipulation_lp
from repro.exceptions import AttackConstraintError

__all__ = ["FrameAndBlurAttack"]


class FrameAndBlurAttack:
    """Victims abnormal, attacker links uncertain, maximise damage.

    Parameters
    ----------
    context:
        The shared attack context.
    victim_links:
        The scapegoat set ``L_s`` (disjoint from ``L_m``, as always).
    blur_links:
        Additional links to pin into the uncertain band alongside
        ``L_m`` (default: none — only the attacker's links are blurred).
    """

    strategy_name = "frame-and-blur"

    def __init__(
        self,
        context: AttackContext,
        victim_links: Iterable[int],
        *,
        blur_links: Iterable[int] = (),
        stealthy: bool = False,
    ) -> None:
        self.context = context
        self.stealthy = stealthy
        victims = tuple(sorted(set(int(v) for v in victim_links)))
        if not victims:
            raise AttackConstraintError("victim link set must not be empty")
        for v in victims:
            if not 0 <= v < context.num_links:
                raise AttackConstraintError(f"victim link index {v} out of range")
        overlap = set(victims) & set(context.controlled_links)
        if overlap:
            raise AttackConstraintError(
                f"victim links {sorted(overlap)} are attacker-controlled (eq. 7)"
            )
        blur = set(int(b) for b in blur_links)
        if blur & set(victims):
            raise AttackConstraintError("blur links must not overlap the victims")
        self.victim_links = victims
        self.blur_links = tuple(sorted(blur | set(context.controlled_links)))

    def run(self) -> AttackOutcome:
        """Solve the composed LP; returns a (possibly infeasible) outcome."""
        context = self.context
        bands = BandConstraints.unbounded(context.num_links)
        abnormal_bound = context.thresholds.upper + context.margin
        uncertain_lo = context.thresholds.lower + context.margin
        uncertain_hi = context.thresholds.upper - context.margin
        for j in self.victim_links:
            bands.require_at_least(j, abnormal_bound)
        for j in self.blur_links:
            bands.require_at_least(j, uncertain_lo)
            bands.require_at_most(j, uncertain_hi)
        solution = solve_manipulation_lp(
            None,
            context.baseline_estimate,
            context.support,
            context.num_paths,
            bands,
            cap=context.cap,
            sub_operator=context.support_operator,
            consistency_columns=(
                context.residual_projector_support() if self.stealthy else None
            ),
        )
        if not solution.feasible or solution.manipulation is None:
            return AttackOutcome.infeasible(
                self.strategy_name, solution.status, self.victim_links
            )
        return AttackOutcome.from_manipulation(
            self.strategy_name,
            context,
            solution.manipulation,
            self.victim_links,
            solution.status,
            extras={
                "blur_links": list(self.blur_links),
                "stealthy": self.stealthy,
                "unbounded": solution.unbounded,
            },
        )
