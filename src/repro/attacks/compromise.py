"""Compromise planning: *which nodes* to capture for a target victim.

The paper fixes the attacker set and asks what it can do; the natural
planning question runs the other way — given a victim link the adversary
wants to frame, which nodes must be compromised so that the attack is
guaranteed feasible and undetectable (a *perfect cut*, Theorems 1 and 3)?

A node set perfectly cuts a victim iff it hits every measurement path
crossing the victim.  Minimum hitting set is NP-hard in general;
:func:`minimum_perfect_cut_nodes` uses the standard greedy (ln-n
approximation), which is exact on the small victim-path families
measurement path sets produce in practice.  Victim endpoints are never
eligible: compromising them would put the victim into the attacker's own
link set ``L_m``, violating the disjointness constraint (eq. 7).

:func:`compromise_budget_ranking` inverts the analysis across all links:
for each potential victim, the minimum number of compromised nodes that
suffices — the adversary's shopping list, and equally the defender's risk
ranking.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.attacks.cuts import is_perfect_cut, victim_paths
from repro.exceptions import AttackConstraintError, AttackError
from repro.routing.paths import PathSet
from repro.topology.graph import NodeId

__all__ = ["minimum_perfect_cut_nodes", "compromise_budget_ranking"]


def minimum_perfect_cut_nodes(
    path_set: PathSet,
    victim_links: Iterable[int],
    *,
    forbidden: Iterable[NodeId] = (),
    max_nodes: int | None = None,
) -> list[NodeId] | None:
    """Greedy-minimal node set that perfectly cuts the victim links.

    Returns ``None`` when no admissible set exists — some victim path has
    no eligible node (e.g. a one-hop victim path whose two endpoints are
    the victim's own endpoints), or the greedy set would exceed
    ``max_nodes``.  ``forbidden`` adds extra ineligible nodes (e.g. ones
    the adversary cannot reach); victim endpoints are always ineligible.
    """
    victims = sorted(set(int(v) for v in victim_links))
    if not victims:
        raise AttackConstraintError("victim link set must not be empty")
    rows = victim_paths(path_set, victims)
    if not rows:
        return []  # unmeasured victims are vacuously cut (and pointless)

    blocked: set[NodeId] = set(forbidden)
    for v in victims:
        link = path_set.topology.link(v)
        blocked.add(link.u)
        blocked.add(link.v)

    uncovered: dict[int, frozenset] = {}
    for row in rows:
        eligible = frozenset(
            node for node in path_set.path(row).nodes if node not in blocked
        )
        if not eligible:
            return None
        uncovered[row] = eligible

    chosen: list[NodeId] = []
    while uncovered:
        if max_nodes is not None and len(chosen) >= max_nodes:
            return None
        counts: dict[NodeId, int] = {}
        for eligible in uncovered.values():
            for node in eligible:
                counts[node] = counts.get(node, 0) + 1
        # Deterministic tie-breaking by label repr keeps runs reproducible.
        best = max(counts, key=lambda n: (counts[n], repr(n)))
        chosen.append(best)
        uncovered = {
            row: eligible
            for row, eligible in uncovered.items()
            if best not in eligible
        }
    if not is_perfect_cut(path_set, chosen, victims):
        raise AttackError(
            "greedy cover terminated without a perfect cut "
            f"(chosen nodes {chosen!r})"
        )
    return chosen


def compromise_budget_ranking(
    path_set: PathSet,
    *,
    forbidden: Iterable[NodeId] = (),
    max_nodes: int | None = None,
) -> list[dict]:
    """Per-link compromise budget for a guaranteed, undetectable frame-up.

    For every measured link, computes the greedy-minimal perfect-cut node
    set (``None`` when impossible within ``max_nodes``).  Returns records
    sorted by ascending budget — the adversary's cheapest victims first,
    equivalently the links a defender should watch hardest.  Each record:
    ``{"link": index, "endpoints": (u, v), "budget": int | None,
    "nodes": [...] | None, "victim_paths": int}``.
    """
    ranking = []
    for link in path_set.topology.links():
        rows = path_set.paths_containing_link(link.index)
        if not rows:
            continue
        nodes = minimum_perfect_cut_nodes(
            path_set, [link.index], forbidden=forbidden, max_nodes=max_nodes
        )
        ranking.append(
            {
                "link": link.index,
                "endpoints": (link.u, link.v),
                "budget": len(nodes) if nodes is not None else None,
                "nodes": nodes,
                "victim_paths": len(rows),
            }
        )
    ranking.sort(
        key=lambda r: (r["budget"] is None, r["budget"] or 0, r["link"])
    )
    return ranking
