"""The shared linear program behind every scapegoating strategy.

All three strategies of Section III maximise damage ``||m||_1`` subject to
Constraint 1 and *band constraints on the estimate*.  Because tomography's
estimator is linear, the estimate under manipulation is affine in ``m``:

    x_hat(m) = R⁺ (R x* + m) = x* + Q m        (Q = R⁺, full column rank)

so "link j must look normal/abnormal/uncertain" becomes a pair of linear
inequalities in ``m``, and each strategy is one LP (proof of Theorem 1
writes the same thing from the ``Δx_hat`` side; :func:`theorem1_manipulation`
implements that constructive direction for perfect cuts, and
:func:`theorem1_fast_path` turns it into a solver-free feasibility
witness when a perfect cut is detected).

Constraint assembly is vectorised: the finite band bounds are selected by
numpy masks and turned into inequality rows in one shot, preserving the
historical per-link (upper row, then lower row) ordering so solver vertex
selection is unchanged.  Candidate scans that vary only a few links' bands
(max-damage, per-victim damage maps, the obfuscation greedy growth)
should use :class:`IncrementalLpSolver`, which assembles the shared
constraint block once and splices per-candidate rows into it.

Two solver engines serve the assembled problem
(:func:`repro.attacks.lp_engine.resolve_engine_name` decides which):

- ``"scipy"`` (the default) — one :func:`scipy.optimize.linprog` HiGHS
  call per solve, byte-identical to the historical path;
- ``"highs"`` — a :class:`~repro.attacks.lp_engine.PersistentLpSolver`
  holding one mutable HiGHS model per solver instance: candidate solves
  edit only the overridden links' row bounds and reuse the previous
  simplex basis (warm start).  Opt in per solver (``engine=``) or
  globally (``REPRO_LP_ENGINE=highs``/``auto``); requires the ``highspy``
  bindings (standalone or scipy-vendored).  Optimal damage matches the
  scipy engine to solver tolerance; the chosen vertex may differ when
  optima are non-unique.

An unbounded LP (possible only with an infinite per-path cap) is reported
as feasible with ``unbounded=True`` and re-solved under a large finite cap
so callers still get a concrete vector; the re-solve reuses the
already-assembled constraint arrays, and the cap is configurable via
:func:`resolve_unbounded_cap` (``REPRO_LP_RESOLVE_CAP`` or an explicit
``resolve_cap=`` argument).  The reported ``damage`` is always the L1
norm of the *returned* vector — unboundedness is signalled exclusively
through the flag, never as an infinite damage value, so downstream
aggregation (max-damage scans, reporting tables) stays finite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Mapping, Sequence

import numpy as np
import scipy.sparse
from scipy.optimize import linprog

from repro import config
from repro.attacks.lp_engine import resolve_engine_name
from repro.exceptions import AttackError, ValidationError
from repro.obs import core as obs
from repro.perf import instrumentation as perf
from repro.utils.validation import check_finite_vector

__all__ = [
    "BandConstraints",
    "IncrementalLpSolver",
    "LpSolution",
    "PRESOLVE_STATUS_PREFIX",
    "RESOLVE_CAP_ENV_VAR",
    "resolve_unbounded_cap",
    "solve_manipulation_lp",
    "theorem1_fast_path",
    "theorem1_manipulation",
]

#: Default cap substituted when re-solving an unbounded LP to return a
#: finite vector (override via ``REPRO_LP_RESOLVE_CAP`` or ``resolve_cap=``).
_UNBOUNDED_RESOLVE_CAP = 1e7

#: Environment variable overriding the unbounded re-solve cap.
RESOLVE_CAP_ENV_VAR = "REPRO_LP_RESOLVE_CAP"

#: Status prefix marking solutions rejected by the Constraint-1 presolve
#: pruner without any LP being assembled or solved.
PRESOLVE_STATUS_PREFIX = "presolve:"

#: Constraint-block size (rows * cols) above which sparse handoff is considered.
_SPARSE_BLOCK_SIZE = 65536

#: Exact-zero density at or below which a large block ships to HiGHS as CSR.
_SPARSE_BLOCK_DENSITY = 0.25


def resolve_unbounded_cap(explicit: float | None = None) -> float:
    """The finite cap used to re-solve an unbounded LP.

    Precedence: explicit argument, then the ``REPRO_LP_RESOLVE_CAP``
    environment variable, then the library default (``1e7``).  The value
    must be a positive finite number — a non-positive or unparseable cap
    raises :class:`ValidationError` (a zero cap would silently turn every
    unbounded instance into the trivial ``m = 0``).
    """
    if explicit is not None:
        value, source = explicit, "resolve_cap argument"
    else:
        raw = (config.raw(RESOLVE_CAP_ENV_VAR) or "").strip()
        if not raw:
            return _UNBOUNDED_RESOLVE_CAP
        try:
            value = float(raw)
        except ValueError as exc:
            raise ValidationError(
                f"{RESOLVE_CAP_ENV_VAR} must be a number, got {raw!r}"
            ) from exc
        source = f"{RESOLVE_CAP_ENV_VAR} environment variable"
    value = float(value)
    if not math.isfinite(value) or value <= 0:
        raise ValidationError(
            f"unbounded re-solve cap must be positive and finite, "
            f"got {value} ({source})"
        )
    return value


def _maybe_sparse(block, nnz: int | None = None):
    """Hand a constraint block to HiGHS in CSR form when it pays off.

    HiGHS accepts sparse ``A_ub``/``A_eq`` directly; converting is only a
    win for large blocks with mostly exact zeros (e.g. support-restricted
    band rows at ISP scale).  Small or dense blocks pass through untouched
    — the solver sees identical constraints either way.  A block that is
    *already* sparse passes straight through, and callers that track
    their block's nonzero count incrementally (``IncrementalLpSolver``)
    pass it as ``nnz`` so unchanged base blocks are never recounted.
    """
    if block is None or scipy.sparse.issparse(block):
        return block
    if block.size < _SPARSE_BLOCK_SIZE:
        return block
    if nnz is None:
        nnz = int(np.count_nonzero(block))
    if nnz / block.size > _SPARSE_BLOCK_DENSITY:
        return block
    return scipy.sparse.csr_matrix(block)


@dataclass
class BandConstraints:
    """Per-link bounds on the *estimated* metric vector.

    ``lower[j] <= x_hat[j] <= upper[j]``; entries default to unbounded.
    Strategy classes translate Definition 1 states into these bands
    (already including any strictness margin).
    """

    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def unbounded(cls, num_links: int) -> "BandConstraints":
        """No constraints on any link estimate."""
        return cls(
            lower=np.full(num_links, -np.inf),
            upper=np.full(num_links, np.inf),
        )

    def require_at_most(self, link_index: int, bound: float) -> None:
        """Tighten: estimate of ``link_index`` must be <= ``bound``."""
        self.upper[link_index] = min(self.upper[link_index], bound)

    def require_at_least(self, link_index: int, bound: float) -> None:
        """Tighten: estimate of ``link_index`` must be >= ``bound``."""
        self.lower[link_index] = max(self.lower[link_index], bound)

    def validate(self) -> None:
        """Raise when some band is empty (lower > upper)."""
        if self.lower.shape != self.upper.shape:
            raise ValidationError("band bound vectors must have equal shape")
        bad = np.nonzero(self.lower > self.upper)[0]
        if bad.size:
            j = int(bad[0])
            raise ValidationError(
                f"empty band for link {j}: [{self.lower[j]}, {self.upper[j]}]"
            )


@dataclass(frozen=True)
class LpSolution:
    """Outcome of one manipulation LP.

    ``manipulation`` is the full-length vector (zeros off support).
    ``damage`` is ``||m||_1`` (Definition 2) *of the returned vector* —
    always finite, and always equal to ``manipulation.sum()`` when a
    vector is returned.  ``feasible`` is the paper's success criterion;
    ``unbounded`` flags that the true optimum is infinite and the vector
    (and its damage) come from a re-solve under a large finite cap.
    Callers that want to treat unbounded optima specially must branch on
    the flag, never on ``damage``.
    """

    feasible: bool
    manipulation: np.ndarray | None
    damage: float
    status: str
    unbounded: bool = False


def _checked_support(support: Sequence[int], num_paths: int) -> list[int]:
    """Sorted, deduplicated support rows, range-checked against ``R``."""
    support_list = sorted(set(int(s) for s in support))
    for row in support_list:
        if not 0 <= row < num_paths:
            raise AttackError(f"support row {row} out of range [0, {num_paths})")
    return support_list


def _assemble_band_rows(
    sub_operator: np.ndarray,
    lower: np.ndarray,
    upper: np.ndarray,
    x_true: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised inequality assembly for the estimate bands.

    Returns ``(a_ub, b_ub, keys)`` where row order matches the historical
    per-link interleaving (link 0 upper, link 0 lower, link 1 upper, ...)
    and ``keys[i] = 2 * link + is_lower`` identifies each row for
    incremental edits.  Finite bounds are selected with masks — no Python
    loop over links.
    """
    up_idx = np.nonzero(np.isfinite(upper))[0]
    lo_idx = np.nonzero(np.isfinite(lower))[0]
    keys = np.concatenate([2 * up_idx, 2 * lo_idx + 1])
    order = np.argsort(keys, kind="stable")
    links = np.concatenate([up_idx, lo_idx])[order]
    signs = np.concatenate(
        [np.ones(up_idx.size), -np.ones(lo_idx.size)]
    )[order]
    a_ub = signs[:, None] * sub_operator[links]
    b_ub = np.concatenate(
        [upper[up_idx] - x_true[up_idx], x_true[lo_idx] - lower[lo_idx]]
    )[order]
    return a_ub, b_ub, keys[order]


def _assemble_consistency(
    consistency_matrix: np.ndarray | None,
    support_list: list[int],
    num_paths: int,
    *,
    columns: np.ndarray | None = None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Equality block ``C m = 0`` restricted to the supported columns.

    Only the supported columns are variables; off-support entries of ``m``
    are zero and drop out of ``C m = 0``.  Numerically trivial rows are
    discarded to help the solver.  ``columns`` supplies the pre-sliced
    ``C[:, support]`` block directly (|P| x k, support in sorted order) —
    the sparse backend produces it matrix-free, so the full |P| x |P|
    projector never needs to exist.
    """
    if columns is not None:
        sub = np.asarray(columns, dtype=float)
        if sub.shape != (num_paths, len(support_list)):
            raise AttackError(
                f"consistency columns must be ({num_paths} x {len(support_list)}), "
                f"got {sub.shape}"
            )
    elif consistency_matrix is None:
        return None, None
    else:
        cmat = np.asarray(consistency_matrix, dtype=float)
        if cmat.shape != (num_paths, num_paths):
            raise AttackError(
                f"consistency matrix must be ({num_paths} x {num_paths}), got {cmat.shape}"
            )
        sub = cmat[:, support_list]
    keep = np.linalg.norm(sub, axis=1) > 1e-12
    if not np.any(keep):
        return None, None
    return sub[keep], np.zeros(int(np.sum(keep)))


def _empty_support_solution(
    lower: np.ndarray, upper: np.ndarray, x_true: np.ndarray, num_paths: int
) -> LpSolution:
    """With an empty support the only candidate is ``m = 0``."""
    m0 = np.zeros(num_paths)
    ok = bool(np.all(x_true >= lower - 1e-9) and np.all(x_true <= upper + 1e-9))
    return LpSolution(
        feasible=ok,
        manipulation=m0 if ok else None,
        damage=0.0,
        status="empty support" + (" (baseline satisfies bands)" if ok else ""),
    )


def _pinned_at_cap(values: np.ndarray, cap: float) -> bool:
    """True when any entry sits at ``cap`` up to solver round-off.

    Uses a combined relative *and* absolute tolerance: a pure relative
    test (``v >= cap * (1 - 1e-9)``) degenerates for tiny caps, where the
    relative slack shrinks below the solver's absolute round-off.
    """
    tolerance = max(1e-9 * cap, 1e-12)
    return bool(np.any(values >= cap - tolerance))


def _solve_assembled(
    support_list: list[int],
    num_paths: int,
    a_ub,
    b_ub: np.ndarray | None,
    a_eq,
    b_eq: np.ndarray | None,
    cap: float | None,
    *,
    resolve_cap: float | None = None,
    a_ub_nnz: int | None = None,
) -> LpSolution:
    """Run HiGHS on pre-assembled constraints (``cap`` must be finite here);
    ``cap=None`` delegates to a large-cap solve and flags unboundedness.

    ``a_ub``/``a_eq`` may arrive dense or already in CSR form;
    ``a_ub_nnz`` is an optional nonzero-count hint so incrementally
    maintained blocks skip the density recount inside :func:`_maybe_sparse`.
    """
    if cap is None:
        # HiGHS can misclassify feasible-but-unbounded instances of this LP
        # as infeasible when variables are uncapped; solve under a large
        # finite cap instead and infer unboundedness from variables pinned
        # at that cap.  The constraint arrays are reused as-is.
        large_cap = resolve_unbounded_cap(resolve_cap)
        capped = _solve_assembled(
            support_list,
            num_paths,
            a_ub,
            b_ub,
            a_eq,
            b_eq,
            large_cap,
            a_ub_nnz=a_ub_nnz,
        )
        if not capped.feasible or capped.manipulation is None:
            return capped
        if _pinned_at_cap(capped.manipulation, large_cap):
            # The optimum is infinite, but the damage reported must stay
            # the L1 norm of the concrete (capped) vector handed back —
            # an inf here would poison every downstream aggregate that
            # sums or tabulates damages.  The flag carries the infinity.
            if obs.is_enabled():
                obs.event(
                    "lp_unbounded_resolve",
                    resolve_cap=large_cap,
                    capped_damage=capped.damage,
                )
            return LpSolution(
                feasible=True,
                manipulation=capped.manipulation,
                damage=capped.damage,
                status="unbounded (re-solved with large cap)",
                unbounded=True,
            )
        return capped

    k = len(support_list)
    perf.record_event("lp_solve")
    a_ub_opt = _maybe_sparse(a_ub, a_ub_nnz)
    a_eq_opt = _maybe_sparse(a_eq)
    with perf.stage("lp_solve"):
        result = linprog(
            c=-np.ones(k),
            A_ub=a_ub_opt,
            b_ub=b_ub,
            A_eq=a_eq_opt,
            b_eq=b_eq,
            bounds=[(0.0, cap)] * k,
            method="highs",
        )
    if obs.is_enabled():
        sparse_handoff = scipy.sparse.issparse(a_ub_opt) or scipy.sparse.issparse(
            a_eq_opt
        )
        obs.event(
            "lp_solve",
            success=bool(result.success),
            status=str(result.message),
            iterations=int(getattr(result, "nit", -1)),
            variables=k,
            rows_ub=0 if a_ub is None else int(a_ub.shape[0]),
            rows_eq=0 if a_eq is None else int(a_eq.shape[0]),
            cap=cap,
            backend="sparse" if sparse_handoff else "dense",
        )

    if not result.success:
        return LpSolution(
            feasible=False,
            manipulation=None,
            damage=0.0,
            status=result.message,
        )
    m = np.zeros(num_paths)
    m[support_list] = np.maximum(result.x, 0.0)  # clip solver round-off
    return LpSolution(
        feasible=True,
        manipulation=m,
        damage=float(m.sum()),
        status=result.message,
    )


def _resolve_sub_operator(
    estimator_operator: np.ndarray | None,
    sub_operator: np.ndarray | None,
    support_list: list[int],
    num_paths: int,
) -> np.ndarray:
    """The |L| x k support-restricted operator block, whichever way it came.

    ``sub_operator`` (columns in sorted-support order) wins when given —
    the sparse backend computes exactly those columns matrix-free and the
    full ``R⁺`` never exists.  Otherwise the dense operator is sliced.
    """
    if sub_operator is not None:
        sub = np.asarray(sub_operator, dtype=float)
        if sub.ndim != 2 or sub.shape[1] != len(support_list):
            raise AttackError(
                f"sub operator must be (num_links x {len(support_list)}), "
                f"got {sub.shape}"
            )
        return sub
    if estimator_operator is None:
        raise AttackError("need either estimator_operator or sub_operator")
    operator = np.asarray(estimator_operator, dtype=float)
    if operator.ndim != 2 or operator.shape[1] != num_paths:
        raise AttackError(
            f"estimator operator must be (num_links x {num_paths}), got {operator.shape}"
        )
    return operator[:, support_list]


def solve_manipulation_lp(
    estimator_operator: np.ndarray | None,
    true_metrics: np.ndarray,
    support: Sequence[int],
    num_paths: int,
    bands: BandConstraints,
    *,
    cap: float | None = 2000.0,
    consistency_matrix: np.ndarray | None = None,
    sub_operator: np.ndarray | None = None,
    consistency_columns: np.ndarray | None = None,
    resolve_cap: float | None = None,
) -> LpSolution:
    """Maximise ``sum(m)`` subject to Constraint 1, ``m <= cap`` and bands.

    Parameters
    ----------
    estimator_operator:
        ``Q = R⁺`` (|L| x |P|) — the operator's public estimation map.
    true_metrics:
        The *baseline estimate* — what tomography reports with no attack
        (``Q R x*``; equal to the ground truth ``x*`` under full column
        rank).  The attacker observes its local links and, like the paper,
        is assumed to know routine performance well enough to plan;
        sensitivity to this assumption is explored in the ablation
        benches.
    support:
        Manipulable path rows (paths containing an attacker).
    bands:
        Estimate bands encoding the strategy's state constraints.
    cap:
        Per-path manipulation cap in metric units (paper: 2000 ms).
        ``None`` means unlimited.
    consistency_matrix:
        Optional *stealth* constraint ``C m = 0`` (|P| x |P|).  Passing the
        residual projector ``I - R R⁺`` restricts the attacker to
        manipulations lying in the column space of ``R`` — measurements
        that remain perfectly consistent with *some* link-metric vector,
        hence invisible to the eq. (23) detector.  Theorem 3: such a
        solution always exists under a perfect cut and (generically) not
        otherwise.
    sub_operator:
        Pre-sliced ``Q[:, support]`` (|L| x k, sorted support order).
        When given, ``estimator_operator`` may be None — sparse-backend
        callers hand the support columns over without ever materialising
        the full pseudo-inverse.
    consistency_columns:
        Pre-sliced stealth block ``C[:, support]`` (|P| x k); same idea
        for the residual projector.
    resolve_cap:
        Finite cap substituted when an uncapped LP turns out unbounded
        (default: ``REPRO_LP_RESOLVE_CAP`` or ``1e7``); see
        :func:`resolve_unbounded_cap`.

    This one-shot entry point always runs the cold scipy path — it is the
    bit-compatibility reference.  Candidate scans wanting warm starts use
    :class:`IncrementalLpSolver` with ``engine="highs"``.
    """
    x_true = check_finite_vector(true_metrics, "true_metrics")
    bands.validate()
    if cap is not None and cap < 0:
        raise ValidationError(f"cap must be non-negative or None, got {cap}")

    support_list = _checked_support(support, num_paths)

    # Baseline estimate without manipulation is x* itself (honest system);
    # bands must at least admit m = 0 on unconstrained links, but
    # constrained links may *require* manipulation, so feasibility is the
    # LP's job.  With an empty support the only candidate is m = 0.
    if not support_list:
        return _empty_support_solution(bands.lower, bands.upper, x_true, num_paths)

    with perf.stage("lp_assembly"):
        sub = _resolve_sub_operator(
            estimator_operator, sub_operator, support_list, num_paths
        )
        if sub.shape[0] != x_true.shape[0]:
            raise AttackError(
                f"operator rows ({sub.shape[0]}) must match true_metrics "
                f"length ({x_true.shape[0]})"
            )
        a_ub, b_ub, _ = _assemble_band_rows(sub, bands.lower, bands.upper, x_true)
        if a_ub.shape[0] == 0:
            a_ub, b_ub = None, None
        a_eq, b_eq = _assemble_consistency(
            consistency_matrix, support_list, num_paths, columns=consistency_columns
        )

    return _solve_assembled(
        support_list, num_paths, a_ub, b_ub, a_eq, b_eq, cap, resolve_cap=resolve_cap
    )


class IncrementalLpSolver:
    """Manipulation-LP solver with an incrementally editable band block.

    Candidate scans (max-damage, per-victim damage maps, the obfuscation
    greedy growth) solve thousands of LPs that differ only in one or two
    links' bands.  This solver validates the problem, slices the
    support-restricted operator, and assembles the *base* band rows and
    the consistency block exactly once; each :meth:`solve` call splices
    the overridden links' rows into the cached block (dropping the links'
    base rows first) and hands the result to HiGHS.  Row ordering matches
    :func:`solve_manipulation_lp`'s interleaved convention, so solutions
    are identical to a from-scratch assembly of the edited bands.

    Three optimisation layers sit on top of the splice:

    - ``engine="highs"`` (or ``REPRO_LP_ENGINE=highs``/``auto``) swaps the
      per-candidate :func:`scipy.optimize.linprog` call for one persistent
      warm-started HiGHS model
      (:class:`~repro.attacks.lp_engine.PersistentLpSolver`): candidate
      solves edit only the overridden links' row bounds and reuse the
      previous simplex basis.  Optimal damage agrees with the scipy
      engine to solver tolerance; the default (``"scipy"``) stays
      byte-identical to the historical path.
    - ``presolve=True`` (default) rejects overrides whose required
      estimate shift provably exceeds what any Constraint-1 manipulation
      can deliver (:meth:`presolve_prune_reason`) before anything is
      assembled; pruned solves return an infeasible solution whose status
      starts with :data:`PRESOLVE_STATUS_PREFIX` and are counted in
      :attr:`presolve_pruned` (and as ``lp_presolve_prune`` obs events).
    - the base block's sparsity decision and conversions are cached, so
      repeated solves never recount an unchanged block's nonzeros.

    Parameters mirror :func:`solve_manipulation_lp`; ``base_bands`` is the
    constraint state shared by every candidate.
    """

    def __init__(
        self,
        estimator_operator: np.ndarray | None,
        true_metrics: np.ndarray,
        support: Sequence[int],
        num_paths: int,
        base_bands: BandConstraints,
        *,
        cap: float | None = 2000.0,
        consistency_matrix: np.ndarray | None = None,
        sub_operator: np.ndarray | None = None,
        consistency_columns: np.ndarray | None = None,
        engine: str | None = None,
        presolve: bool = True,
        resolve_cap: float | None = None,
    ) -> None:
        self.num_paths = int(num_paths)
        self.cap = cap
        if cap is not None and cap < 0:
            raise ValidationError(f"cap must be non-negative or None, got {cap}")
        self.engine = resolve_engine_name(engine)
        self.presolve = bool(presolve)
        self.resolve_cap = resolve_cap
        if resolve_cap is not None:
            resolve_unbounded_cap(resolve_cap)  # fail fast on bad values
        self.presolve_pruned = 0
        self._x_true = check_finite_vector(true_metrics, "true_metrics")
        self.num_links = int(self._x_true.shape[0])
        base_bands.validate()
        self._base_lower = np.array(base_bands.lower, dtype=float)
        self._base_upper = np.array(base_bands.upper, dtype=float)
        self._support = _checked_support(support, num_paths)
        with perf.stage("lp_assembly"):
            self._sub_operator = _resolve_sub_operator(
                estimator_operator, sub_operator, self._support, num_paths
            )
            if self._sub_operator.shape[0] != self.num_links:
                raise AttackError(
                    f"operator rows ({self._sub_operator.shape[0]}) must match "
                    f"true_metrics length ({self.num_links})"
                )
            self._base_a, self._base_b, self._base_keys = _assemble_band_rows(
                self._sub_operator, self._base_lower, self._base_upper, self._x_true
            )
            self._a_eq, self._b_eq = _assemble_consistency(
                consistency_matrix,
                self._support,
                num_paths,
                columns=consistency_columns,
            )
            # Cached sparsity bookkeeping: the base block's per-row nonzero
            # counts ride along through every splice, so a spliced block's
            # density decision costs a vector sum, never a full recount,
            # and the unchanged base / consistency blocks convert at most
            # once for the lifetime of the solver.
            self._base_row_nnz = (
                np.count_nonzero(self._base_a, axis=1)
                if self._base_a.shape[0]
                else np.zeros(0, dtype=int)
            )
            self._base_nnz = int(self._base_row_nnz.sum())
            self._base_a_opt = _maybe_sparse(self._base_a, self._base_nnz)
            self._a_eq_opt = _maybe_sparse(self._a_eq)
            # Presolve capacities: what any Constraint-1 manipulation can
            # do to each link's estimate (see lp_engine.prune_capacities).
            from repro.attacks.lp_engine import prune_capacities

            self._pos_capacity, self._neg_capacity = prune_capacities(
                self._sub_operator
            )
        self._persistent = None
        self._persistent_cap: float | None = None

    def _rows_for_overrides(
        self, overrides: Mapping[int, tuple[float, float]]
    ) -> tuple[np.ndarray | None, np.ndarray | None, int]:
        """Base rows with each overridden link's rows replaced, in order.

        The base keys are sorted, so each edited link's rows occupy one
        contiguous slice located by binary search; the replacement is a
        three-piece splice per link — no re-sort, no mask over the block.
        Returns ``(a_ub, b_ub, nnz)``; the nonzero count is maintained
        through the splice so the sparsity decision never rescans the
        block.
        """
        a_ub, b_ub, keys = self._base_a, self._base_b, self._base_keys
        row_nnz = self._base_row_nnz
        for j, (lower, upper) in overrides.items():
            lo_pos, hi_pos = np.searchsorted(keys, (2 * j, 2 * j + 2))
            add_a: list[np.ndarray] = []
            add_b: list[float] = []
            add_keys: list[int] = []
            if np.isfinite(upper):
                add_a.append(self._sub_operator[j])
                add_b.append(float(upper - self._x_true[j]))
                add_keys.append(2 * j)
            if np.isfinite(lower):
                add_a.append(-self._sub_operator[j])
                add_b.append(float(self._x_true[j] - lower))
                add_keys.append(2 * j + 1)
            if add_a:
                add_nnz = [int(np.count_nonzero(row)) for row in add_a]
                a_ub = np.concatenate([a_ub[:lo_pos], add_a, a_ub[hi_pos:]])
                b_ub = np.concatenate([b_ub[:lo_pos], add_b, b_ub[hi_pos:]])
                keys = np.concatenate([keys[:lo_pos], add_keys, keys[hi_pos:]])
                row_nnz = np.concatenate(
                    [row_nnz[:lo_pos], add_nnz, row_nnz[hi_pos:]]
                )
            elif hi_pos > lo_pos:
                a_ub = np.concatenate([a_ub[:lo_pos], a_ub[hi_pos:]])
                b_ub = np.concatenate([b_ub[:lo_pos], b_ub[hi_pos:]])
                keys = np.concatenate([keys[:lo_pos], keys[hi_pos:]])
                row_nnz = np.concatenate([row_nnz[:lo_pos], row_nnz[hi_pos:]])
        if a_ub.shape[0] == 0:
            return None, None, 0
        return a_ub, b_ub, int(row_nnz.sum())

    def presolve_prune_reason(
        self, overrides: Mapping[int, tuple[float, float]]
    ) -> str | None:
        """Constraint-1 infeasibility certificate for an override set.

        Any feasible manipulation satisfies ``0 <= m <= cap``, so link
        ``j``'s estimate shift is bracketed by the cap times the row-wise
        positive/negative coefficient mass of ``Q[:, support]``.  An
        override demanding more shift than the bracket allows is
        infeasible *regardless of every other constraint* — the certifier
        is sound (it never rejects a feasible override, property-tested),
        deliberately incomplete, and costs two comparisons per overridden
        link.  The comparison margin (``1e-6`` absolute) sits well above
        the solver's own feasibility tolerance so borderline candidates
        are always left to the LP.
        """
        cap = self.cap
        for j, (lower, upper) in overrides.items():
            if np.isfinite(lower):
                need = float(lower) - float(self._x_true[j])
                if need > 0:
                    capacity = float(self._pos_capacity[j])
                    if capacity <= 0.0:
                        available = 0.0
                    elif cap is None:
                        available = math.inf
                    else:
                        available = float(cap) * capacity
                    if need > available * (1 + 1e-9) + 1e-6:
                        return (
                            f"{PRESOLVE_STATUS_PREFIX} link {j} needs an estimate "
                            f"raise of {need:.6g} but the Constraint-1 support "
                            f"can deliver at most {available:.6g}"
                        )
            if np.isfinite(upper):
                need = float(self._x_true[j]) - float(upper)
                if need > 0:
                    capacity = float(self._neg_capacity[j])
                    if capacity <= 0.0:
                        available = 0.0
                    elif cap is None:
                        available = math.inf
                    else:
                        available = float(cap) * capacity
                    if need > available * (1 + 1e-9) + 1e-6:
                        return (
                            f"{PRESOLVE_STATUS_PREFIX} link {j} needs an estimate "
                            f"drop of {need:.6g} but the Constraint-1 support "
                            f"can deliver at most {available:.6g}"
                        )
        return None

    def _warm_solver(self):
        """The persistent HiGHS model (built once per solver instance)."""
        if self._persistent is None:
            from repro.attacks.lp_engine import PersistentLpSolver

            self._persistent_cap = (
                self.cap
                if self.cap is not None
                else resolve_unbounded_cap(self.resolve_cap)
            )
            self._persistent = PersistentLpSolver(
                self._sub_operator,
                self._base_lower - self._x_true,
                self._base_upper - self._x_true,
                eq_rows=self._a_eq,
                var_upper=self._persistent_cap,
            )
        return self._persistent

    def rebase(self, true_metrics: np.ndarray, base_bands: BandConstraints) -> None:
        """Move the solver onto new baseline metrics and band bounds.

        A churn epoch that leaves the attacker's support columns intact
        (the manipulable paths did not change — only the baseline
        estimate and hence the band rows moved) does not need a new
        solver: the sub-operator, the consistency block and the presolve
        capacities are all functions of ``Q[:, support]`` alone.  Only
        the assembled band rows and the persistent model's row bounds
        depend on ``x_true``/``bands``, so those are re-derived in place
        — the warm-started HiGHS model (and its simplex basis) survives
        via ``changeRowBounds`` instead of being rebuilt from scratch.
        """
        x_true = check_finite_vector(true_metrics, "true_metrics")
        if x_true.shape[0] != self.num_links:
            raise ValidationError(
                f"rebase true_metrics length ({x_true.shape[0]}) must match "
                f"the solver's link count ({self.num_links})"
            )
        base_bands.validate()
        lower = np.array(base_bands.lower, dtype=float)
        upper = np.array(base_bands.upper, dtype=float)
        if lower.shape != (self.num_links,) or upper.shape != (self.num_links,):
            raise ValidationError(
                "rebase bands must have one bound per link "
                f"({self.num_links}), got {lower.shape} / {upper.shape}"
            )
        perf.record_event("lp_rebase")
        self._x_true = x_true
        self._base_lower = lower
        self._base_upper = upper
        with perf.stage("lp_assembly"):
            self._base_a, self._base_b, self._base_keys = _assemble_band_rows(
                self._sub_operator, lower, upper, x_true
            )
            self._base_row_nnz = (
                np.count_nonzero(self._base_a, axis=1)
                if self._base_a.shape[0]
                else np.zeros(0, dtype=int)
            )
            self._base_nnz = int(self._base_row_nnz.sum())
            self._base_a_opt = _maybe_sparse(self._base_a, self._base_nnz)
        if self._persistent is not None:
            self._persistent.update_base_bounds(lower - x_true, upper - x_true)

    def _solve_warm(
        self, overrides: Mapping[int, tuple[float, float]]
    ) -> LpSolution:
        """One warm-started solve on the persistent HiGHS model."""
        solver = self._warm_solver()
        shifted = {
            j: (lower - self._x_true[j], upper - self._x_true[j])
            for j, (lower, upper) in overrides.items()
        }
        raw = solver.solve(shifted)
        if not raw.optimal or raw.values is None:
            return LpSolution(
                feasible=False, manipulation=None, damage=0.0, status=raw.status
            )
        m = np.zeros(self.num_paths)
        m[self._support] = np.maximum(raw.values, 0.0)  # clip solver round-off
        damage = float(m.sum())
        if self.cap is None and _pinned_at_cap(
            m[self._support], self._persistent_cap
        ):
            # Same unbounded semantics as the scipy path: the flag carries
            # the infinity, the damage stays the L1 norm of the vector.
            if obs.is_enabled():
                obs.event(
                    "lp_unbounded_resolve",
                    resolve_cap=self._persistent_cap,
                    capped_damage=damage,
                )
            return LpSolution(
                feasible=True,
                manipulation=m,
                damage=damage,
                status="unbounded (re-solved with large cap)",
                unbounded=True,
            )
        return LpSolution(
            feasible=True, manipulation=m, damage=damage, status=raw.status
        )

    def solve(
        self, overrides: Mapping[int, tuple[float, float]] | None = None
    ) -> LpSolution:
        """Solve with each link in ``overrides`` rebanded to ``(lo, up)``.

        An override *replaces* the link's base band entirely (it is not
        intersected with it), matching a from-scratch band construction
        where the overridden links take their candidate-specific bounds.
        """
        overrides = dict(overrides or {})
        for j, (lower, upper) in overrides.items():
            if not 0 <= j < self.num_links:
                raise AttackError(f"override link {j} out of range [0, {self.num_links})")
            if lower > upper:
                raise ValidationError(
                    f"empty band for link {j}: [{lower}, {upper}]"
                )

        if not self._support:
            lower = self._base_lower.copy()
            upper = self._base_upper.copy()
            for j, (lo, up) in overrides.items():
                lower[j], upper[j] = lo, up
            return _empty_support_solution(lower, upper, self._x_true, self.num_paths)

        if self.presolve and overrides:
            reason = self.presolve_prune_reason(overrides)
            if reason is not None:
                self.presolve_pruned += 1
                perf.record_event("lp_presolve_prune")
                if obs.is_enabled():
                    obs.event(
                        "lp_presolve_prune",
                        links=sorted(int(j) for j in overrides),
                        reason=reason,
                        pruned_total=self.presolve_pruned,
                    )
                return LpSolution(
                    feasible=False, manipulation=None, damage=0.0, status=reason
                )

        if self.engine == "highs":
            return self._solve_warm(overrides)

        with perf.stage("lp_assembly"):
            a_ub, b_ub, a_ub_nnz = self._rows_for_overrides(overrides)
        if a_ub is self._base_a:
            a_ub = self._base_a_opt  # cached conversion + density decision
        return _solve_assembled(
            self._support,
            self.num_paths,
            a_ub,
            b_ub,
            self._a_eq_opt,
            self._b_eq,
            self.cap,
            resolve_cap=self.resolve_cap,
            a_ub_nnz=a_ub_nnz,
        )

    def solve_many(
        self, overrides_iter: Iterable[Mapping[int, tuple[float, float]]]
    ) -> Iterator[LpSolution]:
        """Lazily solve one LP per override mapping, sharing all warm state.

        Candidate scans consume this instead of calling :meth:`solve` in
        a loop: the base block, its sparsity decision, the presolve
        capacities and (under ``engine="highs"``) the warm-started model
        basis all carry across iterations.  The generator is lazy, so
        ``stop_at_first_feasible`` searches stop paying the moment they
        stop consuming.
        """
        for overrides in overrides_iter:
            yield self.solve(overrides)


def theorem1_manipulation(
    routing_matrix: np.ndarray,
    delta_estimate: np.ndarray,
) -> np.ndarray:
    """The constructive manipulation of Theorem 1: ``m* = R Δx_hat*``.

    Given a target estimate shift ``Δx_hat* = x_hat* - x*`` supported on
    ``L_m ∪ L_s``, returns the manipulation vector that forges it exactly.
    Under a perfect cut the result automatically satisfies Constraint 1
    (zero on attacker-free paths) — the property test for Theorem 1
    asserts precisely this.  ``Δx_hat*`` must be non-negative where the
    corresponding rows of ``R`` touch it, or the resulting ``m`` may go
    negative; callers keep Δ >= 0 (attacks only inflate estimates).
    """
    matrix = np.asarray(routing_matrix, dtype=float)
    delta = check_finite_vector(delta_estimate, "delta_estimate", length=matrix.shape[1])
    return matrix @ delta


def theorem1_fast_path(
    routing_matrix: np.ndarray,
    baseline: np.ndarray,
    support: Sequence[int],
    bands: BandConstraints,
    target_links: Sequence[int],
    *,
    cap: float | None,
    rank: int,
    tol: float = 1e-9,
) -> LpSolution | None:
    """Solver-free feasibility witness for the perfect-cut case.

    Theorem 1's constructive direction: under a perfect cut, the attacker
    can forge *any* estimate shift ``Δ`` supported on the cut links via
    ``m = R Δ`` — no LP needed to decide feasibility.  This routine
    builds the minimal such shift (each target link raised exactly to its
    lower band edge, everything else untouched) and checks the theorem's
    applicability conditions numerically:

    - ``R`` has full column rank (``rank == num_links``), so the forged
      estimate is exactly ``baseline + Δ``;
    - the baseline already satisfies the bands on every non-target link,
      and no target link needs *lowering* (attacks only add delay);
    - every path crossing a raised link lies in the Constraint-1 support
      — the perfect-cut condition, read off the routing matrix directly;
    - the resulting ``m = R Δ`` respects the per-path cap.

    Returns the witness as a feasible :class:`LpSolution` (status
    ``"theorem1 fast path (perfect cut)"``), or None when any condition
    fails — in which case callers fall back to the LP.  The witness is a
    *feasibility certificate with minimal forged shift*, not the
    damage-maximising optimum; existence queries (success-probability
    scans, ``stop_at_first_feasible`` searches) are its intended
    consumers.  Because ``m = R Δ`` lies in the column space of ``R`` it
    has exactly zero measurement residual, so the witness remains valid
    when the LP would carry the residual-projector stealth block
    (Theorem 3); arbitrary other consistency constraints are *not*
    checked here.
    """
    matrix = np.asarray(routing_matrix, dtype=float)
    num_paths, num_links = matrix.shape
    if int(rank) != num_links:
        return None
    x = check_finite_vector(baseline, "baseline", length=num_links)
    bands.validate()
    targets = sorted(set(int(j) for j in target_links))
    for j in targets:
        if not 0 <= j < num_links:
            raise AttackError(f"target link {j} out of range [0, {num_links})")
    target_mask = np.zeros(num_links, dtype=bool)
    target_mask[targets] = True

    # Baseline must already sit inside the bands off the target set —
    # the minimal shift leaves those estimates untouched.
    off = ~target_mask
    if np.any(x[off] < bands.lower[off] - tol) or np.any(
        x[off] > bands.upper[off] + tol
    ):
        return None

    delta = np.zeros(num_links)
    for j in targets:
        lower, upper = bands.lower[j], bands.upper[j]
        if x[j] > upper + tol:
            return None  # would need lowering; Δ >= 0 only
        if np.isfinite(lower) and x[j] < lower:
            need = float(lower - x[j])
            if np.isfinite(upper) and x[j] + need > upper + tol:
                return None
            delta[j] = need

    # Perfect cut: every path crossing a raised link must be manipulable.
    raised = delta > 0
    if np.any(raised):
        touching = np.nonzero(matrix[:, raised].sum(axis=1) > 0)[0]
        support_set = set(int(s) for s in support)
        if not set(int(r) for r in touching) <= support_set:
            return None

    m = matrix @ delta
    if cap is not None and m.size and float(m.max()) > cap + tol * max(cap, 1.0):
        return None
    return LpSolution(
        feasible=True,
        manipulation=m,
        damage=float(m.sum()),
        status="theorem1 fast path (perfect cut)",
    )
