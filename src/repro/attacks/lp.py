"""The shared linear program behind every scapegoating strategy.

All three strategies of Section III maximise damage ``||m||_1`` subject to
Constraint 1 and *band constraints on the estimate*.  Because tomography's
estimator is linear, the estimate under manipulation is affine in ``m``:

    x_hat(m) = R⁺ (R x* + m) = x* + Q m        (Q = R⁺, full column rank)

so "link j must look normal/abnormal/uncertain" becomes a pair of linear
inequalities in ``m``, and each strategy is one LP (proof of Theorem 1
writes the same thing from the ``Δx_hat`` side; :func:`theorem1_manipulation`
implements that constructive direction for perfect cuts).

Solved with scipy's HiGHS backend.  An unbounded LP (possible only with an
infinite per-path cap) is reported as feasible with ``unbounded=True`` and
re-solved under a large finite cap so callers still get a concrete vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import AttackError, ValidationError
from repro.utils.validation import check_finite_vector

__all__ = ["BandConstraints", "LpSolution", "solve_manipulation_lp", "theorem1_manipulation"]

#: Cap substituted when re-solving an unbounded LP to return a finite vector.
_UNBOUNDED_RESOLVE_CAP = 1e7


@dataclass
class BandConstraints:
    """Per-link bounds on the *estimated* metric vector.

    ``lower[j] <= x_hat[j] <= upper[j]``; entries default to unbounded.
    Strategy classes translate Definition 1 states into these bands
    (already including any strictness margin).
    """

    lower: np.ndarray
    upper: np.ndarray

    @classmethod
    def unbounded(cls, num_links: int) -> "BandConstraints":
        """No constraints on any link estimate."""
        return cls(
            lower=np.full(num_links, -np.inf),
            upper=np.full(num_links, np.inf),
        )

    def require_at_most(self, link_index: int, bound: float) -> None:
        """Tighten: estimate of ``link_index`` must be <= ``bound``."""
        self.upper[link_index] = min(self.upper[link_index], bound)

    def require_at_least(self, link_index: int, bound: float) -> None:
        """Tighten: estimate of ``link_index`` must be >= ``bound``."""
        self.lower[link_index] = max(self.lower[link_index], bound)

    def validate(self) -> None:
        """Raise when some band is empty (lower > upper)."""
        if self.lower.shape != self.upper.shape:
            raise ValidationError("band bound vectors must have equal shape")
        bad = np.nonzero(self.lower > self.upper)[0]
        if bad.size:
            j = int(bad[0])
            raise ValidationError(
                f"empty band for link {j}: [{self.lower[j]}, {self.upper[j]}]"
            )


@dataclass(frozen=True)
class LpSolution:
    """Outcome of one manipulation LP.

    ``manipulation`` is the full-length vector (zeros off support).
    ``damage`` is ``||m||_1`` (Definition 2).  ``feasible`` is the paper's
    success criterion; ``unbounded`` flags an infinite-damage optimum that
    was re-solved under a large finite cap.
    """

    feasible: bool
    manipulation: np.ndarray | None
    damage: float
    status: str
    unbounded: bool = False


def solve_manipulation_lp(
    estimator_operator: np.ndarray,
    true_metrics: np.ndarray,
    support: Sequence[int],
    num_paths: int,
    bands: BandConstraints,
    *,
    cap: float | None = 2000.0,
    consistency_matrix: np.ndarray | None = None,
) -> LpSolution:
    """Maximise ``sum(m)`` subject to Constraint 1, ``m <= cap`` and bands.

    Parameters
    ----------
    estimator_operator:
        ``Q = R⁺`` (|L| x |P|) — the operator's public estimation map.
    true_metrics:
        The *baseline estimate* — what tomography reports with no attack
        (``Q R x*``; equal to the ground truth ``x*`` under full column
        rank).  The attacker observes its local links and, like the paper,
        is assumed to know routine performance well enough to plan;
        sensitivity to this assumption is explored in the ablation
        benches.
    support:
        Manipulable path rows (paths containing an attacker).
    bands:
        Estimate bands encoding the strategy's state constraints.
    cap:
        Per-path manipulation cap in metric units (paper: 2000 ms).
        ``None`` means unlimited.
    consistency_matrix:
        Optional *stealth* constraint ``C m = 0`` (|P| x |P|).  Passing the
        residual projector ``I - R R⁺`` restricts the attacker to
        manipulations lying in the column space of ``R`` — measurements
        that remain perfectly consistent with *some* link-metric vector,
        hence invisible to the eq. (23) detector.  Theorem 3: such a
        solution always exists under a perfect cut and (generically) not
        otherwise.
    """
    operator = np.asarray(estimator_operator, dtype=float)
    if operator.ndim != 2 or operator.shape[1] != num_paths:
        raise AttackError(
            f"estimator operator must be (num_links x {num_paths}), got {operator.shape}"
        )
    num_links = operator.shape[0]
    x_true = check_finite_vector(true_metrics, "true_metrics", length=num_links)
    bands.validate()
    if cap is not None and cap < 0:
        raise ValidationError(f"cap must be non-negative or None, got {cap}")

    support_list = sorted(set(int(s) for s in support))
    for row in support_list:
        if not 0 <= row < num_paths:
            raise AttackError(f"support row {row} out of range [0, {num_paths})")

    # Baseline estimate without manipulation is x* itself (honest system);
    # bands must at least admit m = 0 on unconstrained links, but
    # constrained links may *require* manipulation, so feasibility is the
    # LP's job.  With an empty support the only candidate is m = 0.
    if not support_list:
        m0 = np.zeros(num_paths)
        ok = bool(np.all(x_true >= bands.lower - 1e-9) and np.all(x_true <= bands.upper + 1e-9))
        return LpSolution(
            feasible=ok,
            manipulation=m0 if ok else None,
            damage=0.0,
            status="empty support" + (" (baseline satisfies bands)" if ok else ""),
        )

    sub_operator = operator[:, support_list]  # |L| x k
    k = len(support_list)

    a_rows: list[np.ndarray] = []
    b_vals: list[float] = []
    for j in range(num_links):
        if np.isfinite(bands.upper[j]):
            a_rows.append(sub_operator[j])
            b_vals.append(float(bands.upper[j] - x_true[j]))
        if np.isfinite(bands.lower[j]):
            a_rows.append(-sub_operator[j])
            b_vals.append(float(x_true[j] - bands.lower[j]))

    a_ub = np.vstack(a_rows) if a_rows else None
    b_ub = np.asarray(b_vals) if b_vals else None

    if cap is None:
        # HiGHS can misclassify feasible-but-unbounded instances of this LP
        # as infeasible when variables are uncapped; solve under a large
        # finite cap instead and infer unboundedness from variables pinned
        # at that cap.
        capped = solve_manipulation_lp(
            operator,
            x_true,
            support_list,
            num_paths,
            bands,
            cap=_UNBOUNDED_RESOLVE_CAP,
            consistency_matrix=consistency_matrix,
        )
        if not capped.feasible or capped.manipulation is None:
            return capped
        hit_cap = bool(
            np.any(capped.manipulation >= _UNBOUNDED_RESOLVE_CAP * (1 - 1e-9))
        )
        if hit_cap:
            return LpSolution(
                feasible=True,
                manipulation=capped.manipulation,
                damage=float("inf"),
                status="unbounded (re-solved with large cap)",
                unbounded=True,
            )
        return capped

    a_eq = None
    b_eq = None
    if consistency_matrix is not None:
        cmat = np.asarray(consistency_matrix, dtype=float)
        if cmat.shape != (num_paths, num_paths):
            raise AttackError(
                f"consistency matrix must be ({num_paths} x {num_paths}), got {cmat.shape}"
            )
        # Only the supported columns are variables; off-support entries of
        # m are zero and drop out of C m = 0.  Keep only numerically
        # non-trivial rows to help the solver.
        sub = cmat[:, support_list]
        keep = np.linalg.norm(sub, axis=1) > 1e-12
        if np.any(keep):
            a_eq = sub[keep]
            b_eq = np.zeros(int(np.sum(keep)))

    result = linprog(
        c=-np.ones(k),
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, cap)] * k,
        method="highs",
    )

    if not result.success:
        return LpSolution(
            feasible=False,
            manipulation=None,
            damage=0.0,
            status=result.message,
        )
    m = np.zeros(num_paths)
    m[support_list] = np.maximum(result.x, 0.0)  # clip solver round-off
    return LpSolution(
        feasible=True,
        manipulation=m,
        damage=float(m.sum()),
        status=result.message,
    )


def theorem1_manipulation(
    routing_matrix: np.ndarray,
    delta_estimate: np.ndarray,
) -> np.ndarray:
    """The constructive manipulation of Theorem 1: ``m* = R Δx_hat*``.

    Given a target estimate shift ``Δx_hat* = x_hat* - x*`` supported on
    ``L_m ∪ L_s``, returns the manipulation vector that forges it exactly.
    Under a perfect cut the result automatically satisfies Constraint 1
    (zero on attacker-free paths) — the property test for Theorem 1
    asserts precisely this.  ``Δx_hat*`` must be non-negative where the
    corresponding rows of ``R`` touch it, or the resulting ``m`` may go
    negative; callers keep Δ >= 0 (attacks only inflate estimates).
    """
    matrix = np.asarray(routing_matrix, dtype=float)
    delta = check_finite_vector(delta_estimate, "delta_estimate", length=matrix.shape[1])
    return matrix @ delta
