"""Persistent warm-started HiGHS engine for the manipulation LP.

``repro bench`` shows the LP solve dominating the attack pipelines: a
max-damage scan pays one full :func:`scipy.optimize.linprog` call — with
its own presolve, scaling and cold simplex start — per candidate victim,
even though consecutive candidates differ by a *single link's band*.
This module keeps one HiGHS model alive across the whole scan instead:

- :func:`highs_bindings` locates the HiGHS pybind11 API, preferring the
  standalone ``highspy`` package and falling back to the identical module
  modern scipy vendors (``scipy.optimize._highspy._core``).  When neither
  exists the engine reports itself unavailable and every caller falls
  back to today's ``linprog`` path unchanged.
- :class:`PersistentLpSolver` builds the model once — one *two-sided* row
  per link (``q_j·m ∈ [lower_j - x_j, upper_j - x_j]``, infinities for
  absent bounds), the stealth equality block pinned to ``[0, 0]`` — and
  then serves each candidate by editing only the overridden links' row
  bounds.  The simplex basis from the previous candidate is reused, so a
  typical re-solve takes a handful of iterations instead of a cold start.
- :func:`resolve_engine_name` mirrors the backend dispatch convention
  (explicit argument > ``REPRO_LP_ENGINE`` environment variable >
  bit-compatible default): the default is ``"scipy"`` — byte-identical to
  the historical path — and ``"highs"``/``"auto"`` opt into warm starts.
- :func:`prune_capacities` is the Constraint-1 presolve arithmetic: the
  row-wise positive/negative coefficient mass of the support-restricted
  estimator bounds what any feasible manipulation can do to a link's
  estimate, so provably hopeless candidates are rejected with two
  comparisons before any model (or even constraint block) is touched.

The module deliberately knows nothing about :class:`~repro.attacks.lp`
solution types: it consumes arrays and returns a raw
:class:`PersistentSolveResult`; the LP layer owns the semantics
(unbounded re-solve caps, damage-is-L1 reporting, support embedding).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Mapping

import numpy as np
import scipy.sparse

from repro import config
from repro.exceptions import ValidationError
from repro.obs import core as obs
from repro.perf import instrumentation as perf

__all__ = [
    "ENGINE_ENV_VAR",
    "HighsBindings",
    "PersistentLpSolver",
    "PersistentSolveResult",
    "highs_bindings",
    "prune_capacities",
    "resolve_engine_name",
]

#: Environment variable selecting the LP engine (``scipy``/``highs``/``auto``).
ENGINE_ENV_VAR = "REPRO_LP_ENGINE"

_ENGINE_NAMES = ("scipy", "highs", "auto")

#: Memoised bindings probe result (``None`` = not probed yet, ``False`` =
#: probed and absent, otherwise the :class:`HighsBindings`).
_BINDINGS: "HighsBindings | bool | None" = None


@dataclass(frozen=True)
class HighsBindings:
    """The subset of the HiGHS pybind11 API the persistent solver uses.

    Both providers expose the same pybind classes; only the top-level
    names differ (``highspy.Highs`` vs the vendored ``_core._Highs``).
    """

    source: str
    Highs: type
    HighsLp: type
    MatrixFormat: type
    HighsModelStatus: type
    infinity: float


def _probe_bindings() -> "HighsBindings | None":
    """Locate a HiGHS pybind module, or None when no provider imports."""
    try:
        import highspy  # type: ignore[import-not-found]

        return HighsBindings(
            source="highspy",
            Highs=highspy.Highs,
            HighsLp=highspy.HighsLp,
            MatrixFormat=highspy.MatrixFormat,
            HighsModelStatus=highspy.HighsModelStatus,
            infinity=float(highspy.kHighsInf),
        )
    except ImportError:
        pass
    try:
        from scipy.optimize._highspy import _core  # noqa: PLC2701

        return HighsBindings(
            source="scipy-vendored",
            Highs=_core._Highs,
            HighsLp=_core.HighsLp,
            MatrixFormat=_core.MatrixFormat,
            HighsModelStatus=_core.HighsModelStatus,
            infinity=float(_core.kHighsInf),
        )
    except ImportError:
        return None


def highs_bindings(*, refresh: bool = False) -> "HighsBindings | None":
    """The available HiGHS bindings (memoised), or None.

    Prefers the standalone ``highspy`` distribution; falls back to the
    pybind module scipy >= 1.15 vendors for its own ``linprog`` backend.
    ``refresh=True`` re-probes (tests use it to simulate absence).
    """
    global _BINDINGS  # repro: worker-state-ok (idempotent per-process probe memo)
    if refresh or _BINDINGS is None:
        found = _probe_bindings()
        _BINDINGS = found if found is not None else False
    return _BINDINGS if isinstance(_BINDINGS, HighsBindings) else None


def resolve_engine_name(requested: str | None = None) -> str:
    """Resolve ``scipy``/``highs`` from request, environment and probe.

    Precedence: explicit ``requested`` argument, then the
    ``REPRO_LP_ENGINE`` environment variable, then the bit-compatible
    default ``"scipy"``.  ``"auto"`` picks ``highs`` exactly when
    bindings import; requesting ``"highs"`` without bindings raises a
    :class:`ValidationError` rather than silently degrading.
    """
    if requested is not None:
        name = str(requested).strip().lower()
        source = "engine argument"
    else:
        env = (config.raw(ENGINE_ENV_VAR) or "").strip().lower()
        if not env:
            return "scipy"
        name = env
        source = f"{ENGINE_ENV_VAR} environment variable"
    if name not in _ENGINE_NAMES:
        raise ValidationError(
            f"LP engine must be one of {_ENGINE_NAMES}, got {name!r} ({source})"
        )
    if name == "auto":
        return "highs" if highs_bindings() is not None else "scipy"
    if name == "highs" and highs_bindings() is None:
        raise ValidationError(
            "LP engine 'highs' requested but no HiGHS bindings are importable "
            "(install highspy, or scipy >= 1.15 which vendors them); "
            f"requested via {source}"
        )
    return name


def prune_capacities(sub_operator: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-link estimate-shift capacities of a support-restricted operator.

    For ``Q_s = Q[:, support]`` and any Constraint-1 manipulation
    ``0 <= m <= cap``, the estimate shift of link ``j`` is bracketed by::

        -cap * neg[j] <= (Q_s m)[j] <= cap * pos[j]

    where ``pos``/``neg`` are the row-wise sums of the positive/negative
    parts of ``Q_s``.  A band override demanding more shift than the
    bracket allows is infeasible regardless of every other constraint —
    the presolve pruner rejects it without assembling anything.
    """
    sub = np.asarray(sub_operator, dtype=float)
    return (
        np.clip(sub, 0.0, None).sum(axis=1),
        np.clip(-sub, 0.0, None).sum(axis=1),
    )


@dataclass(frozen=True)
class PersistentSolveResult:
    """Raw outcome of one warm solve (semantics belong to the LP layer).

    ``values`` is the support-variable vector (length k) when optimal,
    else None.  ``iterations`` counts simplex iterations of *this* solve
    — the warm-start win is visible as tiny values after the first call.
    """

    optimal: bool
    values: np.ndarray | None
    status: str
    iterations: int
    rows_changed: int


class PersistentLpSolver:
    """One mutable HiGHS model reused across a candidate-victim scan.

    Parameters
    ----------
    sub_operator:
        ``Q[:, support]`` (|L| x k) — each link contributes one two-sided
        model row.
    row_lower, row_upper:
        Shifted base band bounds per link (``lower_j - x_j`` /
        ``upper_j - x_j``; ``±inf`` where the band is open).
    eq_rows:
        Optional stealth block ``C[:, support]`` (r x k) appended as
        equality rows ``= 0`` (pass the rows already filtered the way the
        scipy path filters them, so both engines see the same problem).
    var_upper:
        Finite per-variable cap (the caller substitutes its unbounded
        re-solve cap when the attack cap is None).
    bindings:
        Explicit :class:`HighsBindings` (defaults to the probed ones).

    Each :meth:`solve` call edits only the overridden links' row bounds,
    runs HiGHS (which reuses the previous basis), restores the base
    bounds, and returns a :class:`PersistentSolveResult`.  The model is
    never rebuilt and never re-presolved from scratch.
    """

    def __init__(
        self,
        sub_operator: np.ndarray,
        row_lower: np.ndarray,
        row_upper: np.ndarray,
        *,
        eq_rows: np.ndarray | None = None,
        var_upper: float,
        bindings: HighsBindings | None = None,
    ) -> None:
        self._hb = bindings if bindings is not None else highs_bindings()
        if self._hb is None:
            raise ValidationError(
                "PersistentLpSolver needs HiGHS bindings (highspy or "
                "scipy >= 1.15); use the scipy engine otherwise"
            )
        sub = np.asarray(sub_operator, dtype=float)
        if sub.ndim != 2:
            raise ValidationError(
                f"sub_operator must be 2-D (links x support), got ndim={sub.ndim}"
            )
        self.num_links, self.num_vars = (int(d) for d in sub.shape)
        if not np.isfinite(var_upper) or var_upper < 0:
            raise ValidationError(
                f"var_upper must be finite and non-negative, got {var_upper}"
            )
        lower = np.asarray(row_lower, dtype=float)
        upper = np.asarray(row_upper, dtype=float)
        if lower.shape != (self.num_links,) or upper.shape != (self.num_links,):
            raise ValidationError(
                "row bounds must have one entry per link "
                f"({self.num_links}), got {lower.shape} / {upper.shape}"
            )
        inf = self._hb.infinity
        self._base_lower = np.where(np.isfinite(lower), lower, -inf)
        self._base_upper = np.where(np.isfinite(upper), upper, inf)

        blocks = [scipy.sparse.csr_matrix(sub)]
        num_eq = 0
        if eq_rows is not None:
            if scipy.sparse.issparse(eq_rows):
                eq = eq_rows.tocsr().astype(float)
            else:
                eq = np.asarray(eq_rows, dtype=float)
            if eq.ndim != 2 or eq.shape[1] != self.num_vars:
                raise ValidationError(
                    f"eq_rows must be (r x {self.num_vars}), got {eq.shape}"
                )
            num_eq = eq.shape[0]
            blocks.append(scipy.sparse.csr_matrix(eq))
        matrix = scipy.sparse.vstack(blocks, format="csr") if num_eq else blocks[0]

        hb = self._hb
        lp = hb.HighsLp()
        lp.num_col_ = self.num_vars
        lp.num_row_ = self.num_links + num_eq
        lp.col_cost_ = -np.ones(self.num_vars)  # maximise sum(m)
        lp.col_lower_ = np.zeros(self.num_vars)
        lp.col_upper_ = np.full(self.num_vars, float(var_upper))
        lp.row_lower_ = np.concatenate([self._base_lower, np.zeros(num_eq)])
        lp.row_upper_ = np.concatenate([self._base_upper, np.zeros(num_eq)])
        lp.a_matrix_.format_ = hb.MatrixFormat.kRowwise
        lp.a_matrix_.start_ = matrix.indptr.astype(np.int64)
        lp.a_matrix_.index_ = matrix.indices.astype(np.int64)
        lp.a_matrix_.value_ = matrix.data.astype(float)

        self._model = hb.Highs()
        self._model.setOptionValue("output_flag", False)
        self._model.setOptionValue("threads", 1)
        self._model.passModel(lp)
        perf.record_event("lp_model_build")
        self.solves = 0

    @property
    def engine_source(self) -> str:
        """Which provider backs the model (``highspy``/``scipy-vendored``)."""
        return self._hb.source

    def update_base_bounds(self, row_lower: np.ndarray, row_upper: np.ndarray) -> int:
        """Rebase the per-link band rows in place; returns rows changed.

        A churn epoch that only moves the baseline estimate (and hence
        the shifted band bounds) does not change the model's structure:
        the same variables, the same coefficient matrix, the same
        equality block.  Editing just the changed band rows via
        ``changeRowBounds`` keeps the model — and its simplex basis —
        alive, instead of paying a full rebuild.  Bounds follow the
        constructor's convention (``±inf`` where the band is open).
        """
        lower = np.asarray(row_lower, dtype=float)
        upper = np.asarray(row_upper, dtype=float)
        if lower.shape != (self.num_links,) or upper.shape != (self.num_links,):
            raise ValidationError(
                "row bounds must have one entry per link "
                f"({self.num_links}), got {lower.shape} / {upper.shape}"
            )
        inf = self._hb.infinity
        new_lower = np.where(np.isfinite(lower), lower, -inf)
        new_upper = np.where(np.isfinite(upper), upper, inf)
        changed = np.flatnonzero(
            (new_lower != self._base_lower) | (new_upper != self._base_upper)
        )
        for j in changed:
            self._model.changeRowBounds(
                int(j), float(new_lower[j]), float(new_upper[j])
            )
        self._base_lower = new_lower
        self._base_upper = new_upper
        return int(changed.size)

    def solve(
        self, row_overrides: Mapping[int, tuple[float, float]] | None = None
    ) -> PersistentSolveResult:
        """Warm solve with the given links' row bounds replaced.

        ``row_overrides`` maps link index to *shifted* bounds
        ``(lower_j - x_j, upper_j - x_j)`` — the same replace-not-
        intersect semantics as
        :meth:`repro.attacks.lp.IncrementalLpSolver.solve`.  Base bounds
        are restored before returning, so solves are order-independent
        (up to the reused basis, which affects speed, never the optimum).
        """
        hb = self._hb
        inf = hb.infinity
        overrides = dict(row_overrides or {})
        for j, (lower, upper) in overrides.items():
            if not 0 <= int(j) < self.num_links:
                raise ValidationError(
                    f"override row {j} out of range [0, {self.num_links})"
                )
            self._model.changeRowBounds(
                int(j),
                float(lower) if np.isfinite(lower) else -inf,
                float(upper) if np.isfinite(upper) else inf,
            )
        perf.record_event("lp_solve")
        try:
            with perf.stage("lp_solve"):
                self._model.run()
                status = self._model.getModelStatus()
                optimal = status == hb.HighsModelStatus.kOptimal
                values = (
                    np.array(self._model.getSolution().col_value, dtype=float)
                    if optimal
                    else None
                )
        finally:
            for j in overrides:
                self._model.changeRowBounds(
                    int(j),
                    float(self._base_lower[j]),
                    float(self._base_upper[j]),
                )
        iterations = int(self._model.getInfo().simplex_iteration_count)
        self.solves += 1
        result = PersistentSolveResult(
            optimal=optimal,
            values=values,
            status=str(self._model.modelStatusToString(status)),
            iterations=iterations,
            rows_changed=len(overrides),
        )
        if obs.is_enabled():
            obs.event(
                "lp_warm_start",
                engine=self.engine_source,
                optimal=bool(optimal),
                status=result.status,
                iterations=iterations,
                rows_changed=result.rows_changed,
                solves=self.solves,
            )
        return result
