"""Chosen-victim scapegoating (eq. 4-7 of the paper).

The attacker names a victim link set ``L_s`` in advance and maximises
damage subject to: every attacker-controlled link looks *normal*
(eq. 5), every victim looks *abnormal* (eq. 6), and the sets are disjoint
(eq. 7).

Two constraint modes are provided:

- ``"paper"`` (default) — the literal formulation: only ``L_m`` and
  ``L_s`` are constrained; other links' estimates may drift (and at a
  damage-maximising optimum they often do — that drift is exactly what the
  maximum-damage strategy exploits).
- ``"exclusive"`` — additionally forces every non-victim link to look
  normal, so the victims are the *only* anomaly in the operator's report.
  This reproduces the clean single-scapegoat picture of the paper's
  Fig. 4, at the cost of some damage.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.analysis.contracts import ContractViolation, contracts_enabled
from repro.attacks.base import AttackContext, AttackOutcome
from repro.attacks.lp import (
    BandConstraints,
    IncrementalLpSolver,
    LpSolution,
    solve_manipulation_lp,
    theorem1_fast_path,
)
from repro.attacks.lp_engine import resolve_engine_name
from repro.exceptions import AttackConstraintError, ValidationError

__all__ = ["ChosenVictimAttack", "build_chosen_victim_bands"]

_MODES = ("paper", "exclusive")


def analytic_witness(
    context: AttackContext,
    bands: BandConstraints,
    target_links: tuple[int, ...],
    *,
    stealthy: bool = False,
) -> LpSolution | None:
    """Try Theorem 1's solver-free witness for these bands and targets.

    Returns a feasible :class:`LpSolution` when the perfect-cut fast path
    applies (see :func:`repro.attacks.lp.theorem1_fast_path`), else None.
    Under active contracts (``REPRO_CONTRACTS=1`` or pytest) every witness
    is re-verified against the LP: the LP must agree the bands are
    feasible — a witness without LP agreement is a
    :class:`ContractViolation`, not a silent wrong answer.
    """
    witness = theorem1_fast_path(
        context.routing_matrix,
        context.baseline_estimate,
        context.support,
        bands,
        target_links,
        cap=context.cap,
        rank=context.system.rank,
    )
    if witness is None:
        return None
    if contracts_enabled():
        reference = solve_manipulation_lp(
            None,
            context.baseline_estimate,
            context.support,
            context.num_paths,
            bands,
            cap=context.cap,
            sub_operator=context.support_operator,
            consistency_columns=(
                context.residual_projector_support() if stealthy else None
            ),
        )
        if not reference.feasible:
            raise ContractViolation(
                "theorem1 fast path produced a witness for an LP-infeasible "
                f"problem (targets {tuple(target_links)}; LP status: "
                f"{reference.status})"
            )
    return witness


def build_chosen_victim_bands(
    context: AttackContext,
    victim_links: tuple[int, ...],
    mode: str = "paper",
    *,
    confined: bool = False,
) -> BandConstraints:
    """Translate eq. (5)-(6) into per-link estimate bands.

    Controlled links must fall strictly below ``b_l`` and victims strictly
    above ``b_u``; the context's margin turns the strict inequalities into
    closed LP constraints.

    ``confined=True`` additionally pins every link outside ``L_m ∪ L_s``
    to its true metric (``x_hat_j == x*_j``).  This is the attacker model
    implicit in the paper's Theorem 1/3 proofs ("the attackers do not
    manipulate the metric of link l_j"); the unconfined LP is strictly
    stronger and can sometimes evade the detector where the confined one
    cannot (see the detection benches).
    """
    bands = BandConstraints.unbounded(context.num_links)
    normal_bound = context.thresholds.lower - context.margin
    abnormal_bound = context.thresholds.upper + context.margin
    for j in context.controlled_links:
        bands.require_at_most(j, normal_bound)
    for j in victim_links:
        bands.require_at_least(j, abnormal_bound)
    if mode == "exclusive":
        victims = set(victim_links)
        for j in range(context.num_links):
            if j not in victims:
                bands.require_at_most(j, normal_bound)
    if confined:
        touched = set(victim_links) | set(context.controlled_links)
        for j in range(context.num_links):
            if j not in touched:
                value = float(context.baseline_estimate[j])
                bands.require_at_least(j, value)
                bands.require_at_most(j, value)
    return bands


class ChosenVictimAttack:
    """Plan a chosen-victim scapegoating attack.

    ``engine`` selects the LP engine (see
    :func:`repro.attacks.lp_engine.resolve_engine_name`; default: the
    ``REPRO_LP_ENGINE`` environment variable, then scipy).  ``analytic``
    tries Theorem 1's solver-free perfect-cut witness before any LP —
    when it applies the outcome is a *feasibility certificate with
    minimal forged shift*, not the damage-maximising optimum
    (``extras["analytic"]`` marks such outcomes).

    >>> # doctest-style sketch; see examples/quickstart.py for a full run
    >>> # attack = ChosenVictimAttack(context, victim_links=[9])
    >>> # outcome = attack.run()
    """

    strategy_name = "chosen-victim"

    def __init__(
        self,
        context: AttackContext,
        victim_links: Iterable[int],
        *,
        mode: str = "paper",
        stealthy: bool = False,
        confined: bool = False,
        engine: str | None = None,
        analytic: bool = False,
    ) -> None:
        if mode not in _MODES:
            raise ValidationError(f"mode must be one of {_MODES}, got {mode!r}")
        self.context = context
        self.mode = mode
        self.stealthy = stealthy
        self.confined = confined
        self.engine = resolve_engine_name(engine)
        self.analytic = bool(analytic)
        victims = tuple(sorted(set(int(v) for v in victim_links)))
        if not victims:
            raise AttackConstraintError("victim link set must not be empty (eq. 11)")
        for v in victims:
            if not 0 <= v < context.num_links:
                raise AttackConstraintError(f"victim link index {v} out of range")
        overlap = set(victims) & set(context.controlled_links)
        if overlap:
            raise AttackConstraintError(
                f"victim links {sorted(overlap)} are attacker-controlled; "
                "L_m and L_s must be disjoint (eq. 7)"
            )
        self.victim_links = victims

    def run(self) -> AttackOutcome:
        """Solve the LP; returns a (possibly infeasible) outcome."""
        bands = build_chosen_victim_bands(
            self.context, self.victim_links, self.mode, confined=self.confined
        )
        try:
            bands.validate()
        except ValidationError as exc:
            return AttackOutcome.infeasible(
                self.strategy_name, f"contradictory bands: {exc}", self.victim_links
            )
        analytic_used = False
        solution = None
        if self.analytic:
            solution = analytic_witness(
                self.context, bands, self.victim_links, stealthy=self.stealthy
            )
            analytic_used = solution is not None
        if solution is None:
            if self.engine == "highs":
                solver = IncrementalLpSolver(
                    None,
                    self.context.baseline_estimate,
                    self.context.support,
                    self.context.num_paths,
                    bands,
                    cap=self.context.cap,
                    sub_operator=self.context.support_operator,
                    consistency_columns=(
                        self.context.residual_projector_support()
                        if self.stealthy
                        else None
                    ),
                    engine=self.engine,
                    presolve=False,
                )
                solution = solver.solve()
            else:
                solution = solve_manipulation_lp(
                    None,
                    self.context.baseline_estimate,
                    self.context.support,
                    self.context.num_paths,
                    bands,
                    cap=self.context.cap,
                    sub_operator=self.context.support_operator,
                    consistency_columns=(
                        self.context.residual_projector_support()
                        if self.stealthy
                        else None
                    ),
                )
        if not solution.feasible or solution.manipulation is None:
            return AttackOutcome.infeasible(
                self.strategy_name, solution.status, self.victim_links
            )
        return AttackOutcome.from_manipulation(
            self.strategy_name,
            self.context,
            solution.manipulation,
            self.victim_links,
            solution.status,
            extras={
                "mode": self.mode,
                "unbounded": solution.unbounded,
                "stealthy": self.stealthy,
                "confined": self.confined,
                "analytic": analytic_used,
            },
        )
