"""Perfect and imperfect cuts (Section IV-A of the paper).

An attacker set *perfectly cuts* a victim link set when every measurement
path containing a victim link also contains an attacker — then the
attackers fully mediate the operator's view of the victims, scapegoating is
always feasible (Theorem 1) and undetectable (Theorem 3).  The *attack
presence ratio* generalises this: the fraction of victim-crossing paths
the attackers sit on; success probability increases with it (Theorem 2,
Fig. 7).
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.exceptions import AttackConstraintError
from repro.routing.paths import PathSet
from repro.topology.graph import NodeId

__all__ = [
    "victim_paths",
    "uncut_victim_paths",
    "is_perfect_cut",
    "attack_presence_ratio",
    "perfectly_cut_links",
]


def victim_paths(path_set: PathSet, victim_links: Iterable[int]) -> list[int]:
    """Row indices of paths traversing at least one victim link."""
    victims = list(victim_links)
    if not victims:
        raise AttackConstraintError("victim link set must not be empty")
    return path_set.paths_containing_any_link(victims)


def uncut_victim_paths(
    path_set: PathSet,
    attacker_nodes: Iterable[NodeId],
    victim_links: Iterable[int],
) -> list[int]:
    """Victim-crossing paths with *no* attacker on them.

    These rows are the attack's blind spot: their measurements cannot be
    manipulated (Constraint 1), so any estimate shift on the victims shows
    up as an inconsistency there — the witness paths of Theorem 3's
    detectability direction.
    """
    attackers = set(attacker_nodes)
    return [
        row
        for row in victim_paths(path_set, victim_links)
        if not path_set.path(row).contains_any_node(attackers)
    ]


def is_perfect_cut(
    path_set: PathSet,
    attacker_nodes: Iterable[NodeId],
    victim_links: Iterable[int],
) -> bool:
    """True when the attackers sit on every victim-crossing path.

    Vacuously true when no measurement path crosses a victim link (the
    operator then has no information about the victims at all).
    """
    return not uncut_victim_paths(path_set, attacker_nodes, victim_links)


def attack_presence_ratio(
    path_set: PathSet,
    attacker_nodes: Iterable[NodeId],
    victim_links: Iterable[int],
) -> float:
    """The Fig. 7 x-axis: attacker coverage of victim-crossing paths.

    ``#(paths with >= 1 victim link and >= 1 attacker) / #(paths with >= 1
    victim link)``.  Returns ``nan`` when no path crosses a victim link
    (the ratio is undefined; the paper's experiments never sample such
    victims because they are invisible to tomography anyway).
    """
    on_victim = victim_paths(path_set, victim_links)
    if not on_victim:
        return math.nan
    attackers = set(attacker_nodes)
    covered = sum(
        1 for row in on_victim if path_set.path(row).contains_any_node(attackers)
    )
    return covered / len(on_victim)


def perfectly_cut_links(
    path_set: PathSet,
    attacker_nodes: Iterable[NodeId],
    *,
    exclude_links: Iterable[int] = (),
) -> list[int]:
    """All links the attacker set perfectly cuts (candidate sure victims).

    Links in ``exclude_links`` (typically the attacker-controlled set
    ``L_m``, which may not be scapegoated — eq. 7) are skipped, as are
    links no measurement path crosses (cutting them is vacuous and
    scapegoating them pointless: tomography cannot estimate them).
    """
    excluded = set(exclude_links)
    attackers = set(attacker_nodes)
    result = []
    for link in path_set.topology.links():
        if link.index in excluded:
            continue
        rows = path_set.paths_containing_link(link.index)
        if not rows:
            continue
        if all(path_set.path(row).contains_any_node(attackers) for row in rows):
            result.append(link.index)
    return result
