"""Scapegoating attack engine — the paper's core contribution.

The attacker controls a node set ``V_m`` and therefore (a) every link
incident to those nodes (``L_m``) and (b) every measurement path crossing
them.  An attack is a non-negative per-path manipulation vector ``m``
supported only on crossable paths (Constraint 1) chosen so that network
tomography's estimate lands in target state bands:

- :class:`~repro.attacks.chosen_victim.ChosenVictimAttack` (eq. 4-7),
- :class:`~repro.attacks.max_damage.MaxDamageAttack` (eq. 8),
- :class:`~repro.attacks.obfuscation.ObfuscationAttack` (eq. 9-11),
- :class:`~repro.attacks.naive.NaiveDelayAttack` — the non-stealthy
  baseline that the paper's introduction dismisses (it exposes the
  attacker's own links).

Feasibility analysis (perfect/imperfect cuts, attack presence ratio —
Theorems 1-2) lives in :mod:`~repro.attacks.cuts`; compiling a solved
manipulation vector into per-node packet behaviour for the simulator lives
in :mod:`~repro.attacks.planner`.
"""

from repro.attacks.base import AttackContext, AttackOutcome
from repro.attacks.constraints import (
    attacker_links,
    manipulable_paths,
    validate_manipulation_vector,
)
from repro.attacks.cuts import (
    attack_presence_ratio,
    is_perfect_cut,
    perfectly_cut_links,
    uncut_victim_paths,
    victim_paths,
)
from repro.attacks.lp import (
    IncrementalLpSolver,
    LpSolution,
    resolve_unbounded_cap,
    solve_manipulation_lp,
    theorem1_fast_path,
    theorem1_manipulation,
)
from repro.attacks.lp_engine import (
    PersistentLpSolver,
    highs_bindings,
    resolve_engine_name,
)
from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.attacks.max_damage import MaxDamageAttack
from repro.attacks.obfuscation import ObfuscationAttack
from repro.attacks.naive import NaiveDelayAttack
from repro.attacks.hybrid import FrameAndBlurAttack
from repro.attacks.compromise import (
    compromise_budget_ranking,
    minimum_perfect_cut_nodes,
)
from repro.attacks.planner import AttackPlan, compile_attack_plan

__all__ = [
    "AttackContext",
    "AttackOutcome",
    "attacker_links",
    "manipulable_paths",
    "validate_manipulation_vector",
    "attack_presence_ratio",
    "is_perfect_cut",
    "perfectly_cut_links",
    "uncut_victim_paths",
    "victim_paths",
    "IncrementalLpSolver",
    "LpSolution",
    "PersistentLpSolver",
    "highs_bindings",
    "resolve_engine_name",
    "resolve_unbounded_cap",
    "solve_manipulation_lp",
    "theorem1_fast_path",
    "theorem1_manipulation",
    "ChosenVictimAttack",
    "MaxDamageAttack",
    "ObfuscationAttack",
    "NaiveDelayAttack",
    "FrameAndBlurAttack",
    "compromise_budget_ranking",
    "minimum_perfect_cut_nodes",
    "AttackPlan",
    "compile_attack_plan",
]
