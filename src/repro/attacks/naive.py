"""The naive (non-stealthy) baseline attack.

Section II-C's strawman: malicious nodes simply delay every packet routed
through them.  Damage is high, but tomography straightforwardly localises
the attacker — the links incident to the malicious nodes show long delays,
so the operator's report blames the attacker's own links.  The baseline
exists to quantify the contrast with scapegoating: same damage budget,
opposite attribution.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackContext, AttackOutcome
from repro.exceptions import AttackError, ValidationError

__all__ = ["NaiveDelayAttack"]


class NaiveDelayAttack:
    """Delay every probe on every path crossing the attacker.

    Parameters
    ----------
    context:
        Shared attack context.
    per_path_delay:
        Milliseconds added on every supported path (default: the context's
        cap — maximal damage; 1000 ms when the cap is None).
    """

    strategy_name = "naive"

    def __init__(self, context: AttackContext, *, per_path_delay: float | None = None) -> None:
        self.context = context
        if per_path_delay is None:
            per_path_delay = context.cap if context.cap is not None else 1000.0
        if per_path_delay < 0:
            raise ValidationError(f"per_path_delay must be >= 0, got {per_path_delay}")
        if context.cap is not None and per_path_delay > context.cap:
            raise ValidationError(
                f"per_path_delay {per_path_delay} exceeds the context cap {context.cap}"
            )
        self.per_path_delay = float(per_path_delay)

    def run(self) -> AttackOutcome:
        """Always 'succeeds' at doing damage — and at exposing the attacker.

        ``victim_links`` is empty: the naive attack frames nobody.  The
        interesting output is the diagnosis, which typically flags the
        attacker-controlled links abnormal.
        """
        m = np.zeros(self.context.num_paths)
        if self.context.support:
            m[np.asarray(self.context.support, dtype=int)] = self.per_path_delay
        outcome = AttackOutcome.from_manipulation(
            self.strategy_name,
            self.context,
            m,
            (),
            f"uniform {self.per_path_delay} ms on {len(self.context.support)} paths",
        )
        if outcome.diagnosis is None:
            raise AttackError("naive attack outcome carries no diagnosis report")
        exposed = sorted(
            set(outcome.diagnosis.abnormal) & set(self.context.controlled_links)
        )
        outcome.extras["exposed_controlled_links"] = exposed
        outcome.extras["stealthy"] = not exposed
        return outcome
