"""Constraint 1 machinery: what an attacker set can actually manipulate.

Constraint 1 of the paper: the manipulation vector satisfies (i) ``m >= 0``
— attackers degrade, never improve, performance — and (ii) ``m_i = 0`` for
every path ``P_i`` containing no malicious node.  The helpers here compute
the attacker's *support* (the manipulable path rows), the controlled link
set ``L_m``, and validate candidate vectors against the constraint.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import AttackConstraintError
from repro.routing.paths import PathSet
from repro.topology.graph import NodeId, Topology

__all__ = [
    "attacker_links",
    "manipulable_paths",
    "validate_manipulation_vector",
]


def attacker_links(topology: Topology, attacker_nodes: Iterable[NodeId]) -> set[int]:
    """The controlled link set ``L_m``: links incident to any attacker.

    A malicious node can degrade any link it terminates (Section III-B),
    so those links must be made to *look* normal for the attack to remain
    hidden — they are the constraint set of eq. (5).
    """
    nodes = list(attacker_nodes)
    if not nodes:
        raise AttackConstraintError("attacker node set must not be empty")
    for node in nodes:
        if not topology.has_node(node):
            raise AttackConstraintError(f"attacker node {node!r} is not in the topology")
    return topology.links_incident_to_nodes(nodes)


def manipulable_paths(path_set: PathSet, attacker_nodes: Iterable[NodeId]) -> list[int]:
    """Row indices of paths containing at least one attacker node.

    These are exactly the entries of ``m`` allowed to be non-zero under
    Constraint 1 — the attack's *support*.
    """
    nodes = list(attacker_nodes)
    if not nodes:
        raise AttackConstraintError("attacker node set must not be empty")
    return path_set.paths_containing_any_node(nodes)


def validate_manipulation_vector(
    manipulation: np.ndarray,
    support: Sequence[int],
    num_paths: int,
    *,
    cap: float | None = None,
    atol: float = 1e-9,
) -> np.ndarray:
    """Check a manipulation vector against Constraint 1 (and the path cap).

    Returns the coerced vector.  Raises :class:`AttackConstraintError` on
    negative entries, non-zero entries outside ``support``, or entries
    above ``cap`` (the practical per-path damage limit of Section V-A).
    """
    m = np.asarray(manipulation, dtype=float)
    if m.shape != (num_paths,):
        raise AttackConstraintError(
            f"manipulation vector must have shape ({num_paths},), got {m.shape}"
        )
    if not np.all(np.isfinite(m)):
        raise AttackConstraintError("manipulation vector must be finite")
    if np.any(m < -atol):
        raise AttackConstraintError(
            f"manipulation vector must be non-negative (min {float(m.min())})"
        )
    support_mask = np.zeros(num_paths, dtype=bool)
    support_list = list(support)
    if support_list:
        support_mask[np.asarray(support_list, dtype=int)] = True
    off_support = np.abs(m[~support_mask])
    if off_support.size and float(off_support.max()) > atol:
        bad = int(np.argmax(~support_mask & (np.abs(m) > atol)))
        raise AttackConstraintError(
            f"path {bad} carries manipulation {m[bad]:.6g} but contains no attacker"
        )
    if cap is not None and np.any(m > cap + atol):
        raise AttackConstraintError(
            f"manipulation exceeds the per-path cap {cap} (max {float(m.max()):.6g})"
        )
    return m
