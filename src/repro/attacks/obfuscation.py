"""Obfuscation attacks (eq. 9-11 of the paper).

Instead of framing a specific victim, the attacker blurs the operator's
picture: every link in ``L_o = L_s ∪ L_m`` must land in the *uncertain*
band ``[b_l, b_u]`` — no clean outlier to repair, no clean bill of health
either.  The paper's experiments count an obfuscation successful when at
least 5 victim links show uncertain (Section V-C2); ``min_victims``
captures that.

The victim set is discovered greedily: candidates (non-controlled links the
attacker can push upward) are ranked by manipulability and added one at a
time, keeping each addition only if the LP stays feasible.  Because adding
a link only adds constraints, accepted prefixes remain feasible — the
greedy scan never needs backtracking.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.attacks.base import AttackContext, AttackOutcome
from repro.attacks.lp import BandConstraints, IncrementalLpSolver
from repro.exceptions import AttackError, ValidationError

__all__ = ["ObfuscationAttack", "build_obfuscation_bands"]


def build_obfuscation_bands(
    context: AttackContext,
    obfuscated_links: Iterable[int],
    *,
    mode: str = "paper",
    confined: bool = False,
) -> BandConstraints:
    """Bands for eq. (10): every link in ``L_o`` must look uncertain.

    ``mode="exclusive"`` additionally requires every link outside ``L_o``
    to look *normal* — the operator's report then shows exactly the
    obfuscated set as murky and nothing else drifting abnormal.
    ``confined=True`` pins every link outside ``L_o`` to its true metric —
    the attacker model of the paper's proofs (see
    :func:`repro.attacks.chosen_victim.build_chosen_victim_bands`).
    """
    bands = BandConstraints.unbounded(context.num_links)
    lower = context.thresholds.lower + context.margin
    upper = context.thresholds.upper - context.margin
    target = set(obfuscated_links)
    for j in target:
        bands.require_at_least(j, lower)
        bands.require_at_most(j, upper)
    if mode == "exclusive":
        normal_bound = context.thresholds.lower - context.margin
        for j in range(context.num_links):
            if j not in target:
                bands.require_at_most(j, normal_bound)
    if confined:
        for j in range(context.num_links):
            if j not in target:
                value = float(context.baseline_estimate[j])
                bands.require_at_least(j, value)
                bands.require_at_most(j, value)
    return bands


class ObfuscationAttack:
    """Plan an obfuscation attack.

    Parameters
    ----------
    context:
        Shared attack context.
    min_victims:
        Minimum ``|L_s|`` for the attack to count as successful (paper
        experiments: 5).
    max_victims:
        Stop growing ``L_s`` at this size (default: no limit — obfuscate as
        much as possible).  Experiments set it to ``min_victims`` for speed
        since success is already decided there.
    candidate_links:
        Restrict the victim candidates (default: upward-manipulable,
        non-controlled links).
    engine:
        LP engine for the greedy scan (see
        :func:`repro.attacks.lp_engine.resolve_engine_name`).  The scan
        shares one :class:`~repro.attacks.lp.IncrementalLpSolver` whose
        base block carries the controlled links' uncertain bands; each
        trial splices in only the candidate victims' rows, and
        ``engine="highs"`` additionally warm-starts across trials.
    presolve:
        Enable the Constraint-1 presolve pruner on trial candidates
        (default True).
    """

    strategy_name = "obfuscation"

    def __init__(
        self,
        context: AttackContext,
        *,
        min_victims: int = 5,
        max_victims: int | None = None,
        candidate_links: Iterable[int] | None = None,
        mode: str = "paper",
        stealthy: bool = False,
        confined: bool = False,
        engine: str | None = None,
        presolve: bool = True,
    ) -> None:
        if mode not in ("paper", "exclusive"):
            raise ValidationError(f"mode must be 'paper' or 'exclusive', got {mode!r}")
        self.mode = mode
        if min_victims < 1:
            raise ValidationError(f"min_victims must be >= 1 (eq. 11), got {min_victims}")
        if max_victims is not None and max_victims < min_victims:
            raise ValidationError(
                f"max_victims={max_victims} must be >= min_victims={min_victims}"
            )
        self.context = context
        self.min_victims = min_victims
        self.max_victims = max_victims
        self.stealthy = stealthy
        self.confined = confined
        self.engine = engine
        self.presolve = bool(presolve)
        self._solver: IncrementalLpSolver | None = None
        if candidate_links is None:
            mask = context.manipulable_link_mask()
            candidates = [
                j
                for j in range(context.num_links)
                if mask[j] and j not in context.controlled_links
            ]
        else:
            candidates = sorted(set(int(j) for j in candidate_links))
            for j in candidates:
                if not 0 <= j < context.num_links:
                    raise ValidationError(f"candidate link index {j} out of range")
                if j in context.controlled_links:
                    raise ValidationError(
                        f"candidate {j} is attacker-controlled; L_s excludes L_m"
                    )
        # Rank by manipulability: the largest positive estimator coefficient
        # over supported paths — easiest links first keeps the greedy scan
        # productive.
        if context.support:
            sub = context.support_operator
            strength = {j: float(np.max(sub[j])) for j in candidates}
        else:
            strength = {j: 0.0 for j in candidates}
        self.candidates = tuple(sorted(candidates, key=lambda j: -strength[j]))

    def _trial_solver(self) -> IncrementalLpSolver:
        """Shared incremental solver for the greedy growth.

        The base block is the obfuscation bands for an *empty* victim set
        (controlled links uncertain, plus the exclusive/confined rows);
        each trial overrides exactly its victims' bands to the uncertain
        band — byte-for-byte the bands a from-scratch
        :func:`build_obfuscation_bands` would produce for that set.
        """
        if self._solver is None:
            base_bands = build_obfuscation_bands(
                self.context,
                self.context.controlled_links,
                mode=self.mode,
                confined=self.confined,
            )
            self._solver = IncrementalLpSolver(
                None,
                self.context.baseline_estimate,
                self.context.support,
                self.context.num_paths,
                base_bands,
                cap=self.context.cap,
                sub_operator=self.context.support_operator,
                consistency_columns=(
                    self.context.residual_projector_support() if self.stealthy else None
                ),
                engine=self.engine,
                presolve=self.presolve,
            )
        return self._solver

    def _victim_overrides(
        self, victims: tuple[int, ...]
    ) -> dict[int, tuple[float, float]]:
        """Per-victim uncertain-band override (eq. 10 with the margin)."""
        lower = self.context.thresholds.lower + self.context.margin
        upper = self.context.thresholds.upper - self.context.margin
        return {j: (lower, upper) for j in victims}

    def _solve(self, victims: tuple[int, ...]):
        return self._trial_solver().solve(self._victim_overrides(victims))

    def run(self) -> AttackOutcome:
        """Grow the victim set greedily; succeed at ``min_victims`` or more."""
        if not self.candidates:
            return AttackOutcome.infeasible(
                self.strategy_name, "no manipulable victim candidates"
            )
        victims: list[int] = []
        best_solution = None
        for j in self.candidates:
            if self.max_victims is not None and len(victims) >= self.max_victims:
                break
            trial = tuple(victims + [j])
            solution = self._solve(trial)
            if solution.feasible:
                victims.append(j)
                best_solution = solution
        if best_solution is None or len(victims) < self.min_victims:
            return AttackOutcome.infeasible(
                self.strategy_name,
                f"only {len(victims)} obfuscatable victims found, "
                f"need {self.min_victims}",
                tuple(victims),
            )
        if best_solution.manipulation is None:
            raise AttackError("feasible obfuscation LP returned no manipulation")
        return AttackOutcome.from_manipulation(
            self.strategy_name,
            self.context,
            best_solution.manipulation,
            tuple(victims),
            best_solution.status,
            extras={
                "mode": self.mode,
                "num_victims": len(victims),
                "stealthy": self.stealthy,
                "min_victims": self.min_victims,
                "unbounded": best_solution.unbounded,
            },
        )
