"""Scapegoating attacks on network tomography.

A production-quality reproduction of *"When Seeing Isn't Believing: On
Feasibility and Detectability of Scapegoating in Network Tomography"*
(Zhao, Lu & Wang, IEEE ICDCS 2017): the tomography substrate (topologies,
monitor placement, measurement paths, least-squares inversion), the three
scapegoating strategies (chosen-victim, maximum-damage, obfuscation) as
linear programs over the attack manipulation vector, perfect/imperfect cut
feasibility analysis, the consistency-based detector, a packet-level
measurement simulator, and the full experiment harness regenerating the
paper's Figs. 4-9.

Quickstart::

    from repro import (
        paper_example_network, Scenario, ChosenVictimAttack,
    )
    topo = paper_example_network()
    scenario = Scenario.build(topo, monitors=["M1", "M2", "M3"], rng=7)
    context = scenario.attack_context(["B", "C"])
    outcome = ChosenVictimAttack(context, victim_links=[9]).run()
    print(outcome.feasible, outcome.damage)

See ``examples/`` for complete walkthroughs and ``benchmarks/`` for the
per-figure reproduction harness.
"""

from repro.exceptions import (
    AttackConstraintError,
    AttackError,
    ContractViolation,
    DetectionError,
    IdentifiabilityError,
    InfeasibleAttackError,
    MeasurementError,
    MonitorPlacementError,
    ReproError,
    TomographyError,
    TopologyError,
    ValidationError,
)
from repro.topology import (
    Link,
    Topology,
    paper_example_network,
    random_geometric_topology,
    synthetic_rocketfuel,
)
from repro.routing import (
    MeasurementPath,
    PathSet,
    identifiability_report,
    k_shortest_paths,
    routing_matrix,
    select_identifiable_paths,
)
from repro.monitors import (
    incremental_identifiable_placement,
    random_monitor_placement,
    security_aware_placement,
)
from repro.metrics import (
    LinkState,
    StateThresholds,
    classify_vector,
    uniform_delay_metrics,
)
from repro.measurement import (
    AnalyticMeasurementEngine,
    GaussianNoise,
    NetworkSimulator,
    NoNoise,
    PathManipulationAgent,
)
from repro.tomography import (
    LeastSquaresEstimator,
    LinearSystem,
    NonNegativeEstimator,
    RidgeEstimator,
    diagnose,
)
from repro.attacks import (
    AttackContext,
    AttackOutcome,
    AttackPlan,
    ChosenVictimAttack,
    FrameAndBlurAttack,
    MaxDamageAttack,
    NaiveDelayAttack,
    ObfuscationAttack,
    attack_presence_ratio,
    compile_attack_plan,
    compromise_budget_ranking,
    is_perfect_cut,
    minimum_perfect_cut_nodes,
)
from repro.detection import (
    ConsistencyDetector,
    TomographyAuditor,
    TrimmedLeastSquares,
)
from repro.scenarios import MeasurementCampaign, Scenario

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "TopologyError",
    "IdentifiabilityError",
    "MonitorPlacementError",
    "MeasurementError",
    "TomographyError",
    "AttackError",
    "AttackConstraintError",
    "InfeasibleAttackError",
    "DetectionError",
    "ValidationError",
    "ContractViolation",
    # topology
    "Link",
    "Topology",
    "paper_example_network",
    "random_geometric_topology",
    "synthetic_rocketfuel",
    # routing
    "MeasurementPath",
    "PathSet",
    "identifiability_report",
    "k_shortest_paths",
    "routing_matrix",
    "select_identifiable_paths",
    # monitors
    "incremental_identifiable_placement",
    "random_monitor_placement",
    "security_aware_placement",
    # metrics
    "LinkState",
    "StateThresholds",
    "classify_vector",
    "uniform_delay_metrics",
    # measurement
    "AnalyticMeasurementEngine",
    "GaussianNoise",
    "NoNoise",
    "NetworkSimulator",
    "PathManipulationAgent",
    # tomography
    "LeastSquaresEstimator",
    "LinearSystem",
    "NonNegativeEstimator",
    "RidgeEstimator",
    "diagnose",
    # attacks
    "AttackContext",
    "AttackOutcome",
    "AttackPlan",
    "ChosenVictimAttack",
    "FrameAndBlurAttack",
    "MaxDamageAttack",
    "NaiveDelayAttack",
    "ObfuscationAttack",
    "attack_presence_ratio",
    "compile_attack_plan",
    "compromise_budget_ranking",
    "is_perfect_cut",
    "minimum_perfect_cut_nodes",
    # detection
    "ConsistencyDetector",
    "TomographyAuditor",
    "TrimmedLeastSquares",
    # scenarios
    "MeasurementCampaign",
    "Scenario",
]
