"""ASCII table rendering."""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_kv", "format_sweep_summary"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table with a header rule.

    >>> print(format_table(["a", "b"], [[1, 2.5], ["xx", float("nan")]]))
    a   b
    --  ---
    1   2.5
    xx  n/a
    """
    string_rows = [[_cell(v) for v in row] for row in rows]
    header_cells = [str(h) for h in headers]
    widths = [len(h) for h in header_cells]
    for row in string_rows:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(header_cells)}"
            )
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    lines = [
        "  ".join(cell.ljust(w) for cell, w in zip(header_cells, widths)).rstrip(),
        "  ".join("-" * w for w in widths).rstrip(),
    ]
    for row in string_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_kv(title: str, mapping: dict) -> str:
    """Render a titled key/value block for scenario descriptions."""
    width = max((len(str(k)) for k in mapping), default=0)
    lines = [title, "=" * len(title)]
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(width)}  {_cell(value)}")
    return "\n".join(lines)


def format_sweep_summary(rows: Iterable[dict], *, title: str = "Sweep summary") -> str:
    """Render aggregated sweep rows (see :func:`repro.sweep.aggregate_rows`).

    One line per (topology, strategy) group: grid points, feasible count,
    success rate, mean damage over feasible points, and the consistency
    detector's hit rate among audited (feasible) points.
    """
    table_rows = []
    for row in rows:
        mean_damage = row.get("mean_damage")
        detection = row.get("detection_rate")
        table_rows.append(
            [
                row["topology"],
                row["strategy"],
                row["points"],
                row["feasible"],
                f"{row['success_rate']:.0%}",
                "n/a" if mean_damage is None else f"{mean_damage:.1f}",
                "n/a" if detection is None else f"{detection:.0%}",
            ]
        )
    table = format_table(
        ["topology", "strategy", "points", "feasible", "success", "mean damage", "detected"],
        table_rows,
    )
    return f"{title}\n{'=' * len(title)}\n{table}"
