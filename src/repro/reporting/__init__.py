"""Plain-text reporting of experiment results.

Benchmarks print the same rows/series each paper figure plots; these
helpers render them as aligned ASCII tables and labelled series so the
EXPERIMENTS.md comparisons can be regenerated verbatim.
"""

from repro.reporting.tables import format_table, format_kv, format_sweep_summary
from repro.reporting.figures import (
    format_fig4_series,
    format_detection_table,
    format_success_bins,
    format_link_series,
)

__all__ = [
    "format_table",
    "format_kv",
    "format_sweep_summary",
    "format_fig4_series",
    "format_detection_table",
    "format_success_bins",
    "format_link_series",
]
