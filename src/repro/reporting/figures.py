"""Per-figure formatting: print the series each paper figure plots."""

from __future__ import annotations

from collections.abc import Sequence

from repro.reporting.tables import format_table

__all__ = [
    "format_link_series",
    "format_fig4_series",
    "format_success_bins",
    "format_detection_table",
]


def format_link_series(
    estimates: Sequence[float],
    states: Sequence[str],
    *,
    title: str,
    victim_links: Sequence[int] = (),
    controlled_links: Sequence[int] = (),
) -> str:
    """Per-link estimated metric table (the Figs. 4-6 bar series).

    Links are listed with paper-style 1-based numbers alongside the
    library's 0-based indices; victim and attacker-controlled links are
    annotated so the figure's story is readable in text form.
    """
    victims = set(victim_links)
    controlled = set(controlled_links)
    rows = []
    for index, (value, state) in enumerate(zip(estimates, states)):
        role = []
        if index in victims:
            role.append("victim")
        if index in controlled:
            role.append("attacker-controlled")
        rows.append([index + 1, index, f"{value:.1f}", state, ", ".join(role)])
    table = format_table(
        ["link#", "index", "est-delay(ms)", "state", "role"], rows
    )
    return f"{title}\n{table}"


def format_fig4_series(record: dict, *, title: str) -> str:
    """Render a Figs. 4-6 case-study record (from scenarios.simple_network)."""
    if not record.get("feasible"):
        return f"{title}\nATTACK INFEASIBLE: {record['outcome'].status}"
    scenario = record["scenario"]
    controlled = sorted(
        scenario.topology.links_incident_to_nodes(["B", "C"])
        if scenario.topology.has_node("B")
        else []
    )
    body = format_link_series(
        record["estimates"],
        record["states"],
        title=title,
        victim_links=record.get("victim_links", ()),
        controlled_links=controlled,
    )
    footer = (
        f"damage ||m||_1 = {record['damage']:.1f} ms over all paths; "
        f"mean path measurement = {record['mean_path_delay']:.1f} ms"
    )
    return f"{body}\n{footer}"


def format_success_bins(bins: Sequence[dict], *, title: str) -> str:
    """Render Fig. 7-style binned success probabilities."""
    rows = [
        [
            f"{b['lo']:.1f}-{b['hi']:.1f}",
            b["count"],
            b["rate"] if b["rate"] == b["rate"] else float("nan"),
        ]
        for b in bins
    ]
    return f"{title}\n" + format_table(
        ["presence-ratio", "trials", "success-rate"], rows
    )


def format_detection_table(cells: Sequence[dict], *, title: str) -> str:
    """Render the Fig. 9 detection-ratio grid.

    ``cells`` are outputs of
    :func:`repro.scenarios.detection_experiments.detection_ratio_experiment`.
    """
    rows = [
        [
            c["strategy"],
            c["cut"],
            c["num_successful_attacks"],
            c["detection_ratio"],
        ]
        for c in cells
    ]
    return f"{title}\n" + format_table(
        ["strategy", "cut", "successful-attacks", "detection-ratio"], rows
    )
