"""Ablation — security-aware monitor placement (the Section VI proposal).

The paper suggests a new placement objective: after ensuring
identifiability, minimise every node's presence ratio on measurement
paths, so that a future compromise of any single node controls as few
measurements as possible (Theorem 2 ties success probability to exactly
that coverage).

This bench compares a single random identifiable placement against the
security-aware search on a mid-size topology: the chosen placement's
worst-node presence ratio, and the resulting single-attacker max-damage
success rate, should not be worse.
"""

import pytest

from repro.attacks.max_damage import MaxDamageAttack
from repro.metrics.link_metrics import uniform_delay_metrics
from repro.monitors.placement import (
    incremental_identifiable_placement,
    max_node_presence_ratio,
    security_aware_placement,
)
from repro.reporting.tables import format_table
from repro.scenarios.scenario import Scenario
from repro.topology.generators.isp import synthetic_rocketfuel

pytestmark = pytest.mark.slow

NUM_ATTACK_TRIALS = 25


def _attack_success_rate(placement, topology, seed=0) -> float:
    metrics = uniform_delay_metrics(topology, rng=seed)
    scenario = Scenario(
        topology=topology,
        monitors=placement.monitors,
        path_set=placement.path_set,
        true_metrics=metrics,
        name="placement-ablation",
    )
    import numpy as np

    rng = np.random.default_rng(seed)
    nodes = topology.nodes()
    successes = 0
    for _ in range(NUM_ATTACK_TRIALS):
        attacker = nodes[int(rng.integers(len(nodes)))]
        context = scenario.attack_context([attacker])
        outcome = MaxDamageAttack(
            context, stop_at_first_feasible=True, confined=True
        ).run()
        successes += bool(outcome.feasible)
    return successes / NUM_ATTACK_TRIALS


def test_ablation_security_aware_placement(benchmark, record):
    topology = synthetic_rocketfuel(
        "placement",
        backbone_nodes=6,
        pops_per_backbone=1,
        access_per_pop=(1, 2),
        extra_backbone_chords=3,
        seed=5,
    )

    def run():
        baseline = incremental_identifiable_placement(
            topology, initial_monitors=6, rng=21
        )
        hardened = security_aware_placement(
            topology, candidates=8, initial_monitors=6, rng=21
        )
        rows = []
        for label, placement in [("random", baseline), ("security-aware", hardened)]:
            ratio = max_node_presence_ratio(
                placement.path_set, exclude=set(placement.monitors)
            )
            rows.append(
                {
                    "label": label,
                    "monitors": len(placement.monitors),
                    "rank": placement.identified_rank,
                    "max_presence": ratio,
                    "attack_success": _attack_success_rate(placement, topology),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["placement", "monitors", "rank", "max presence ratio", "1-attacker success"],
        [
            [r["label"], r["monitors"], r["rank"], r["max_presence"], r["attack_success"]]
            for r in rows
        ],
    )
    record(
        "ablation_placement",
        "Ablation: security-aware monitor placement (Section VI)\n" + table,
    )

    baseline, hardened = rows
    assert hardened["rank"] >= baseline["rank"]
    if hardened["rank"] == baseline["rank"]:
        assert hardened["max_presence"] <= baseline["max_presence"] + 1e-9
