"""Ablation — attacker sophistication vs detectability.

Three attacker models against the eq. (23) detector on imperfect cuts:

- ``plain``: damage-maximising LP, no care for consistency — always caught;
- ``confined``: the paper's proof model (estimate changes limited to
  ``L_m ∪ L_s``) — always caught on imperfect cuts (Theorem 3);
- ``unconfined``: may also perturb uninvolved links' estimates and prefers
  measurement-consistent solutions — evades the detector in a fraction of
  imperfect-cut cases.  **This is the library's headline extension
  finding**: Theorem 3's detectability guarantee rests on the confinement
  assumption inside its proof, not on the detector itself.
"""

import pytest

from repro.reporting.tables import format_table
from repro.scenarios.detection_experiments import detection_ratio_experiment

pytestmark = pytest.mark.slow

NUM_TRIALS = 40
MODELS = ("plain", "confined", "unconfined")


def test_ablation_attacker_models(benchmark, fig1_scenario, record):
    def run():
        rows = []
        for model in MODELS:
            cell = detection_ratio_experiment(
                fig1_scenario,
                "chosen-victim",
                "imperfect",
                num_trials=NUM_TRIALS,
                attacker_model=model,
                seed=13,
            )
            rows.append(
                {
                    "model": model,
                    "successes": cell["num_successful_attacks"],
                    "detection_ratio": cell["detection_ratio"],
                    "attack_success_rate": cell["attack_success_rate"],
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["attacker model", "successful attacks", "detection ratio", "attack success"],
        [
            [r["model"], r["successes"], r["detection_ratio"], r["attack_success_rate"]]
            for r in rows
        ],
    )
    record(
        "ablation_attacker_models",
        "Ablation: attacker model vs detectability (imperfect cuts)\n" + table,
    )

    by_model = {r["model"]: r for r in rows}
    assert by_model["plain"]["detection_ratio"] == 1.0
    assert by_model["confined"]["detection_ratio"] == 1.0
    # The stronger attacker both succeeds more often and gets caught less.
    assert (
        by_model["unconfined"]["attack_success_rate"]
        >= by_model["confined"]["attack_success_rate"]
    )
    assert by_model["unconfined"]["detection_ratio"] < 1.0
