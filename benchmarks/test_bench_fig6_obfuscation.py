"""Fig. 6 — obfuscation on the Fig. 1 network.

Paper: attackers B and C drive every link's estimated delay into the
intermediate band, so the operator cannot tell which link is actually
problematic.

Shape targets: the attack is feasible, every link classifies *uncertain*
(estimates inside [100, 800] ms), and no single link dominates the way the
scapegoats do in Figs. 4-5.
"""

from repro.reporting.figures import format_fig4_series
from repro.scenarios.simple_network import obfuscation_case_study


def test_fig6_obfuscation(benchmark, record):
    result = benchmark.pedantic(obfuscation_case_study, rounds=1, iterations=1)
    text = format_fig4_series(
        result,
        title="Fig. 6 regeneration: obfuscation — every link in the uncertain band",
    )
    record("fig6_obfuscation", text)

    assert result["feasible"]
    assert all(state == "uncertain" for state in result["states"])
    assert all(100.0 <= value <= 800.0 for value in result["estimates"])
    assert result["damage"] > 0
