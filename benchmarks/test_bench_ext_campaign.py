"""Extension — scapegoating over a multi-round measurement campaign.

An operator running tomography periodically acts on *persistent*
anomalies.  This bench runs a 20-round campaign against the Fig. 1
scenario for three attacker profiles and reports what the operator's
logbook shows: the stealthy perfect-cut attacker frames link 1 in every
round and is never detected; the imperfect-cut attacker is caught from
its first active round; an intermittent attacker is caught exactly in its
active rounds.
"""

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.reporting.tables import format_table
from repro.scenarios.timeseries import MeasurementCampaign

ROUNDS = 20


def test_ext_campaign_timeline(benchmark, fig1_scenario, record):
    def run():
        context = fig1_scenario.attack_context(["B", "C"])
        stealthy = ChosenVictimAttack(context, [0], stealthy=True).run()
        loud = ChosenVictimAttack(context, [9], mode="exclusive").run()
        campaign = MeasurementCampaign(fig1_scenario)
        return {
            "stealthy": campaign.run(ROUNDS, manipulation=stealthy.manipulation, rng=0),
            "persistent": campaign.run(ROUNDS, manipulation=loud.manipulation, rng=0),
            "intermittent": campaign.run(
                ROUNDS,
                manipulation=loud.manipulation,
                active_rounds=[3, 7, 8, 15],
                rng=0,
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for label, result in results.items():
        latency = result.detection_latency()
        rows.append(
            [
                label,
                len(result.attacked_rounds),
                len(result.detected_rounds),
                latency if latency is not None else "never",
                result.most_blamed_link(),
                max(result.blame_counts.values(), default=0),
            ]
        )
    text = (
        f"Extension: {ROUNDS}-round measurement campaigns (Fig. 1 scenario)\n"
        + format_table(
            [
                "attacker",
                "attacked rounds",
                "detected rounds",
                "detection latency",
                "most blamed link",
                "blame rounds",
            ],
            rows,
        )
    )
    record("ext_campaign", text)

    stealthy = results["stealthy"]
    assert stealthy.detected_rounds == ()
    assert stealthy.most_blamed_link() == 0
    assert stealthy.blame_counts[0] == ROUNDS

    persistent = results["persistent"]
    assert persistent.detection_latency() == 0
    assert len(persistent.detected_rounds) == ROUNDS

    intermittent = results["intermittent"]
    assert set(intermittent.detected_rounds) == {3, 7, 8, 15}
    assert intermittent.false_alarm_rounds == ()
