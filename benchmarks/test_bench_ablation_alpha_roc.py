"""Ablation — detector threshold alpha vs noise: an operating curve.

Remark 4 notes real measurements carry randomness, so the detector tests
``||R x_hat - y'||_1 > alpha``.  This bench sweeps alpha under Gaussian
per-path noise and reports, per alpha: the false-alarm rate on clean
rounds and the detection rate on (unconfined, non-stealthy) imperfect-cut
attacks.  The attack residuals are enormous compared to noise residuals,
so a wide band of alphas separates them perfectly — which is why the
paper's empirically chosen 200 ms works.
"""

import numpy as np

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.detection.consistency import ConsistencyDetector
from repro.measurement.noise import GaussianNoise
from repro.reporting.tables import format_table

ALPHAS = [1.0, 10.0, 50.0, 200.0, 1000.0, 5000.0]
NOISE_SIGMA = 2.0
ROUNDS = 30


def test_ablation_alpha_roc(benchmark, fig1_scenario, record):
    def run():
        engine = fig1_scenario.engine(GaussianNoise(NOISE_SIGMA))
        context = fig1_scenario.attack_context(["B", "C"])
        attack = ChosenVictimAttack(context, [9], mode="exclusive").run()
        assert attack.feasible
        rng = np.random.default_rng(42)
        clean_rounds = [
            engine.measure(fig1_scenario.true_metrics, rng=rng) for _ in range(ROUNDS)
        ]
        attacked_rounds = [
            engine.measure(
                fig1_scenario.true_metrics, manipulation=attack.manipulation, rng=rng
            )
            for _ in range(ROUNDS)
        ]
        rows = []
        matrix = fig1_scenario.path_set.routing_matrix()
        for alpha in ALPHAS:
            detector = ConsistencyDetector(matrix, alpha=alpha)
            false_alarms = sum(detector.check(y).detected for y in clean_rounds)
            detections = sum(detector.check(y).detected for y in attacked_rounds)
            rows.append(
                {
                    "alpha": alpha,
                    "false_alarm_rate": false_alarms / ROUNDS,
                    "detection_rate": detections / ROUNDS,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["alpha (ms)", "false alarms", "detections"],
        [[r["alpha"], r["false_alarm_rate"], r["detection_rate"]] for r in rows],
    )
    record(
        "ablation_alpha_roc",
        f"Ablation: alpha sweep under sigma={NOISE_SIGMA} ms noise\n" + table,
    )

    # False alarms fall as alpha grows; detections fall too (monotone ROC).
    fa = [r["false_alarm_rate"] for r in rows]
    det = [r["detection_rate"] for r in rows]
    assert fa == sorted(fa, reverse=True)
    assert det == sorted(det, reverse=True)
    # The paper's alpha = 200 ms sits in the perfect-separation band.
    paper_row = next(r for r in rows if r["alpha"] == 200.0)
    assert paper_row["false_alarm_rate"] == 0.0
    assert paper_row["detection_rate"] == 1.0
