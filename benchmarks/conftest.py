"""Shared benchmark fixtures.

Each bench regenerates one paper figure's rows/series.  The rendered text
is printed (visible with ``-s``) and also written under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from files.

Scenario construction is session-scoped: the heavyweight wireline /
wireless scenarios are built once per benchmark run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.scenarios.experiments import (
    standard_wireless_scenario,
    standard_wireline_scenario,
)
from repro.scenarios.simple_network import paper_fig1_scenario

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def record(results_dir):
    """Callable ``record(name, text)`` -> prints and persists a series."""

    def _record(name: str, text: str) -> str:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")
        return text

    return _record


@pytest.fixture(scope="session")
def fig1_scenario():
    """The deterministic Fig. 1 scenario (Section V-A/B setup)."""
    return paper_fig1_scenario()


@pytest.fixture(scope="session")
def wireline_scenario():
    """The AS1221-style wireline scenario (Section V-C setup)."""
    return standard_wireline_scenario(seed=0)


@pytest.fixture(scope="session")
def wireless_scenario():
    """The RGG wireless scenario (Section V-C setup)."""
    return standard_wireless_scenario(seed=0)
