"""Ablation — how much does the attacker need to know about `x*`?

The strategy LPs plan against the routine link metrics; the paper (and
the library's default contexts) grant the attacker exact knowledge.  This
bench perturbs the attacker's belief by Gaussian error of growing sigma,
plans against the belief, executes against reality, and scores whether
the *realised* estimate still frames the victim cleanly.

Headline shape: LP optima hug the band boundaries, so with the default
1 ms planning margin even ~2 ms of knowledge error destroys the realised
attack — while re-planning with a 25 ms margin restores near-perfect
success across the same error range.  The attacker's *margin*, not the
gap between routine metrics and the bands, is the robustness budget.
"""

import pytest

from repro.reporting.tables import format_table
from repro.scenarios.sensitivity import knowledge_sensitivity_experiment

pytestmark = pytest.mark.slow

SIGMAS = (0.0, 2.0, 5.0, 10.0, 20.0)
MARGINS = (1.0, 25.0)


def test_ablation_knowledge_sensitivity(benchmark, fig1_scenario, record):
    def run():
        return {
            margin: knowledge_sensitivity_experiment(
                fig1_scenario,
                ["B", "C"],
                [9],
                knowledge_sigmas=SIGMAS,
                num_trials=20,
                margin=margin,
                seed=5,
            )
            for margin in MARGINS
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for sigma_index, sigma in enumerate(SIGMAS):
        rows.append(
            [sigma]
            + [results[m]["rows"][sigma_index]["realised_rate"] for m in MARGINS]
        )
    text = (
        "Ablation: attacker knowledge error vs realised attack success "
        "(chosen-victim on link 10)\n"
        + format_table(
            ["knowledge sigma (ms)"]
            + [f"realised (margin {m:g} ms)" for m in MARGINS],
            rows,
        )
    )
    record("ablation_knowledge", text)

    fragile = {r["sigma"]: r for r in results[1.0]["rows"]}
    robust = {r["sigma"]: r for r in results[25.0]["rows"]}
    assert fragile[0.0]["realised_rate"] == 1.0
    # Boundary-hugging default margin: broken by tiny knowledge error.
    assert fragile[5.0]["realised_rate"] <= 0.2
    # A generous margin restores robustness across the same error range.
    assert robust[5.0]["realised_rate"] >= 0.9
    for result in results.values():
        for row in result["rows"]:
            assert row["realised_rate"] <= row["planned_rate"] + 1e-9
