"""Fig. 1 — the example network and its 23 measurement paths.

Regenerates the figure's content as data: the 7-node/10-link topology with
the paper's link numbering, the three monitors, and the 23 selected
measurement paths (each listed as its link sequence, as in the figure's
path table).
"""

from repro.reporting.tables import format_kv, format_table
from repro.routing.routing_matrix import identifiability_report


def _render(scenario) -> str:
    topo = scenario.topology
    report = identifiability_report(scenario.path_set)
    header = format_kv(
        "Fig. 1 reconstruction: example network",
        {
            "nodes": topo.num_nodes,
            "links": topo.num_links,
            "monitors": ", ".join(str(m) for m in scenario.monitors),
            "paths": scenario.path_set.num_paths,
            "routing matrix rank": report.rank,
            "fully identifiable": report.full_column_rank,
        },
    )
    link_rows = [
        [link.index + 1, link.index, str(link.u), str(link.v)]
        for link in topo.links()
    ]
    links_table = format_table(["paper#", "index", "u", "v"], link_rows)
    path_rows = []
    for i, path in enumerate(scenario.path_set, start=1):
        links = ", ".join(str(j + 1) for j in path.link_indices)
        route = " -> ".join(str(n) for n in path.nodes)
        path_rows.append([i, links, route])
    paths_table = format_table(["path#", "paper links", "route"], path_rows)
    return f"{header}\n\n{links_table}\n\n{paths_table}"


def test_fig1_topology_and_paths(benchmark, fig1_scenario, record):
    text = benchmark.pedantic(
        lambda: _render(fig1_scenario), rounds=1, iterations=1
    )
    record("fig1_topology", text)
    assert "paths" in text
    assert fig1_scenario.path_set.num_paths == 23
