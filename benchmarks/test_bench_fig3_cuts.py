"""Fig. 3 — perfect vs imperfect cut examples.

The paper's Fig. 3 illustrates two attacker placements around a victim
link: one that intercepts every measurement path through the victim
(perfect cut) and one that misses a path (imperfect).  We regenerate both
situations on the Fig. 1 network and report the per-victim cut status and
presence ratio for the canonical attackers B and C.
"""

from repro.attacks.cuts import attack_presence_ratio, is_perfect_cut, uncut_victim_paths
from repro.reporting.tables import format_table


def _render(scenario) -> tuple[str, list]:
    attackers = ["B", "C"]
    controlled = scenario.topology.links_incident_to_nodes(attackers)
    rows = []
    data = []
    for link in scenario.topology.links():
        if link.index in controlled:
            continue
        perfect = is_perfect_cut(scenario.path_set, attackers, [link.index])
        ratio = attack_presence_ratio(scenario.path_set, attackers, [link.index])
        uncut = uncut_victim_paths(scenario.path_set, attackers, [link.index])
        rows.append(
            [
                link.index + 1,
                f"{link.u}-{link.v}",
                "perfect" if perfect else "imperfect",
                f"{ratio:.2f}",
                len(uncut),
            ]
        )
        data.append({"link": link.index, "perfect": perfect, "ratio": ratio})
    table = format_table(
        ["paper#", "endpoints", "cut", "presence-ratio", "uncut paths"], rows
    )
    return (
        "Fig. 3 regeneration: cut status of every candidate victim for attackers B, C\n"
        + table,
        data,
    )


def test_fig3_cut_examples(benchmark, fig1_scenario, record):
    text, data = benchmark.pedantic(
        lambda: _render(fig1_scenario), rounds=1, iterations=1
    )
    record("fig3_cuts", text)
    by_link = {d["link"]: d for d in data}
    # The paper's two situations both occur: link 1 (M1-A) is perfectly cut,
    # link 10 (D-M2) is not.
    assert by_link[0]["perfect"] and by_link[0]["ratio"] == 1.0
    assert not by_link[9]["perfect"] and by_link[9]["ratio"] < 1.0
