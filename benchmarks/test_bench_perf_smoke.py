"""Perf smoke — the shared-kernel speedups, recorded to BENCH_perf.json.

Runs the timing harness from ``repro.perf.bench`` on the Fig. 1 scenario:
the Fig. 5 max-damage workload timed with the seed-style independent
factorisations / per-link LP assembly versus the shared ``LinearSystem``
kernel and incremental ``IncrementalLpSolver``, plus the instrumented
full-pipeline stage breakdown.  The JSON lands in
``benchmarks/results/BENCH_perf.json``.

The speedup assertion uses a safety margin below the headline target
(typically ~2-3x on this workload) so that a loaded CI box does not turn
timing noise into a failure; the measured numbers are what the JSON
records.
"""

import json

from repro.perf import full_perf_benchmark, write_bench_json

# Headline target is >= 2x; assert with margin against timing noise.
MIN_COMBINED_SPEEDUP = 1.5

# LP engine acceptance floor: headline target is >= 5x cold-vs-warm on the
# fig5 scan (measured ~9-20x with HiGHS bindings); 3x absorbs CI noise.
MIN_LP_WARM_SPEEDUP = 3.0

# Sweep-cache acceptance floor: cached-vs-cold on the bench grid must hold
# >= 2x (measured ~3-4x; the shared per-matrix work — SVD, LP base block,
# auditor, canonical hash — is the majority of a cold point there).
MIN_SWEEP_CACHE_SPEEDUP = 2.0


def test_perf_smoke_writes_bench_json(results_dir, record):
    benchmarks = full_perf_benchmark(repeat=3)
    path = results_dir / "BENCH_perf.json"
    write_bench_json(benchmarks, path)

    envelope = json.loads(path.read_text())
    assert envelope["schema_version"] == 1
    assert set(envelope["benchmarks"]) == {
        "fig1_pipeline",
        "fig5_max_damage",
        "lp",
        "sweep_cache",
        "backends",
    }

    fig5 = envelope["benchmarks"]["fig5_max_damage"]
    speedup = fig5["speedup"]
    record(
        "BENCH_perf_summary",
        "perf smoke: svd x{svd:.2f}, lp_assembly x{lp_assembly:.2f}, "
        "combined x{combined:.2f}".format(**speedup),
    )
    assert speedup["svd"] > 1.0
    assert speedup["lp_assembly"] > 1.0
    assert speedup["combined"] >= MIN_COMBINED_SPEEDUP

    # Per-stage timings and counters must be present for both paths.
    for side in ("seed_path", "optimized_path"):
        for key in ("svd_s", "lp_assembly_s", "total_s"):
            assert fig5[side][key] >= 0.0
    assert fig5["optimized_path"]["svd_calls_per_context"] == 1

    fig1 = envelope["benchmarks"]["fig1_pipeline"]
    assert fig1["counters"]["svd"] >= 1
    assert fig1["counters"]["lp_solve"] >= 1
    for stage in ("context_build", "max_damage", "detection"):
        assert stage in fig1["stages"]

    lp = envelope["benchmarks"]["lp"]
    record(
        "BENCH_lp_summary",
        "lp engine ({engine}): cold/warm x{warm:.2f}, gap {gap:.2e}".format(
            engine=lp["engine"],
            warm=lp["speedup"]["fig5_max_damage"],
            gap=lp["max_damage_gap"],
        ),
    )
    # All three phases solve identical LPs — optimal damage must agree to
    # solver tolerance regardless of which engine ran.
    assert lp["max_damage_gap"] <= 1e-6
    for phase in ("cold_s", "incremental_s", "warm_s"):
        assert lp["phases"][phase] > 0.0
    if lp["engine"] == "highs":
        # The persistent warm-started model is the acceptance headline;
        # without HiGHS bindings the warm phase aliases the incremental
        # scipy path and no floor applies.
        assert lp["speedup"]["fig5_max_damage"] >= MIN_LP_WARM_SPEEDUP

    sweep = envelope["benchmarks"]["sweep_cache"]
    record(
        "BENCH_sweep_summary",
        "sweep cache: cached-vs-cold x{sweep:.2f}, "
        "cross-process factorize x{store_factorize:.2f}".format(**sweep["speedup"]),
    )
    assert sweep["points"] >= 4
    assert sweep["speedup"]["sweep"] >= MIN_SWEEP_CACHE_SPEEDUP
    assert sweep["cache_stats"]["system_hit"] > 0
    # The cache must hash each distinct matrix exactly once per process.
    assert sweep["cache_stats"]["digest_compute"] == 1
    # Cross-process phase: the child warm-started from the disk store
    # (real import, not a recompute), and every phase agreed bit-for-bit.
    assert sweep["store_phase"]["warm_store_stats"]["hit"] >= 1
    assert sweep["store_phase"]["warm_cache_stats"]["store_import"] >= 1
    assert sweep["store_phase"]["seed_write_stats"]["write"] >= 1
    assert sweep["speedup"]["store_factorize"] > 1.0
    assert sweep["identical"] == {"cached_vs_cold": True, "store_vs_cold": True}

    backends = envelope["benchmarks"]["backends"]
    isp = backends["isp_scale"]
    # The acceptance floor for the sparse kernel: >= 3x on the ISP-scale
    # factorise+estimate stage (measured tens-of-x; 3x leaves timing
    # headroom on loaded CI boxes).
    assert isp["links"] >= 2000 and isp["paths"] >= 1500
    assert backends["speedup"]["isp_factorize_estimate"] >= 3.0
    assert len(backends["crossover"]) >= 3
