"""Ablation — presence-aware path selection as a defence (Section VI).

Same topology, same monitors, same ground truth; only the path-selection
strategy differs.  The load-flattening selector cuts the worst node's
presence ratio several-fold and with it the single-attacker max-damage
success rate — Theorem 2's coverage lever, pulled by the defender at the
path-selection layer.
"""

import pytest

from repro.reporting.tables import format_table
from repro.scenarios.defense_experiments import path_selection_defense_experiment
from repro.topology.generators.simple import grid_topology

pytestmark = pytest.mark.slow

MONITORS = [
    (0, 0), (0, 3), (3, 0), (3, 3), (1, 1), (2, 2), (0, 1),
    (1, 0), (2, 3), (3, 2), (0, 2), (2, 0), (1, 3), (3, 1),
]


def test_ablation_path_selection_defense(benchmark, record):
    topology = grid_topology(4, 4)
    result = benchmark.pedantic(
        lambda: path_selection_defense_experiment(
            topology, MONITORS, num_trials=30, seed=2
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [r["selection"], r["paths"], r["max_presence"], r["attack_success"]]
        for r in result["records"]
    ]
    text = (
        "Ablation: path-selection strategy vs single-attacker success (4x4 grid)\n"
        + format_table(
            ["selection", "paths", "max presence ratio", "attack success"], rows
        )
    )
    record("ablation_path_selection", text)

    by_label = {r["selection"]: r for r in result["records"]}
    plain = by_label["rank-greedy"]
    hardened = by_label["min-presence"]
    assert hardened["max_presence"] < plain["max_presence"]
    assert hardened["attack_success"] <= plain["attack_success"]
