"""Extension — compromise budgets: what a guaranteed frame-up costs.

For every measured link, the greedy-minimal set of nodes an adversary
must capture to *perfectly cut* it — after which scapegoating that link
is guaranteed feasible (Theorem 1) and undetectable (Theorem 3).  On the
Fig. 1 network the planner rediscovers the paper's own cast: the cheapest
perfect cut of link 1 is exactly {B, C}.
"""

from repro.attacks.compromise import compromise_budget_ranking
from repro.reporting.tables import format_table


def test_ext_compromise_budget(benchmark, fig1_scenario, record):
    ranking = benchmark.pedantic(
        lambda: compromise_budget_ranking(fig1_scenario.path_set),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["link"] + 1,
            f"{r['endpoints'][0]}-{r['endpoints'][1]}",
            r["budget"] if r["budget"] is not None else "impossible",
            ", ".join(str(n) for n in (r["nodes"] or [])),
            r["victim_paths"],
        ]
        for r in ranking
    ]
    text = (
        "Extension: per-link compromise budget for a guaranteed, "
        "undetectable frame-up (Fig. 1 network)\n"
        + format_table(
            ["paper link#", "endpoints", "nodes needed", "which nodes", "victim paths"],
            rows,
        )
    )
    record("ext_compromise_budget", text)

    by_link = {r["link"]: r for r in ranking}
    # The paper's attackers are the cheapest perfect cut for link 1 (M1-A).
    assert by_link[0]["budget"] == 2
    assert set(by_link[0]["nodes"]) == {"B", "C"}
    # Every budgeted victim has a verified plan.
    for r in ranking:
        if r["budget"] is not None:
            assert len(r["nodes"]) == r["budget"]
