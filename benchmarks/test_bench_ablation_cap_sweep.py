"""Ablation — per-path manipulation cap vs achievable damage.

Section V-A imposes a practical 2000 ms per-path cap.  This bench sweeps
the cap and reports the maximum-damage optimum on the Fig. 1 scenario:
damage should grow monotonically with the cap and saturate linearly (the
LP's active constraints are the caps themselves once state bands are
loose), while *feasibility* below some minimum cap collapses — the victim
cannot be pushed past 800 ms with too little budget.
"""

from repro.attacks.max_damage import MaxDamageAttack
from repro.reporting.tables import format_table

CAPS = [200.0, 400.0, 800.0, 1200.0, 2000.0, 4000.0]


def test_ablation_cap_sweep(benchmark, fig1_scenario, record):
    def run():
        rows = []
        for cap in CAPS:
            context = fig1_scenario.attack_context(["B", "C"])
            context.cap = cap
            outcome = MaxDamageAttack(context).run()
            rows.append(
                {
                    "cap": cap,
                    "feasible": outcome.feasible,
                    "damage": outcome.damage,
                    "victims": list(outcome.victim_links),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["cap (ms)", "feasible", "damage (ms)", "victims"],
        [[r["cap"], r["feasible"], r["damage"], r["victims"]] for r in rows],
    )
    record("ablation_cap_sweep", "Ablation: per-path cap vs max damage\n" + table)

    feasible_rows = [r for r in rows if r["feasible"]]
    assert feasible_rows, "some cap must admit an attack"
    damages = [r["damage"] for r in feasible_rows]
    assert damages == sorted(damages), "damage must be monotone in the cap"
    # The paper's 2000 ms setting is comfortably feasible.
    assert next(r for r in rows if r["cap"] == 2000.0)["feasible"]
