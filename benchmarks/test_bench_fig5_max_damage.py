"""Fig. 5 — maximum-damage scapegoating on the Fig. 1 network.

Paper: the max-damage search by B and C yields an average end-to-end delay
of 1239.4 ms — the highest over all chosen-victim attacks — and drives
free links (the paper observes links 1 and 9) above the abnormal
threshold.

Shape targets: max-damage dominates every single-victim chosen-victim
attack in damage, its mean path delay exceeds Fig. 4's, and the flagged
links are free (non-controlled) links.
"""

import math

from repro.reporting.figures import format_fig4_series
from repro.scenarios.simple_network import (
    chosen_victim_case_study,
    max_damage_case_study,
)


def test_fig5_max_damage(benchmark, record):
    result = benchmark.pedantic(max_damage_case_study, rounds=1, iterations=1)
    text = format_fig4_series(
        result,
        title=(
            "Fig. 5 regeneration: maximum-damage attack "
            f"(mean path delay {result['mean_path_delay']:.1f} ms, paper 1239.4 ms)"
        ),
    )
    per_victim = "\n".join(
        f"  damage with victim link {k + 1}: "
        + ("infeasible" if math.isnan(v) else f"{v:.1f} ms")
        for k, v in sorted(result["damage_by_victim"].items())
    )
    record("fig5_max_damage", text + "\nper-victim search:\n" + per_victim)

    assert result["feasible"]
    fig4 = chosen_victim_case_study(mode="paper")
    assert result["damage"] >= fig4["damage"] - 1e-6
    assert result["mean_path_delay"] > fig4["mean_path_delay"] * 0.99
    # Scapegoats are free links only (paper saw links 1 and 9; indices 0, 8).
    assert set(result["abnormal_links"]) <= {0, 8, 9}
    controlled = set(range(1, 8))
    assert not set(result["abnormal_links"]) & controlled
    # Dominates every feasible single-victim damage in its own search map.
    finite = [v for v in result["damage_by_victim"].values() if not math.isnan(v)]
    assert result["damage"] >= max(finite) - 1e-6
