"""Fig. 2 — qualitative per-link patterns of the three strategies.

The paper's Fig. 2 is an illustration: under chosen-victim the victims
alone spike, under maximum-damage the discovered victims spike highest,
under obfuscation everything sits in a mid band.  We regenerate the actual
per-link estimate series from the three case-study attacks side by side
and assert the qualitative envelope.
"""

from repro.reporting.tables import format_table
from repro.scenarios.simple_network import (
    chosen_victim_case_study,
    max_damage_case_study,
    obfuscation_case_study,
)


def _render() -> tuple[str, dict]:
    chosen = chosen_victim_case_study()
    maxdmg = max_damage_case_study()
    obfusc = obfuscation_case_study()
    rows = []
    for j in range(10):
        rows.append(
            [
                j + 1,
                f"{chosen['estimates'][j]:.0f}",
                f"{maxdmg['estimates'][j]:.0f}",
                f"{obfusc['estimates'][j]:.0f}",
            ]
        )
    table = format_table(
        ["link#", "chosen-victim (ms)", "max-damage (ms)", "obfuscation (ms)"], rows
    )
    return (
        "Fig. 2 regeneration: per-link estimated delay under the three strategies\n"
        + table,
        {"chosen": chosen, "maxdmg": maxdmg, "obfusc": obfusc},
    )


def test_fig2_strategy_patterns(benchmark, record):
    text, data = benchmark.pedantic(_render, rounds=1, iterations=1)
    record("fig2_strategy_patterns", text)
    chosen, obfusc = data["chosen"], data["obfusc"]
    # Chosen-victim: the victim spikes, everything else stays low.
    assert max(chosen["estimates"]) == chosen["estimates"][9]
    # Obfuscation: flat mid-band envelope, no dominant outlier.
    assert all(100.0 <= v <= 800.0 for v in obfusc["estimates"])
    # Max-damage dominates chosen-victim by construction (it searches all
    # victims under the same constraints).  Obfuscation's damage is not
    # comparable: its looser band on the attacker's own links can admit
    # more total manipulation.
    assert data["maxdmg"]["damage"] >= chosen["damage"]
