"""Extension — the Fig. 4 attack in the loss domain (Remark 2).

The paper notes loss metrics are additive in log form and the formulation
carries over.  This bench executes the chosen-victim attack as *actual
packet drops* in the simulator: attacker nodes drop probes per path with
probability ``1 - exp(-m_i)``, the operator measures delivery ratios over
thousands of probes, and log-domain tomography blames the scapegoat as a
badly lossy link while the attackers' links look clean.
"""

from repro.reporting.tables import format_table
from repro.scenarios.loss_network import loss_chosen_victim_case_study


def test_ext_loss_domain_chosen_victim(benchmark, record):
    result = benchmark.pedantic(
        lambda: loss_chosen_victim_case_study(probes_per_path=3000),
        rounds=1,
        iterations=1,
    )
    assert result["feasible"]
    measured = result["measured_diagnosis"]
    rows = []
    import numpy as np

    for j in range(10):
        rows.append(
            [
                j + 1,
                f"{float(np.exp(-measured.estimate[j])):.1%}",
                str(measured.state_of(j)),
                "victim" if j == result["victim_link"] else ("attacker" if 1 <= j <= 7 else ""),
            ]
        )
    text = (
        "Extension: loss-domain chosen-victim (simulated packet drops, 3000 probes/path)\n"
        + format_table(["link#", "est. delivery", "state", "role"], rows)
    )
    record("ext_loss_domain", text)

    assert result["measured_abnormal"] == [result["victim_link"]]
    assert result["victim_delivery_estimate"] < 0.5  # framed as badly lossy
    assert not result["perfect_cut"]  # works even without a perfect cut
