"""Fig. 7 — chosen-victim success probability vs attack presence ratio.

Paper: on the Rocketfuel AS1221 wireline topology and a 100-node RGG
wireless topology, the success probability of chosen-victim scapegoating
rises with the attack presence ratio (e.g. 19.5% at ratio ~0.6 rising to
51.2% at ~0.7 on wireline) and the sparser wireless topology tracks below
the wireline one.

Shape targets: monotone-increasing trend in the ratio (low bins below high
bins) and every perfect-cut trial succeeds (Theorem 1).  The paper's
*cross-network* ordering (wireless below wireline) is not asserted: it is
not stable in our reconstruction, because the synthetic ISP's leaf-heavy
access layer makes sampled presence ratios bimodal (an attacker either
fully covers an access link's few paths or misses them entirely), which
thins the mid bins the comparison would need.  EXPERIMENTS.md records the
deviation.
"""

import math

import pytest

from repro.reporting.figures import format_success_bins
from repro.scenarios.experiments import success_probability_sweep

pytestmark = pytest.mark.slow

NUM_TRIALS = 400


def _mean_rate(bins, lo, hi):
    rates = [
        b["rate"]
        for b in bins
        if lo <= b["lo"] and b["hi"] <= hi and b["count"] > 0 and not math.isnan(b["rate"])
    ]
    return sum(rates) / len(rates) if rates else math.nan


def test_fig7_success_vs_presence_ratio(
    benchmark, wireline_scenario, wireless_scenario, record
):
    def run():
        wireline = success_probability_sweep(
            wireline_scenario, num_trials=NUM_TRIALS, seed=7
        )
        wireless = success_probability_sweep(
            wireless_scenario, num_trials=NUM_TRIALS, seed=7
        )
        return wireline, wireless

    wireline, wireless = benchmark.pedantic(run, rounds=1, iterations=1)
    text = "\n\n".join(
        [
            format_success_bins(
                wireline["bins"],
                title=(
                    "Fig. 7 regeneration — wireline (synthetic AS1221): "
                    "chosen-victim success vs presence ratio"
                ),
            ),
            format_success_bins(
                wireless["bins"],
                title="Fig. 7 regeneration — wireless (RGG n=100, lambda=5)",
            ),
        ]
    )
    record("fig7_success_vs_presence", text)

    for result in (wireline, wireless):
        # Theorem 1: perfect-cut trials always succeed.
        for trial in result["trials"]:
            if trial["perfect_cut"]:
                assert trial["success"]
        # Increasing trend: the low-ratio half is weaker than the top bins.
        low = _mean_rate(result["bins"], 0.0, 0.5)
        high = _mean_rate(result["bins"], 0.8, 1.0)
        assert math.isnan(low) or math.isnan(high) or low <= high
