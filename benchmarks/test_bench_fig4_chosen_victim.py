"""Fig. 4 — chosen-victim scapegoating of link 10 on the Fig. 1 network.

Paper: attackers B and C target link 10 (which they do *not* perfectly
cut); tomography shows link 10 above the 800 ms abnormal threshold while
every other link looks normal; the attack's average path delay is
820.87 ms.

Shape targets asserted here: the attack succeeds despite the imperfect
cut, the victim is the only abnormal link, attacker-controlled links stay
normal, and the mean path measurement lands in the same regime (hundreds
of ms) as the paper's 820.87 ms.
"""

from repro.reporting.figures import format_fig4_series
from repro.scenarios.simple_network import PAPER_VICTIM_LINK, chosen_victim_case_study


def test_fig4_chosen_victim(benchmark, record):
    result = benchmark.pedantic(chosen_victim_case_study, rounds=1, iterations=1)
    text = format_fig4_series(
        result,
        title=(
            "Fig. 4 regeneration: chosen-victim attack on link 10 "
            f"(presence ratio {result['presence_ratio']:.2f}, paper avg 820.87 ms)"
        ),
    )
    record("fig4_chosen_victim", text)

    assert result["feasible"]
    assert not result["perfect_cut"]
    assert result["abnormal_links"] == [PAPER_VICTIM_LINK]
    assert result["estimates"][PAPER_VICTIM_LINK] > 800.0
    for j in range(1, 8):  # paper links 2-8 are attacker-controlled
        assert result["states"][j] == "normal"
    assert 400.0 <= result["mean_path_delay"] <= 1600.0
