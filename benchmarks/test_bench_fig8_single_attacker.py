"""Fig. 8 — single-attacker maximum-damage and obfuscation success.

Paper: even a single attacker succeeds with substantial probability;
maximum-damage is always at least as likely as chosen-victim (it searches
all victims), and obfuscation is generally less likely than maximum-damage
because it must manipulate at least 5 victim links at once.

Shape targets: non-trivial single-attacker success, and per network type
``max-damage >= obfuscation`` under the paper's (confined) attacker model.
"""

import pytest

from repro.reporting.tables import format_table
from repro.scenarios.experiments import single_attacker_sweep

pytestmark = pytest.mark.slow

NUM_TRIALS = 40


def test_fig8_single_attacker(benchmark, wireline_scenario, wireless_scenario, record):
    def run():
        wireline = single_attacker_sweep(
            wireline_scenario, num_trials=NUM_TRIALS, seed=8
        )
        wireless = single_attacker_sweep(
            wireless_scenario, num_trials=NUM_TRIALS, seed=8
        )
        return wireline, wireless

    wireline, wireless = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            "wireline (AS1221-style)",
            wireline["max_damage_success_rate"],
            wireline["obfuscation_success_rate"],
        ],
        [
            "wireless (RGG)",
            wireless["max_damage_success_rate"],
            wireless["obfuscation_success_rate"],
        ],
    ]
    text = (
        "Fig. 8 regeneration: single-attacker success probabilities\n"
        + format_table(["network", "max-damage", "obfuscation (>=5 victims)"], rows)
    )
    record("fig8_single_attacker", text)

    for result in (wireline, wireless):
        # A single attacker succeeds at max-damage with real probability.
        assert result["max_damage_success_rate"] > 0.1
        # Obfuscation needs >= 5 pinned victims: harder than max-damage.
        assert (
            result["obfuscation_success_rate"]
            <= result["max_damage_success_rate"] + 1e-9
        )
