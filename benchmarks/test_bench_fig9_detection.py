"""Fig. 9 — detection ratios of the consistency check (alpha = 200 ms).

Paper prose and Theorem 3 disagree on direction (see DESIGN.md); the
theorem is unambiguous: a perfect cut makes scapegoating *undetectable*,
an imperfect cut detectable.  Under the paper's (confined, stealth-capable)
attacker model we reproduce exactly that dichotomy for all three
strategies, plus the paper's zero-false-alarm observation.

An ablation row runs the *plain* damage-maximising attacker, which is
caught even under perfect cuts — stealth is a choice, not a side effect.
"""

import pytest

from repro.reporting.figures import format_detection_table
from repro.scenarios.detection_experiments import (
    detection_ratio_experiment,
    false_alarm_experiment,
)

pytestmark = pytest.mark.slow

NUM_TRIALS = 40
STRATEGIES = ("chosen-victim", "max-damage", "obfuscation")


def test_fig9_detection_ratios(benchmark, fig1_scenario, record):
    def run():
        cells = []
        for strategy in STRATEGIES:
            for cut in ("perfect", "imperfect"):
                cells.append(
                    detection_ratio_experiment(
                        fig1_scenario,
                        strategy,
                        cut,
                        num_trials=NUM_TRIALS,
                        alpha=200.0,
                        seed=9,
                    )
                )
        false_alarms = false_alarm_experiment(
            fig1_scenario, num_trials=NUM_TRIALS, alpha=200.0, seed=9
        )
        plain = detection_ratio_experiment(
            fig1_scenario,
            "chosen-victim",
            "perfect",
            num_trials=NUM_TRIALS,
            attacker_model="plain",
            seed=9,
        )
        return cells, false_alarms, plain

    cells, false_alarms, plain = benchmark.pedantic(run, rounds=1, iterations=1)
    text = format_detection_table(
        cells,
        title=(
            "Fig. 9 regeneration: detection ratios, alpha=200 ms "
            "(per Theorem 3: perfect cut -> 0%, imperfect -> 100%)"
        ),
    )
    text += (
        f"\nfalse alarm rate on clean rounds: {false_alarms['false_alarm_rate']:.2f}"
        f"\nablation (plain LP attacker, perfect cut): "
        f"detection {plain['detection_ratio']:.2f}"
    )
    record("fig9_detection", text)

    for cell in cells:
        assert cell["num_successful_attacks"] > 0, cell
        if cell["cut"] == "perfect":
            assert cell["detection_ratio"] == 0.0, cell
        else:
            assert cell["detection_ratio"] == 1.0, cell
    assert false_alarms["false_alarm_rate"] == 0.0
    assert plain["detection_ratio"] == 1.0
