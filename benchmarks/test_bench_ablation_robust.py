"""Ablation — trimmed least squares vs tampered measurement rows.

Quantifies the robust estimator's recovery envelope on the Fig. 1
scenario (23 rows, rank 10 => 13 rows of redundancy): exact recovery while
few rows are forged, graceful degradation after, with the honest caveat
that a *converged* trim is not automatically a *correct* one once the
tampering rivals the redundancy.
"""

import pytest

from repro.reporting.tables import format_table
from repro.scenarios.defense_experiments import robust_recovery_experiment

pytestmark = pytest.mark.slow


def test_ablation_robust_recovery(benchmark, fig1_scenario, record):
    result = benchmark.pedantic(
        lambda: robust_recovery_experiment(fig1_scenario, num_trials=20, seed=3),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            r["tampered_rows"],
            r["ls_error"],
            r["robust_error"],
            r["found_all_rate"],
        ]
        for r in result["rows"]
    ]
    text = (
        "Ablation: plain LS vs trimmed LS under forged measurement rows\n"
        + format_table(
            ["tampered rows", "LS max error (ms)", "trimmed max error (ms)", "tamper found"],
            rows,
        )
    )
    record("ablation_robust", text)

    by_k = {r["tampered_rows"]: r for r in result["rows"]}
    # Single forged row: plain LS is badly wrong; the trimmer finds the
    # forged row in nearly every trial (a direction with redundancy 1 is
    # genuinely ambiguous — two conflicting rows, no way to tell which
    # lies — the classic robust-regression breakdown) and cuts the error
    # several-fold on average.
    assert by_k[1]["ls_error"] > 10.0
    assert by_k[1]["found_all_rate"] >= 0.9
    assert by_k[1]["robust_error"] < by_k[1]["ls_error"] / 3
    # Deep tampering (8 of 23 rows) cannot be reliably repaired.
    assert by_k[8]["found_all_rate"] < 0.5
