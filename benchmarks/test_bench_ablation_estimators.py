"""Ablation — does a different estimator defeat scapegoating?

A cautious operator might swap eq. (2)'s least squares for non-negative
least squares or ridge regression.  Against a stealthy perfect-cut attack
this does not help: the forged measurements are *exactly consistent* with
a legitimate (non-negative) metric vector in which the scapegoat is bad,
so every reasonable estimator reaches the same wrong conclusion.  The
bench quantifies this: all three estimators blame the scapegoat and give
the attacker links a clean bill.
"""

import numpy as np

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.metrics.states import LinkState
from repro.reporting.tables import format_table
from repro.tomography.diagnosis import diagnose
from repro.tomography.estimators import (
    LeastSquaresEstimator,
    NonNegativeEstimator,
    RidgeEstimator,
)


def test_ablation_estimators_vs_stealthy_attack(benchmark, fig1_scenario, record):
    def run():
        context = fig1_scenario.attack_context(["B", "C"])
        outcome = ChosenVictimAttack(context, [0], stealthy=True, confined=True).run()
        assert outcome.feasible
        matrix = fig1_scenario.path_set.routing_matrix()
        estimators = {
            "least-squares (paper eq. 2)": LeastSquaresEstimator(matrix),
            "non-negative LS": NonNegativeEstimator(matrix),
            "ridge (lam=1e-3)": RidgeEstimator(matrix, lam=1e-3),
        }
        rows = []
        for label, estimator in estimators.items():
            report = diagnose(
                estimator.estimate(outcome.observed_measurements),
                fig1_scenario.thresholds,
            )
            clean_attackers = all(
                report.state_of(j) is LinkState.NORMAL
                for j in context.controlled_links
            )
            rows.append(
                {
                    "estimator": label,
                    "victim_estimate": float(report.estimate[0]),
                    "blames_scapegoat": 0 in report.abnormal,
                    "attackers_look_normal": clean_attackers,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["estimator", "victim estimate (ms)", "blames scapegoat", "attackers normal"],
        [
            [r["estimator"], r["victim_estimate"], r["blames_scapegoat"], r["attackers_look_normal"]]
            for r in rows
        ],
    )
    record(
        "ablation_estimators",
        "Ablation: estimator choice vs stealthy perfect-cut scapegoating\n" + table,
    )

    for row in rows:
        assert row["blames_scapegoat"], row
        assert row["attackers_look_normal"], row
