"""Tests for scenario serialization."""

import json
import math

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.exceptions import SerializationError
from repro.scenarios.serialization import (
    load_scenario,
    save_scenario,
    scenario_from_json,
    scenario_to_json,
)
from repro.scenarios.scenario import Scenario
from repro.topology.generators.simple import grid_topology


class TestRoundTrip:
    def test_fig1_round_trips(self, fig1_scenario):
        back = scenario_from_json(scenario_to_json(fig1_scenario))
        assert back.name == fig1_scenario.name
        assert back.monitors == fig1_scenario.monitors
        assert np.array_equal(back.true_metrics, fig1_scenario.true_metrics)
        assert back.cap == fig1_scenario.cap
        assert back.margin == fig1_scenario.margin
        assert back.thresholds == fig1_scenario.thresholds
        assert [p.nodes for p in back.path_set] == [
            p.nodes for p in fig1_scenario.path_set
        ]
        assert np.array_equal(
            back.path_set.routing_matrix(), fig1_scenario.path_set.routing_matrix()
        )

    def test_tuple_node_labels_survive(self):
        topo = grid_topology(3, 3)
        scenario = Scenario.build(topo, monitor_fraction=0.9, rng=1, name="grid")
        back = scenario_from_json(scenario_to_json(scenario))
        assert back.monitors == scenario.monitors
        assert all(isinstance(node, tuple) for node in back.topology.nodes())

    def test_attack_results_identical_after_round_trip(self, fig1_scenario):
        """The whole point: frozen scenarios reproduce results exactly."""
        back = scenario_from_json(scenario_to_json(fig1_scenario))
        original = ChosenVictimAttack(
            fig1_scenario.attack_context(["B", "C"]), [9], mode="exclusive"
        ).run()
        restored = ChosenVictimAttack(
            back.attack_context(["B", "C"]), [9], mode="exclusive"
        ).run()
        assert restored.feasible == original.feasible
        assert restored.damage == pytest.approx(original.damage)
        assert np.allclose(restored.manipulation, original.manipulation)

    def test_none_cap_survives(self, fig1_scenario):
        scenario = Scenario(
            topology=fig1_scenario.topology,
            monitors=fig1_scenario.monitors,
            path_set=fig1_scenario.path_set,
            true_metrics=fig1_scenario.true_metrics,
            cap=None,
        )
        back = scenario_from_json(scenario_to_json(scenario))
        assert back.cap is None


class TestStrictJson:
    """Non-finite numbers must serialize as strict-JSON string sentinels."""

    @staticmethod
    def _with_cap(fig1_scenario, cap):
        return Scenario(
            topology=fig1_scenario.topology,
            monitors=fig1_scenario.monitors,
            path_set=fig1_scenario.path_set,
            true_metrics=fig1_scenario.true_metrics,
            cap=cap,
        )

    def test_infinite_cap_round_trips_as_strict_json(self, fig1_scenario):
        text = scenario_to_json(self._with_cap(fig1_scenario, math.inf))

        def reject_constant(name):  # bare Infinity/NaN tokens are a bug
            raise AssertionError(f"non-standard JSON token {name!r} in output")

        doc = json.loads(text, parse_constant=reject_constant)
        assert doc["cap"] == "Infinity"
        back = scenario_from_json(text)
        assert back.cap == math.inf

    def test_legacy_bare_infinity_token_still_loads(self, fig1_scenario):
        doc = json.loads(scenario_to_json(fig1_scenario))
        doc["cap"] = math.inf
        legacy = json.dumps(doc)  # Python emits the non-standard bare token
        assert "Infinity" in legacy
        assert scenario_from_json(legacy).cap == math.inf

    def test_unknown_sentinel_rejected(self, fig1_scenario):
        doc = json.loads(scenario_to_json(fig1_scenario))
        doc["cap"] = "huge"
        with pytest.raises(SerializationError, match="sentinel"):
            scenario_from_json(json.dumps(doc))


class TestFiles:
    def test_save_load(self, fig1_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        save_scenario(fig1_scenario, path)
        loaded = load_scenario(path)
        assert loaded.path_set.num_paths == fig1_scenario.path_set.num_paths

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_scenario(tmp_path / "nope.json")


class TestErrors:
    def test_invalid_json(self):
        with pytest.raises(SerializationError):
            scenario_from_json("{oops")

    def test_wrong_format(self):
        with pytest.raises(SerializationError, match="repro-scenario"):
            scenario_from_json('{"format": "other"}')

    def test_wrong_version(self):
        with pytest.raises(SerializationError, match="version"):
            scenario_from_json('{"format": "repro-scenario", "version": 99}')

    def test_malformed_body(self):
        doc = (
            '{"format": "repro-scenario", "version": 1, '
            '"topology": {"format": "repro-topology", "version": 1, '
            '"name": "", "nodes": ["a", "b"], "links": [["a", "b"]]}}'
        )
        with pytest.raises(SerializationError, match="malformed"):
            scenario_from_json(doc)
