"""Tests for the Fig. 9 detection experiments (small scale)."""

import pytest

from repro.exceptions import ValidationError
from repro.measurement.noise import GaussianNoise
from repro.scenarios.detection_experiments import (
    ablation_estimator_zoo,
    detection_ratio_experiment,
    false_alarm_experiment,
)


class TestDetectionRatios:
    @pytest.mark.parametrize("strategy", ["chosen-victim", "max-damage", "obfuscation"])
    def test_confined_attacker_perfect_cut_never_detected(
        self, fig1_scenario, strategy
    ):
        result = detection_ratio_experiment(
            fig1_scenario, strategy, "perfect", num_trials=12, seed=1
        )
        assert result["num_successful_attacks"] > 0
        assert result["detection_ratio"] == 0.0

    @pytest.mark.parametrize("strategy", ["chosen-victim", "max-damage", "obfuscation"])
    def test_confined_attacker_imperfect_cut_always_detected(
        self, fig1_scenario, strategy
    ):
        result = detection_ratio_experiment(
            fig1_scenario, strategy, "imperfect", num_trials=20, seed=1
        )
        if result["num_successful_attacks"]:
            assert result["detection_ratio"] == 1.0

    def test_plain_attacker_detected_even_under_perfect_cut(self, fig1_scenario):
        result = detection_ratio_experiment(
            fig1_scenario,
            "chosen-victim",
            "perfect",
            num_trials=12,
            attacker_model="plain",
            seed=1,
        )
        assert result["num_successful_attacks"] > 0
        assert result["detection_ratio"] == 1.0

    def test_unconfined_attacker_can_evade_imperfect_cuts(self, fig1_scenario):
        """The stronger-than-paper attacker: some imperfect-cut attacks slip
        through (the extension finding recorded in EXPERIMENTS.md)."""
        result = detection_ratio_experiment(
            fig1_scenario,
            "max-damage",
            "imperfect",
            num_trials=20,
            attacker_model="unconfined",
            seed=1,
        )
        if result["num_successful_attacks"]:
            assert result["detection_ratio"] < 1.0

    def test_trial_records(self, fig1_scenario):
        result = detection_ratio_experiment(
            fig1_scenario, "chosen-victim", "perfect", num_trials=8, seed=2
        )
        for trial in result["trials"]:
            if trial["attack_success"]:
                assert trial["detected"] in (True, False)
                assert trial["residual_l1"] >= 0.0
            else:
                assert trial["detected"] is None

    def test_validation(self, fig1_scenario):
        with pytest.raises(ValidationError):
            detection_ratio_experiment(fig1_scenario, "bogus", "perfect")
        with pytest.raises(ValidationError):
            detection_ratio_experiment(fig1_scenario, "chosen-victim", "bogus")
        with pytest.raises(ValidationError):
            detection_ratio_experiment(
                fig1_scenario, "chosen-victim", "perfect", attacker_model="bogus"
            )


class TestFalseAlarms:
    def test_noiseless_has_zero_false_alarms(self, fig1_scenario):
        result = false_alarm_experiment(fig1_scenario, num_trials=15, seed=0)
        assert result["false_alarm_rate"] == 0.0
        assert result["max_residual"] < 1e-6

    def test_large_noise_with_tight_alpha_alarms(self, fig1_scenario):
        result = false_alarm_experiment(
            fig1_scenario,
            num_trials=15,
            alpha=0.001,
            noise_model=GaussianNoise(20.0),
            seed=0,
        )
        assert result["false_alarm_rate"] > 0.5

    def test_paper_alpha_absorbs_small_noise(self, fig1_scenario):
        result = false_alarm_experiment(
            fig1_scenario,
            num_trials=15,
            alpha=200.0,
            noise_model=GaussianNoise(1.0),
            seed=0,
        )
        assert result["false_alarm_rate"] == 0.0


class TestEstimatorZooAblation:
    def test_rows_cover_requested_families_with_comparable_trials(
        self, fig1_scenario
    ):
        result = ablation_estimator_zoo(
            fig1_scenario, num_trials=8, seed=3, attacker_sizes=(2,)
        )
        assert [row["estimator"] for row in result["estimators"]] == [
            "ls",
            "bayes-map",
            "l1",
        ]
        trials = {row["num_valid_trials"] for row in result["estimators"]}
        assert len(trials) == 1  # identical re-seeding: same attack sequence
        for row in result["estimators"]:
            assert row["attack_success_rate"] > 0.0
            assert row["alpha"] >= result["base_alpha"]
            assert 0.0 <= row["scapegoat_rate"] <= 1.0
            assert 0.0 <= row["detection_ratio"] <= 1.0

    def test_perfect_cut_stealth_holds_for_every_family(self, fig1_scenario):
        """Theorem 3 is estimator-independent on consistent forgeries:
        a perfect-cut stealthy attack leaves residuals under every
        calibrated alpha, whatever the inversion family."""
        result = ablation_estimator_zoo(
            fig1_scenario, cut="perfect", num_trials=8, seed=3
        )
        for row in result["estimators"]:
            assert row["detection_ratio"] == 0.0

    def test_roc_rows_are_well_formed(self, fig1_scenario):
        result = ablation_estimator_zoo(
            fig1_scenario, estimators=("ls",), num_trials=8, seed=3, roc_points=5
        )
        roc = result["estimators"][0]["roc"]
        assert 0 < len(roc) <= 5
        thresholds = [row["threshold"] for row in roc]
        assert thresholds == sorted(thresholds)
        for row in roc:
            assert 0.0 <= row["true_positive_rate"] <= 1.0
            assert 0.0 <= row["false_positive_rate"] <= 1.0
        # The bracketing thresholds pin the ROC endpoints.
        assert roc[0]["true_positive_rate"] == 1.0
        assert roc[0]["false_positive_rate"] == 1.0
        assert roc[-1]["true_positive_rate"] == 0.0
        assert roc[-1]["false_positive_rate"] == 0.0

    def test_estimator_params_flow_into_the_named_family(self, fig1_scenario):
        result = ablation_estimator_zoo(
            fig1_scenario,
            estimators=("bayes-map",),
            estimator_params={"bayes-map": {"prior_var": 123.0}},
            num_trials=4,
            seed=3,
        )
        assert result["estimators"][0]["params"]["prior_var"] == 123.0

    def test_validation(self, fig1_scenario):
        with pytest.raises(ValidationError):
            ablation_estimator_zoo(fig1_scenario, strategy="bogus")
        with pytest.raises(ValidationError):
            ablation_estimator_zoo(fig1_scenario, cut="bogus")
        with pytest.raises(ValidationError):
            ablation_estimator_zoo(fig1_scenario, estimators=())
        with pytest.raises(ValidationError):
            ablation_estimator_zoo(
                fig1_scenario,
                estimators=("ls",),
                estimator_params={"l1": {}},
            )
