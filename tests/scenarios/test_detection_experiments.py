"""Tests for the Fig. 9 detection experiments (small scale)."""

import pytest

from repro.exceptions import ValidationError
from repro.measurement.noise import GaussianNoise
from repro.scenarios.detection_experiments import (
    detection_ratio_experiment,
    false_alarm_experiment,
)


class TestDetectionRatios:
    @pytest.mark.parametrize("strategy", ["chosen-victim", "max-damage", "obfuscation"])
    def test_confined_attacker_perfect_cut_never_detected(
        self, fig1_scenario, strategy
    ):
        result = detection_ratio_experiment(
            fig1_scenario, strategy, "perfect", num_trials=12, seed=1
        )
        assert result["num_successful_attacks"] > 0
        assert result["detection_ratio"] == 0.0

    @pytest.mark.parametrize("strategy", ["chosen-victim", "max-damage", "obfuscation"])
    def test_confined_attacker_imperfect_cut_always_detected(
        self, fig1_scenario, strategy
    ):
        result = detection_ratio_experiment(
            fig1_scenario, strategy, "imperfect", num_trials=20, seed=1
        )
        if result["num_successful_attacks"]:
            assert result["detection_ratio"] == 1.0

    def test_plain_attacker_detected_even_under_perfect_cut(self, fig1_scenario):
        result = detection_ratio_experiment(
            fig1_scenario,
            "chosen-victim",
            "perfect",
            num_trials=12,
            attacker_model="plain",
            seed=1,
        )
        assert result["num_successful_attacks"] > 0
        assert result["detection_ratio"] == 1.0

    def test_unconfined_attacker_can_evade_imperfect_cuts(self, fig1_scenario):
        """The stronger-than-paper attacker: some imperfect-cut attacks slip
        through (the extension finding recorded in EXPERIMENTS.md)."""
        result = detection_ratio_experiment(
            fig1_scenario,
            "max-damage",
            "imperfect",
            num_trials=20,
            attacker_model="unconfined",
            seed=1,
        )
        if result["num_successful_attacks"]:
            assert result["detection_ratio"] < 1.0

    def test_trial_records(self, fig1_scenario):
        result = detection_ratio_experiment(
            fig1_scenario, "chosen-victim", "perfect", num_trials=8, seed=2
        )
        for trial in result["trials"]:
            if trial["attack_success"]:
                assert trial["detected"] in (True, False)
                assert trial["residual_l1"] >= 0.0
            else:
                assert trial["detected"] is None

    def test_validation(self, fig1_scenario):
        with pytest.raises(ValidationError):
            detection_ratio_experiment(fig1_scenario, "bogus", "perfect")
        with pytest.raises(ValidationError):
            detection_ratio_experiment(fig1_scenario, "chosen-victim", "bogus")
        with pytest.raises(ValidationError):
            detection_ratio_experiment(
                fig1_scenario, "chosen-victim", "perfect", attacker_model="bogus"
            )


class TestFalseAlarms:
    def test_noiseless_has_zero_false_alarms(self, fig1_scenario):
        result = false_alarm_experiment(fig1_scenario, num_trials=15, seed=0)
        assert result["false_alarm_rate"] == 0.0
        assert result["max_residual"] < 1e-6

    def test_large_noise_with_tight_alpha_alarms(self, fig1_scenario):
        result = false_alarm_experiment(
            fig1_scenario,
            num_trials=15,
            alpha=0.001,
            noise_model=GaussianNoise(20.0),
            seed=0,
        )
        assert result["false_alarm_rate"] > 0.5

    def test_paper_alpha_absorbs_small_noise(self, fig1_scenario):
        result = false_alarm_experiment(
            fig1_scenario,
            num_trials=15,
            alpha=200.0,
            noise_model=GaussianNoise(1.0),
            seed=0,
        )
        assert result["false_alarm_rate"] == 0.0
