"""Tests for the Scenario bundle."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.measurement.noise import GaussianNoise
from repro.scenarios.scenario import Scenario
from repro.topology.generators.simple import (
    grid_topology,
    paper_example_network,
    star_topology,
)


class TestBuild:
    def test_explicit_monitors(self):
        topo = paper_example_network()
        scenario = Scenario.build(topo, monitors=["M1", "M2", "M3"], rng=0)
        assert scenario.monitors == ("M1", "M2", "M3")
        assert scenario.path_set.num_paths > 0
        assert scenario.true_metrics.shape == (10,)

    def test_degree_le2_nodes_forced_as_monitors(self):
        """MMP rule: every leaf / degree-2 node becomes a monitor."""
        topo = star_topology(4)  # leaves have degree 1
        scenario = Scenario.build(topo, num_monitors=2, rng=0)
        leaves = [n for n in topo.nodes() if topo.degree(n) == 1]
        assert set(leaves) <= set(scenario.monitors)

    def test_monitor_fraction(self):
        topo = grid_topology(4, 4)
        scenario = Scenario.build(topo, monitor_fraction=0.9, rng=1)
        assert len(scenario.monitors) >= 0.5 * topo.num_nodes

    def test_deterministic(self):
        topo = paper_example_network()
        a = Scenario.build(topo, monitors=["M1", "M2", "M3"], rng=3)
        b = Scenario.build(topo, monitors=["M1", "M2", "M3"], rng=3)
        assert np.array_equal(a.true_metrics, b.true_metrics)
        assert [p.nodes for p in a.path_set] == [p.nodes for p in b.path_set]

    def test_delay_range_respected(self):
        topo = paper_example_network()
        scenario = Scenario.build(
            topo, monitors=["M1", "M2", "M3"], delay_range=(5.0, 6.0), rng=0
        )
        assert np.all(scenario.true_metrics >= 5.0)
        assert np.all(scenario.true_metrics <= 6.0)

    def test_metrics_length_validated(self):
        topo = paper_example_network()
        scenario = Scenario.build(topo, monitors=["M1", "M2", "M3"], rng=0)
        with pytest.raises(ValidationError):
            Scenario(
                topology=topo,
                monitors=("M1", "M2"),
                path_set=scenario.path_set,
                true_metrics=np.ones(3),
            )


class TestDerived:
    def test_attack_context_wiring(self, fig1_scenario):
        context = fig1_scenario.attack_context(["B"])
        assert context.cap == fig1_scenario.cap
        assert context.thresholds is fig1_scenario.thresholds
        assert context.num_paths == fig1_scenario.path_set.num_paths

    def test_engine_measures_honestly(self, fig1_scenario):
        engine = fig1_scenario.engine()
        assert np.allclose(
            engine.measure(fig1_scenario.true_metrics),
            fig1_scenario.honest_measurements(),
        )

    def test_engine_with_noise(self, fig1_scenario):
        engine = fig1_scenario.engine(GaussianNoise(1.0))
        y = engine.measure(fig1_scenario.true_metrics, rng=0)
        assert not np.allclose(y, fig1_scenario.honest_measurements())

    def test_simulator_agrees_with_engine(self, fig1_scenario):
        sim = fig1_scenario.simulator()
        record = sim.run_measurement(fig1_scenario.path_set, rng=0)
        assert np.allclose(
            record.path_delay_vector(), fig1_scenario.honest_measurements()
        )

    def test_auditor_construction(self, fig1_scenario):
        auditor = fig1_scenario.auditor(alpha=123.0)
        assert auditor.detector.alpha == 123.0

    def test_describe(self, fig1_scenario):
        desc = fig1_scenario.describe()
        assert desc["nodes"] == 7
        assert desc["links"] == 10
        assert desc["paths"] == 23
        assert desc["monitors"] == 3
        assert desc["thresholds"] == (100.0, 800.0)
