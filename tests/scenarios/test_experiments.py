"""Tests for the Fig. 7 / Fig. 8 experiment drivers (small scale)."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.scenarios.experiments import (
    single_attacker_sweep,
    success_probability_sweep,
)


class TestSuccessProbabilitySweep:
    def test_structure_and_determinism(self, small_isp_scenario):
        a = success_probability_sweep(small_isp_scenario, num_trials=20, seed=5)
        b = success_probability_sweep(small_isp_scenario, num_trials=20, seed=5)
        assert a["overall_success"] == b["overall_success"]
        assert len(a["bins"]) == 10
        assert a["scenario"]["name"] == "mini-isp"
        for trial in a["trials"]:
            assert 0.0 <= trial["presence_ratio"] <= 1.0
            assert isinstance(trial["success"], bool)

    def test_perfect_cut_trials_always_succeed(self, small_isp_scenario):
        result = success_probability_sweep(small_isp_scenario, num_trials=60, seed=2)
        perfect = [t for t in result["trials"] if t["perfect_cut"]]
        for trial in perfect:
            assert trial["presence_ratio"] == 1.0
            assert trial["success"]

    def test_confined_success_implies_unconfined(self, small_isp_scenario):
        """The unconfined feasible set contains the confined one."""
        confined = success_probability_sweep(
            small_isp_scenario, num_trials=30, confined=True, mode="paper", seed=4
        )
        unconfined = success_probability_sweep(
            small_isp_scenario, num_trials=30, confined=False, mode="paper", seed=4
        )
        for a, b in zip(confined["trials"], unconfined["trials"]):
            if a["success"]:
                assert b["success"]

    def test_empty_attacker_sizes_rejected(self, small_isp_scenario):
        with pytest.raises(ValidationError):
            success_probability_sweep(small_isp_scenario, attacker_sizes=())


class TestSingleAttackerSweep:
    def test_structure(self, small_isp_scenario):
        result = single_attacker_sweep(
            small_isp_scenario, num_trials=10, min_obfuscation_victims=2, seed=1
        )
        assert 0.0 <= result["max_damage_success_rate"] <= 1.0
        assert 0.0 <= result["obfuscation_success_rate"] <= 1.0
        assert len(result["trials"]) == 10
        for trial in result["trials"]:
            assert trial["obfuscation_victims"] >= 0

    def test_obfuscation_success_needs_min_victims(self, small_isp_scenario):
        result = single_attacker_sweep(
            small_isp_scenario, num_trials=10, min_obfuscation_victims=2, seed=1
        )
        for trial in result["trials"]:
            if trial["obfuscation_success"]:
                assert trial["obfuscation_victims"] >= 2

    def test_deterministic(self, small_isp_scenario):
        a = single_attacker_sweep(small_isp_scenario, num_trials=6, seed=9)
        b = single_attacker_sweep(small_isp_scenario, num_trials=6, seed=9)
        assert a["max_damage_success_rate"] == b["max_damage_success_rate"]
        assert [t["attacker"] for t in a["trials"]] == [
            t["attacker"] for t in b["trials"]
        ]

    def test_successful_max_damage_has_positive_damage(self, small_isp_scenario):
        result = single_attacker_sweep(small_isp_scenario, num_trials=10, seed=3)
        for trial in result["trials"]:
            if trial["max_damage_success"]:
                assert trial["max_damage"] > 0
