"""Tests for Monte-Carlo plumbing."""

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.scenarios.montecarlo import (
    binned_rate,
    check_picklable,
    run_batched_trials,
    run_trials,
    success_rate,
)


def _stochastic_trial(rng):
    """Module-level (hence picklable) trial: several draws, rejection path."""
    value = float(rng.random())
    bonus = float(rng.normal())
    if value < 0.2:
        return None
    return {"value": value, "bonus": bonus, "success": value > 0.6}


class TestCheckPicklable:
    def test_module_level_function_passes(self):
        check_picklable(_stochastic_trial)

    def test_closure_rejected_with_guidance(self):
        bound = 3

        def closure_trial(rng):
            return {"value": bound}

        with pytest.raises(ValidationError, match="module-level function"):
            check_picklable(closure_trial, "trial function")


class TestRunTrials:
    def test_count_and_determinism(self):
        def trial(rng):
            return {"value": float(rng.random())}

        a = run_trials(10, trial, seed=1)
        b = run_trials(10, trial, seed=1)
        assert len(a) == 10
        assert a == b

    def test_none_results_rejected_like_invalid_draws(self):
        def trial(rng):
            value = float(rng.random())
            return {"value": value} if value > 0.5 else None

        results = run_trials(50, trial, seed=0)
        assert 0 < len(results) < 50
        assert all(r["value"] > 0.5 for r in results)

    def test_independent_of_execution_order(self):
        """Each trial stream is spawned, so results identify by index."""
        def trial(rng):
            return {"value": float(rng.random())}

        full = run_trials(5, trial, seed=9)
        again = run_trials(5, trial, seed=9)
        assert [r["value"] for r in full] == [r["value"] for r in again]

    def test_zero_trials_rejected(self):
        with pytest.raises(ValidationError):
            run_trials(0, lambda rng: {}, seed=0)


class TestRunTrialsWorkers:
    def test_workers_bit_identical_to_serial(self):
        """The acceptance criterion: parallel aggregates == serial ones."""
        serial = run_trials(24, _stochastic_trial, seed=42, workers=1)
        parallel = run_trials(24, _stochastic_trial, seed=42, workers=4)
        assert serial == parallel
        assert success_rate(serial) == success_rate(parallel)

    def test_workers_with_explicit_chunk_size(self):
        serial = run_trials(11, _stochastic_trial, seed=5)
        parallel = run_trials(11, _stochastic_trial, seed=5, workers=2, chunk_size=3)
        assert serial == parallel

    def test_rejection_sampling_preserved_across_workers(self):
        results = run_trials(40, _stochastic_trial, seed=0, workers=2)
        assert 0 < len(results) < 40
        assert all(r["value"] >= 0.2 for r in results)

    def test_unpicklable_trial_rejected_clearly(self):
        captured = {}

        def closure_trial(rng):  # pragma: no cover - never actually runs
            return {"x": captured}

        with pytest.raises(ValidationError, match="picklable"):
            run_trials(4, closure_trial, seed=0, workers=2)

    def test_bad_workers_and_chunk_size_rejected(self):
        with pytest.raises(ValidationError):
            run_trials(4, _stochastic_trial, seed=0, workers=0)
        with pytest.raises(ValidationError):
            run_trials(4, _stochastic_trial, seed=0, workers=2, chunk_size=-1)

    def test_chunk_size_zero_means_auto(self):
        """Regression: ``chunk_size=0`` used to be rejected; it now selects
        the default chunking and stays bit-identical to serial."""
        serial = run_trials(11, _stochastic_trial, seed=5)
        parallel = run_trials(11, _stochastic_trial, seed=5, workers=2, chunk_size=0)
        assert serial == parallel

    def test_more_workers_than_trials(self):
        """Regression: ``workers > num_trials`` used to produce empty chunks
        (``ceil(n / 4w) * w`` oversubscription); the pool is clamped and
        results stay bit-identical to serial."""
        serial = run_trials(3, _stochastic_trial, seed=7)
        parallel = run_trials(3, _stochastic_trial, seed=7, workers=8)
        assert serial == parallel


class TestRunBatchedTrials:
    @staticmethod
    def _draw(rng):
        return rng.uniform(0.0, 10.0, size=4)

    @staticmethod
    def _batch(block):
        return list(np.sum(block, axis=0))

    def test_matches_per_trial_loop(self):
        """Batched results equal drawing + processing each trial alone."""
        batched = run_batched_trials(12, self._draw, self._batch, seed=3)
        per_trial = run_trials(
            12, lambda rng: {"sum": float(np.sum(self._draw(rng)))}, seed=3
        )
        assert [float(b) for b in batched] == [t["sum"] for t in per_trial]

    def test_chunk_size_does_not_change_results(self):
        whole = run_batched_trials(10, self._draw, self._batch, seed=1)
        chunked = run_batched_trials(
            10, self._draw, self._batch, seed=1, chunk_size=3
        )
        assert [float(a) for a in whole] == [float(b) for b in chunked]

    def test_none_draws_rejected(self):
        def draw(rng):
            value = rng.uniform(0.0, 10.0, size=4)
            return value if value[0] > 2.0 else None

        results = run_batched_trials(40, draw, self._batch, seed=0)
        assert 0 < len(results) < 40

    def test_batch_result_count_enforced(self):
        with pytest.raises(ValidationError, match="results"):
            run_batched_trials(4, self._draw, lambda block: [0.0], seed=0)

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValidationError):
            run_batched_trials(0, self._draw, self._batch, seed=0)
        with pytest.raises(ValidationError):
            run_batched_trials(4, self._draw, self._batch, seed=0, chunk_size=-2)


class TestSuccessRate:
    def test_basic(self):
        results = [{"success": True}, {"success": False}, {"success": True}]
        assert success_rate(results) == pytest.approx(2 / 3)

    def test_custom_flag(self):
        results = [{"won": True}, {"won": False}]
        assert success_rate(results, "won") == 0.5

    def test_empty_is_nan(self):
        assert math.isnan(success_rate([]))


class TestBinnedRate:
    def test_default_deciles(self):
        results = [
            {"x": 0.05, "ok": False},
            {"x": 0.05, "ok": True},
            {"x": 0.95, "ok": True},
            {"x": 1.0, "ok": True},
        ]
        bins = binned_rate(results, "x", "ok")
        assert len(bins) == 10
        assert bins[0]["count"] == 2
        assert bins[0]["rate"] == 0.5
        # x == 1.0 lands in the top (closed) bin
        assert bins[-1]["count"] == 2
        assert bins[-1]["rate"] == 1.0

    def test_nan_covariates_skipped(self):
        results = [{"x": float("nan"), "ok": True}, {"x": 0.5, "ok": True}]
        bins = binned_rate(results, "x", "ok")
        assert sum(b["count"] for b in bins) == 1

    def test_empty_bin_rate_is_nan(self):
        bins = binned_rate([{"x": 0.05, "ok": True}], "x", "ok")
        assert math.isnan(bins[5]["rate"])

    def test_custom_edges(self):
        results = [{"x": 0.3, "ok": True}]
        bins = binned_rate(results, "x", "ok", bins=(0.0, 0.5, 1.0))
        assert len(bins) == 2
        assert bins[0]["count"] == 1
        assert bins[0]["mid"] == 0.25

    def test_bad_edges(self):
        with pytest.raises(ValidationError):
            binned_rate([], "x", "ok", bins=(0.5,))
        with pytest.raises(ValidationError):
            binned_rate([], "x", "ok", bins=(0.5, 0.2))
