"""Tests for the Section V-B case studies (Figs. 4-6)."""

import numpy as np
import pytest

from repro.metrics.states import LinkState
from repro.scenarios.simple_network import (
    PAPER_NUM_PATHS,
    PAPER_VICTIM_LINK,
    chosen_victim_case_study,
    max_damage_case_study,
    naive_baseline_case_study,
    obfuscation_case_study,
    paper_fig1_scenario,
)


class TestFig1Scenario:
    def test_dimensions(self, fig1_scenario):
        assert fig1_scenario.path_set.num_paths == PAPER_NUM_PATHS
        assert fig1_scenario.topology.num_links == 10
        assert fig1_scenario.monitors == ("M1", "M2", "M3")

    def test_routine_delays_in_paper_range(self, fig1_scenario):
        assert np.all(fig1_scenario.true_metrics >= 1.0)
        assert np.all(fig1_scenario.true_metrics <= 20.0)

    def test_paper_thresholds_and_cap(self, fig1_scenario):
        assert fig1_scenario.thresholds.lower == 100.0
        assert fig1_scenario.thresholds.upper == 800.0
        assert fig1_scenario.cap == 2000.0

    def test_deterministic(self):
        a = paper_fig1_scenario(seed=2017)
        b = paper_fig1_scenario(seed=2017)
        assert np.array_equal(a.true_metrics, b.true_metrics)
        assert [p.nodes for p in a.path_set] == [p.nodes for p in b.path_set]

    def test_all_paths_between_monitors(self, fig1_scenario):
        monitors = set(fig1_scenario.monitors)
        for path in fig1_scenario.path_set:
            assert path.source in monitors
            assert path.target in monitors


class TestFig4ChosenVictim:
    def test_succeeds_without_perfect_cut(self):
        record = chosen_victim_case_study()
        assert record["feasible"]
        assert not record["perfect_cut"]
        assert 0.0 < record["presence_ratio"] < 1.0

    def test_victim_is_only_abnormal_link(self):
        record = chosen_victim_case_study()
        assert record["abnormal_links"] == [PAPER_VICTIM_LINK]
        assert record["estimates"][PAPER_VICTIM_LINK] > 800.0

    def test_attacker_links_normal(self):
        record = chosen_victim_case_study()
        for j in range(1, 8):  # paper links 2-8
            assert record["states"][j] == "normal"

    def test_paper_shape_mean_path_delay(self):
        """Paper: 820.87 ms average; shape target = same order (hundreds)."""
        record = chosen_victim_case_study()
        assert 400.0 <= record["mean_path_delay"] <= 1600.0

    def test_damage_positive(self):
        record = chosen_victim_case_study()
        assert record["damage"] > 0


class TestFig5MaxDamage:
    def test_dominates_chosen_victim(self):
        fig4 = chosen_victim_case_study(mode="paper")
        fig5 = max_damage_case_study()
        assert fig5["feasible"]
        assert fig5["damage"] >= fig4["damage"] - 1e-6

    def test_mean_delay_exceeds_fig4(self):
        """Paper: 1239.4 ms (Fig. 5) > 820.87 ms (Fig. 4)."""
        fig4 = chosen_victim_case_study()
        fig5 = max_damage_case_study()
        assert fig5["mean_path_delay"] > fig4["mean_path_delay"]

    def test_victims_among_free_links(self):
        record = max_damage_case_study()
        assert set(record["victim_links"]) <= {0, 8, 9}

    def test_damage_by_victim_covers_free_links(self):
        record = max_damage_case_study()
        assert set(record["damage_by_victim"]) == {0, 8, 9}

    def test_abnormal_set_contains_victims(self):
        record = max_damage_case_study()
        assert set(record["victim_links"]) <= set(record["abnormal_links"])


class TestFig6Obfuscation:
    def test_every_link_uncertain(self):
        record = obfuscation_case_study()
        assert record["feasible"]
        assert all(state == "uncertain" for state in record["states"])

    def test_estimates_inside_band(self):
        record = obfuscation_case_study()
        for value in record["estimates"]:
            assert 100.0 <= value <= 800.0

    def test_no_outliers_story(self):
        """No link stands out: max/min estimate ratio stays moderate."""
        record = obfuscation_case_study()
        estimates = record["estimates"]
        assert max(estimates) / max(min(estimates), 1.0) < 8.0

    def test_min_victims_respected(self):
        record = obfuscation_case_study(min_victims=3)
        assert len(record["victim_links"]) >= 3


class TestNaiveBaseline:
    def test_worst_link_is_attacker_controlled(self):
        record = naive_baseline_case_study()
        assert record["worst_link_is_controlled"]

    def test_exposure_at_full_budget(self):
        record = naive_baseline_case_study()
        assert record["attacker_exposed"]
        assert set(record["exposed_controlled_links"]) <= set(record["controlled_links"])

    def test_contrast_with_scapegoating(self):
        """Same budget, opposite attribution: scapegoating blames link 10,
        the naive attack's worst link is the attackers' own."""
        naive = naive_baseline_case_study()
        scapegoat = chosen_victim_case_study()
        assert naive["worst_link_is_controlled"]
        assert scapegoat["abnormal_links"] == [PAPER_VICTIM_LINK]
