"""Tests for multi-round measurement campaigns."""

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.exceptions import ValidationError
from repro.measurement.noise import GaussianNoise
from repro.scenarios.timeseries import MeasurementCampaign


@pytest.fixture(scope="module")
def imperfect_attack(fig1_scenario):
    context = fig1_scenario.attack_context(["B", "C"])
    outcome = ChosenVictimAttack(context, [9], mode="exclusive").run()
    assert outcome.feasible
    return outcome


@pytest.fixture(scope="module")
def stealthy_attack(fig1_scenario):
    context = fig1_scenario.attack_context(["B", "C"])
    outcome = ChosenVictimAttack(context, [0], stealthy=True).run()
    assert outcome.feasible
    return outcome


class TestHonestCampaign:
    def test_no_alarms_no_blame(self, fig1_scenario):
        campaign = MeasurementCampaign(fig1_scenario)
        result = campaign.run(10, rng=0)
        assert result.num_rounds == 10
        assert result.attacked_rounds == ()
        assert result.detected_rounds == ()
        assert result.blame_counts == {}
        assert result.detection_latency() is None
        assert result.most_blamed_link() is None

    def test_noise_within_alpha_stays_quiet(self, fig1_scenario):
        campaign = MeasurementCampaign(fig1_scenario, noise_model=GaussianNoise(1.0))
        result = campaign.run(10, rng=0)
        assert result.false_alarm_rounds == ()


class TestPersistentAttack:
    def test_caught_immediately_every_round(self, fig1_scenario, imperfect_attack):
        campaign = MeasurementCampaign(fig1_scenario)
        result = campaign.run(6, manipulation=imperfect_attack.manipulation, rng=0)
        assert result.attacked_rounds == tuple(range(6))
        assert result.detected_rounds == tuple(range(6))
        assert result.detection_latency() == 0

    def test_blame_accumulates_on_scapegoat(self, fig1_scenario, imperfect_attack):
        campaign = MeasurementCampaign(fig1_scenario)
        result = campaign.run(6, manipulation=imperfect_attack.manipulation, rng=0)
        assert result.most_blamed_link() == 9
        assert result.blame_counts[9] == 6


class TestIntermittentAttack:
    def test_explicit_active_rounds(self, fig1_scenario, imperfect_attack):
        campaign = MeasurementCampaign(fig1_scenario)
        result = campaign.run(
            8, manipulation=imperfect_attack.manipulation, active_rounds=[2, 5], rng=0
        )
        assert result.attacked_rounds == (2, 5)
        assert result.detected_rounds == (2, 5)
        assert result.false_alarm_rounds == ()

    def test_probability_activity(self, fig1_scenario, imperfect_attack):
        campaign = MeasurementCampaign(fig1_scenario)
        result = campaign.run(
            40, manipulation=imperfect_attack.manipulation, active_rounds=0.5, rng=1
        )
        active = len(result.attacked_rounds)
        assert 8 <= active <= 32
        assert set(result.detected_rounds) == set(result.attacked_rounds)

    def test_out_of_range_round_rejected(self, fig1_scenario, imperfect_attack):
        campaign = MeasurementCampaign(fig1_scenario)
        with pytest.raises(ValidationError):
            campaign.run(
                4, manipulation=imperfect_attack.manipulation, active_rounds=[9]
            )

    def test_bad_probability_rejected(self, fig1_scenario, imperfect_attack):
        campaign = MeasurementCampaign(fig1_scenario)
        with pytest.raises(ValidationError):
            campaign.run(
                4, manipulation=imperfect_attack.manipulation, active_rounds=1.5
            )


class TestStealthyAttackOverTime:
    def test_never_detected_blame_persists(self, fig1_scenario, stealthy_attack):
        """A stealthy perfect-cut attacker survives arbitrarily many rounds:
        zero detections, and the scapegoat accumulates all the blame."""
        campaign = MeasurementCampaign(fig1_scenario)
        result = campaign.run(12, manipulation=stealthy_attack.manipulation, rng=0)
        assert result.detected_rounds == ()
        assert result.detection_latency() is None
        assert result.most_blamed_link() == 0
        assert result.blame_counts[0] == 12


class TestValidation:
    def test_zero_rounds_rejected(self, fig1_scenario):
        with pytest.raises(ValidationError):
            MeasurementCampaign(fig1_scenario).run(0)

    def test_deterministic(self, fig1_scenario, imperfect_attack):
        campaign = MeasurementCampaign(fig1_scenario, noise_model=GaussianNoise(1.0))
        a = campaign.run(5, manipulation=imperfect_attack.manipulation, rng=7)
        b = campaign.run(5, manipulation=imperfect_attack.manipulation, rng=7)
        assert np.allclose(a.rounds[3].observed, b.rounds[3].observed)
