"""Tests for the attacker-knowledge sensitivity driver."""

import pytest

from repro.exceptions import ValidationError
from repro.scenarios.sensitivity import knowledge_sensitivity_experiment


class TestKnowledgeSensitivity:
    @pytest.fixture(scope="class")
    def result(self, fig1_scenario):
        return knowledge_sensitivity_experiment(
            fig1_scenario,
            ["B", "C"],
            [9],
            knowledge_sigmas=(0.0, 5.0, 200.0),
            num_trials=8,
            seed=1,
        )

    def test_structure(self, result):
        assert [r["sigma"] for r in result["rows"]] == [0.0, 5.0, 200.0]
        for row in result["rows"]:
            assert 0.0 <= row["planned_rate"] <= 1.0
            assert row["realised_rate"] <= row["planned_rate"] + 1e-9

    def test_perfect_knowledge_always_works(self, result):
        zero = result["rows"][0]
        assert zero["planned_rate"] == 1.0
        assert zero["realised_rate"] == 1.0

    def test_boundary_hugging_optima_are_fragile(self, result):
        """With the default 1 ms margin, small knowledge errors already
        break the realised attack — the LP plans on the band boundary."""
        small = result["rows"][1]
        assert small["realised_rate"] <= 0.5

    def test_generous_margin_buys_robustness(self, fig1_scenario):
        robust = knowledge_sensitivity_experiment(
            fig1_scenario,
            ["B", "C"],
            [9],
            knowledge_sigmas=(5.0,),
            num_trials=8,
            margin=25.0,
            seed=1,
        )
        assert robust["rows"][0]["realised_rate"] >= 0.9
        assert robust["margin"] == 25.0

    def test_huge_error_breaks_the_attack(self, result):
        huge = result["rows"][2]
        assert huge["realised_rate"] < result["rows"][0]["realised_rate"]

    def test_negative_sigma_rejected(self, fig1_scenario):
        with pytest.raises(ValidationError):
            knowledge_sensitivity_experiment(
                fig1_scenario, ["B", "C"], [9], knowledge_sigmas=(-1.0,), num_trials=2
            )

    def test_deterministic(self, fig1_scenario):
        a = knowledge_sensitivity_experiment(
            fig1_scenario, ["B", "C"], [9], knowledge_sigmas=(3.0,), num_trials=5, seed=4
        )
        b = knowledge_sensitivity_experiment(
            fig1_scenario, ["B", "C"], [9], knowledge_sigmas=(3.0,), num_trials=5, seed=4
        )
        assert a["rows"] == b["rows"]
