"""Tests for loss-domain scenarios (Remark 2's extension)."""

import numpy as np
import pytest

from repro.attacks.chosen_victim import ChosenVictimAttack
from repro.measurement.simulator.network_sim import NetworkSimulator
from repro.scenarios.loss_network import (
    compile_loss_attack_plan,
    loss_chosen_victim_case_study,
    paper_fig1_loss_scenario,
)


@pytest.fixture(scope="module")
def loss_scenario():
    return paper_fig1_loss_scenario()


class TestLossScenario:
    def test_metrics_are_log_domain(self, loss_scenario):
        assert np.all(loss_scenario.true_metrics >= 0.0)
        # Routine loss <= 1% -> metric <= -log(0.99).
        assert float(loss_scenario.true_metrics.max()) <= -np.log(0.99) + 1e-12

    def test_thresholds_in_log_domain(self, loss_scenario):
        assert loss_scenario.thresholds.lower == pytest.approx(-np.log(0.95))
        assert loss_scenario.thresholds.upper == pytest.approx(-np.log(0.5))

    def test_same_paths_as_delay_scenario(self, loss_scenario, fig1_scenario):
        assert [p.nodes for p in loss_scenario.path_set] == [
            p.nodes for p in fig1_scenario.path_set
        ]

    def test_deterministic(self):
        a = paper_fig1_loss_scenario(seed=1)
        b = paper_fig1_loss_scenario(seed=1)
        assert np.array_equal(a.true_metrics, b.true_metrics)


class TestLossAttackPlanning:
    def test_chosen_victim_feasible_in_log_domain(self, loss_scenario):
        context = loss_scenario.attack_context(["B", "C"])
        outcome = ChosenVictimAttack(context, [9], mode="exclusive").run()
        assert outcome.feasible
        assert outcome.diagnosis.abnormal == (9,)

    def test_plan_compiles_to_drop_agents(self, loss_scenario):
        context = loss_scenario.attack_context(["B", "C"])
        outcome = ChosenVictimAttack(context, [9], mode="exclusive").run()
        agents = compile_loss_attack_plan(loss_scenario, ["B", "C"], outcome.manipulation)
        assert set(agents) <= {"B", "C"}
        for agent in agents.values():
            for action in agent.actions.values():
                assert 0.0 < action.drop_probability < 1.0
                assert action.extra_delay == 0.0

    def test_off_support_manipulation_rejected(self, loss_scenario):
        m = np.zeros(loss_scenario.path_set.num_paths)
        support = set(loss_scenario.path_set.paths_containing_any_node({"B", "C"}))
        off = next(i for i in range(len(m)) if i not in support)
        m[off] = 0.5
        with pytest.raises(ValueError):
            compile_loss_attack_plan(loss_scenario, ["B", "C"], m)


class TestSimulatedLossMeasurement:
    def test_expected_delivery_matches_link_products(self, loss_scenario):
        """Honest loss measurement: delivery ~ product of link survivals."""
        loss_rates = 1.0 - np.exp(-loss_scenario.true_metrics)
        sim = NetworkSimulator(
            loss_scenario.topology,
            np.ones(loss_scenario.topology.num_links),
            link_loss=loss_rates,
        )
        record = sim.run_measurement(
            loss_scenario.path_set, probes_per_path=4000, rng=0
        )
        measured = record.delivery_ratio_vector()
        matrix = loss_scenario.path_set.routing_matrix()
        expected = np.exp(-(matrix @ loss_scenario.true_metrics))
        assert np.allclose(measured, expected, atol=0.02)

    def test_case_study_blames_victim_from_packet_drops(self):
        record = loss_chosen_victim_case_study(probes_per_path=3000)
        assert record["feasible"]
        assert not record["perfect_cut"]
        assert record["planned_abnormal"] == [9]
        assert record["measured_abnormal"] == [9]
        # The scapegoat looks badly lossy though its true delivery is ~99%.
        assert record["victim_delivery_estimate"] < 0.5

    def test_case_study_attacker_links_look_clean(self):
        """Attackers never look abnormal; sampling noise may push a link at
        the planned normal boundary into 'uncertain', but most stay normal."""
        record = loss_chosen_victim_case_study(probes_per_path=3000)
        measured = record["measured_diagnosis"]
        states = [str(measured.state_of(j)) for j in range(1, 8)]
        assert "abnormal" not in states
        assert states.count("normal") >= 5
