"""Tests for the defence-experiment drivers."""

import pytest

from repro.exceptions import ValidationError
from repro.scenarios.defense_experiments import (
    path_selection_defense_experiment,
    robust_recovery_experiment,
)
from repro.topology.generators.simple import grid_topology


class TestRobustRecovery:
    def test_structure(self, fig1_scenario):
        result = robust_recovery_experiment(
            fig1_scenario, tamper_counts=(1, 3), num_trials=5, seed=1
        )
        assert [r["tampered_rows"] for r in result["rows"]] == [1, 3]
        for row in result["rows"]:
            assert row["ls_error"] >= 0.0
            assert row["robust_error"] >= 0.0
            assert 0.0 <= row["found_all_rate"] <= 1.0

    def test_robust_beats_plain_ls_lightly_tampered(self, fig1_scenario):
        result = robust_recovery_experiment(
            fig1_scenario, tamper_counts=(1,), num_trials=10, seed=2
        )
        row = result["rows"][0]
        assert row["robust_error"] < row["ls_error"]

    def test_bad_tamper_count(self, fig1_scenario):
        with pytest.raises(ValidationError):
            robust_recovery_experiment(
                fig1_scenario, tamper_counts=(0,), num_trials=2
            )
        with pytest.raises(ValidationError):
            robust_recovery_experiment(
                fig1_scenario, tamper_counts=(999,), num_trials=2
            )

    def test_deterministic(self, fig1_scenario):
        a = robust_recovery_experiment(
            fig1_scenario, tamper_counts=(2,), num_trials=5, seed=7
        )
        b = robust_recovery_experiment(
            fig1_scenario, tamper_counts=(2,), num_trials=5, seed=7
        )
        assert a["rows"] == b["rows"]


class TestPathSelectionDefense:
    @pytest.fixture(scope="class")
    def result(self):
        topo = grid_topology(4, 4)
        monitors = [
            (0, 0), (0, 3), (3, 0), (3, 3), (1, 1), (2, 2), (0, 1),
            (1, 0), (2, 3), (3, 2), (0, 2), (2, 0), (1, 3), (3, 1),
        ]
        return path_selection_defense_experiment(topo, monitors, num_trials=12, seed=2)

    def test_both_strategies_reported(self, result):
        labels = {r["selection"] for r in result["records"]}
        assert labels == {"rank-greedy", "min-presence"}

    def test_min_presence_flattens_load(self, result):
        by_label = {r["selection"]: r for r in result["records"]}
        assert (
            by_label["min-presence"]["max_presence"]
            <= by_label["rank-greedy"]["max_presence"]
        )

    def test_success_rates_in_range(self, result):
        for record in result["records"]:
            assert 0.0 <= record["attack_success"] <= 1.0
